//! A single cache shard: hash map + intrusive LRU list + byte budget.
//!
//! The LRU list is a slab of nodes linked by indices (no unsafe, no
//! per-access allocation). Dirty entries — written back to storage
//! asynchronously — are pinned: eviction walks past them, and when only
//! dirty entries remain the shard reports backpressure instead of
//! dropping unsynchronized data.

use std::collections::HashMap;
use tb_common::hash::FxBuildHasher;
use tb_common::{Error, Key, Result, Value};
use tb_pmem::Medium;

const NIL: usize = usize::MAX;

/// One cache entry.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    pub value: Value,
    pub dirty: bool,
    /// Where the value bytes notionally live (DRAM or PMem).
    pub medium: Medium,
    /// Absolute clock-nanosecond deadline after which the entry is
    /// logically gone (`None` = never expires).
    pub expires_at: Option<u64>,
}

struct Node {
    key: Key,
    entry: CacheEntry,
    prev: usize,
    next: usize,
}

/// A bounded LRU map of `Key → CacheEntry`.
pub struct LruShard {
    map: HashMap<Key, usize, FxBuildHasher>,
    slab: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    used_bytes: usize,
    budget_bytes: usize,
    dirty_bytes: usize,
}

/// What [`LruShard::insert`] evicted to make room.
pub type Evicted = Vec<(Key, CacheEntry)>;

impl LruShard {
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            map: HashMap::default(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            used_bytes: 0,
            budget_bytes,
            dirty_bytes: 0,
        }
    }

    fn entry_cost(key: &Key, value: &Value) -> usize {
        // Key + value + fixed index overhead per entry.
        key.len() + value.len() + 64
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes used (entries + overhead).
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Bytes held by dirty (unsynchronized) entries.
    pub fn dirty_bytes(&self) -> usize {
        self.dirty_bytes
    }

    /// Looks up and promotes the entry to most-recently-used.
    ///
    /// Lazy expiration: an entry past its deadline reads as absent. If
    /// it is clean it is removed on the spot; a dirty expired entry is
    /// retained (invisible) until the write-back flush cleans it, so no
    /// unsynchronized data is dropped.
    pub fn get(&mut self, key: &Key, now_nanos: u64) -> Option<&CacheEntry> {
        let idx = *self.map.get(key)?;
        if tb_common::is_expired(self.slab[idx].entry.expires_at, now_nanos) {
            if !self.slab[idx].entry.dirty {
                let key = self.slab[idx].key.clone();
                self.remove(&key);
            }
            return None;
        }
        self.unlink(idx);
        self.push_front(idx);
        Some(&self.slab[idx].entry)
    }

    /// Looks up without touching recency (monitoring paths).
    pub fn peek(&self, key: &Key) -> Option<&CacheEntry> {
        self.map.get(key).map(|&i| &self.slab[i].entry)
    }

    /// Inserts/overwrites; evicts clean LRU entries to fit the budget.
    ///
    /// Errors with [`Error::Backpressure`] when the needed space cannot
    /// be reclaimed because remaining entries are dirty.
    pub fn insert(
        &mut self,
        key: Key,
        value: Value,
        dirty: bool,
        medium: Medium,
    ) -> Result<Evicted> {
        self.insert_full(key, value, dirty, medium, None)
    }

    /// [`insert`](Self::insert) with an expiry deadline. Overwriting a
    /// key replaces its expiry (Redis `SET` semantics).
    pub fn insert_full(
        &mut self,
        key: Key,
        value: Value,
        dirty: bool,
        medium: Medium,
        expires_at: Option<u64>,
    ) -> Result<Evicted> {
        let cost = Self::entry_cost(&key, &value);
        if cost > self.budget_bytes {
            return Err(Error::InvalidArgument(format!(
                "entry of {cost} bytes exceeds shard budget {}",
                self.budget_bytes
            )));
        }

        // Replace = remove + insert-fresh; when the bigger replacement
        // cannot fit, the old entry is restored so a failed insert never
        // leaves the shard over budget or missing the key.
        if self.map.contains_key(&key) {
            let old = self.remove(&key).expect("key present");
            return match self.insert_fresh(key.clone(), value, dirty, medium, expires_at, cost) {
                Ok(evicted) => Ok(evicted),
                Err(e) => {
                    let old_cost = Self::entry_cost(&key, &old.value);
                    self.insert_fresh(
                        key,
                        old.value,
                        old.dirty,
                        old.medium,
                        old.expires_at,
                        old_cost,
                    )
                    .expect("restoring the previous entry always fits");
                    Err(e)
                }
            };
        }
        self.insert_fresh(key, value, dirty, medium, expires_at, cost)
    }

    #[allow(clippy::too_many_arguments)]
    fn insert_fresh(
        &mut self,
        key: Key,
        value: Value,
        dirty: bool,
        medium: Medium,
        expires_at: Option<u64>,
        cost: usize,
    ) -> Result<Evicted> {
        // Evict before inserting so the budget holds afterwards.
        let mut evicted = Vec::new();
        while self.used_bytes + cost > self.budget_bytes {
            match self.evict_one() {
                Some(pair) => evicted.push(pair),
                None => {
                    // Undo speculative evictions? They were clean LRU
                    // entries — dropping them early is harmless, the
                    // caller treats them as evicted either way.
                    return Err(Error::backpressure("cache full of dirty entries"));
                }
            }
        }

        let node = Node {
            key: key.clone(),
            entry: CacheEntry {
                value,
                dirty,
                medium,
                expires_at,
            },
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = node;
                i
            }
            None => {
                self.slab.push(node);
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        self.used_bytes += cost;
        if dirty {
            self.dirty_bytes += cost;
        }
        Ok(evicted)
    }

    /// Evicts the least-recently-used *clean* entry.
    fn evict_one(&mut self) -> Option<(Key, CacheEntry)> {
        let mut idx = self.tail;
        while idx != NIL {
            if !self.slab[idx].entry.dirty {
                let key = self.slab[idx].key.clone();
                return self.remove(&key).map(|e| (key, e));
            }
            idx = self.slab[idx].prev;
        }
        None
    }

    /// Removes an entry outright.
    pub fn remove(&mut self, key: &Key) -> Option<CacheEntry> {
        let idx = self.map.remove(key)?;
        self.unlink(idx);
        let cost = Self::entry_cost(&self.slab[idx].key, &self.slab[idx].entry.value);
        self.used_bytes -= cost;
        if self.slab[idx].entry.dirty {
            self.dirty_bytes -= cost;
        }
        self.free.push(idx);
        Some(self.slab[idx].entry.clone())
    }

    /// Clears the dirty flag after a successful storage write.
    pub fn mark_clean(&mut self, key: &Key) {
        if let Some(&idx) = self.map.get(key) {
            if self.slab[idx].entry.dirty {
                let cost = Self::entry_cost(&self.slab[idx].key, &self.slab[idx].entry.value);
                self.dirty_bytes -= cost;
                self.slab[idx].entry.dirty = false;
            }
        }
    }

    /// Sets or clears an entry's expiry deadline. Returns `false` when
    /// the key is absent.
    pub fn set_expiry(&mut self, key: &Key, expires_at: Option<u64>) -> bool {
        match self.map.get(key) {
            Some(&idx) => {
                self.slab[idx].entry.expires_at = expires_at;
                true
            }
            None => false,
        }
    }

    /// The entry's expiry deadline: `None` = key absent,
    /// `Some(None)` = present without expiry, `Some(Some(at))` = expires
    /// at `at`. Does not touch recency.
    pub fn expiry_of(&self, key: &Key) -> Option<Option<u64>> {
        self.map
            .get(key)
            .map(|&idx| self.slab[idx].entry.expires_at)
    }

    /// Active expiration pass: removes every *clean* entry whose
    /// deadline has passed and returns them (callers propagate deletes
    /// to the storage tier). Dirty expired entries stay pinned until
    /// the write-back flush cleans them.
    pub fn sweep_expired(&mut self, now_nanos: u64) -> Vec<(Key, CacheEntry)> {
        let expired: Vec<Key> = {
            let mut keys = Vec::new();
            let mut idx = self.head;
            while idx != NIL {
                let n = &self.slab[idx];
                if !n.entry.dirty && tb_common::is_expired(n.entry.expires_at, now_nanos) {
                    keys.push(n.key.clone());
                }
                idx = n.next;
            }
            keys
        };
        expired
            .into_iter()
            .map(|key| {
                let e = self.remove(&key).expect("key just listed");
                (key, e)
            })
            .collect()
    }

    /// Snapshot of all dirty entries (batch-flush input).
    pub fn dirty_entries(&self) -> Vec<(Key, Value)> {
        let mut out = Vec::new();
        let mut idx = self.head;
        while idx != NIL {
            let n = &self.slab[idx];
            if n.entry.dirty {
                out.push((n.key.clone(), n.entry.value.clone()));
            }
            idx = n.next;
        }
        out
    }

    /// Entries whose key starts with `prefix` and are live at
    /// `now_nanos` (expired entries are skipped, not reclaimed — scans
    /// stay read-only). Does not touch recency.
    pub fn scan_prefix(&self, prefix: &[u8], now_nanos: u64) -> Vec<(Key, CacheEntry)> {
        self.map
            .iter()
            .filter(|(k, _)| k.as_slice().starts_with(prefix))
            .filter_map(|(k, &idx)| {
                let e = &self.slab[idx].entry;
                if tb_common::is_expired(e.expires_at, now_nanos) {
                    None
                } else {
                    Some((k.clone(), e.clone()))
                }
            })
            .collect()
    }

    /// Entries with `start <= key < end` (`end = None` = unbounded
    /// above) that are live at `now_nanos`. Same read-only contract as
    /// [`LruShard::scan_prefix`]: expired entries are skipped, not
    /// reclaimed, and recency is untouched.
    pub fn scan_range(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        now_nanos: u64,
    ) -> Vec<(Key, CacheEntry)> {
        self.map
            .iter()
            .filter(|(k, _)| k.as_slice() >= start && end.is_none_or(|e| k.as_slice() < e))
            .filter_map(|(k, &idx)| {
                let e = &self.slab[idx].entry;
                if tb_common::is_expired(e.expires_at, now_nanos) {
                    None
                } else {
                    Some((k.clone(), e.clone()))
                }
            })
            .collect()
    }

    /// Keys in LRU order, most recent first (diagnostics).
    pub fn keys_mru_first(&self) -> Vec<Key> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut idx = self.head;
        while idx != NIL {
            out.push(self.slab[idx].key.clone());
            idx = self.slab[idx].next;
        }
        out
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn k(i: usize) -> Key {
        Key::from(format!("k{i}"))
    }

    fn v(len: usize) -> Value {
        Value::from(vec![b'v'; len])
    }

    #[test]
    fn insert_get_remove() {
        let mut s = LruShard::new(10_000);
        s.insert(k(1), v(10), false, Medium::Dram).unwrap();
        assert_eq!(s.get(&k(1), 0).unwrap().value, v(10));
        assert!(s.remove(&k(1)).is_some());
        assert!(s.get(&k(1), 0).is_none());
        assert_eq!(s.used_bytes(), 0);
    }

    #[test]
    fn lru_eviction_order() {
        // Budget fits ~3 entries of cost (2 + 10 + 64).
        let mut s = LruShard::new(230);
        s.insert(k(1), v(10), false, Medium::Dram).unwrap();
        s.insert(k(2), v(10), false, Medium::Dram).unwrap();
        s.insert(k(3), v(10), false, Medium::Dram).unwrap();
        // Touch k1 so k2 becomes LRU.
        s.get(&k(1), 0);
        let evicted = s.insert(k(4), v(10), false, Medium::Dram).unwrap();
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, k(2), "k2 was least recently used");
        assert!(s.get(&k(1), 0).is_some());
        assert!(s.get(&k(2), 0).is_none());
    }

    #[test]
    fn dirty_entries_are_pinned() {
        let mut s = LruShard::new(230);
        s.insert(k(1), v(10), true, Medium::Dram).unwrap(); // dirty, LRU
        s.insert(k(2), v(10), false, Medium::Dram).unwrap();
        s.insert(k(3), v(10), false, Medium::Dram).unwrap();
        let evicted = s.insert(k(4), v(10), false, Medium::Dram).unwrap();
        // k1 is oldest but dirty → k2 goes instead.
        assert_eq!(evicted[0].0, k(2));
        assert!(s.peek(&k(1)).is_some());
    }

    #[test]
    fn all_dirty_causes_backpressure() {
        let mut s = LruShard::new(230);
        s.insert(k(1), v(10), true, Medium::Dram).unwrap();
        s.insert(k(2), v(10), true, Medium::Dram).unwrap();
        s.insert(k(3), v(10), true, Medium::Dram).unwrap();
        let err = s.insert(k(4), v(10), false, Medium::Dram).unwrap_err();
        assert!(matches!(err, Error::Backpressure { .. }));
        // Cleaning one unblocks the insert.
        s.mark_clean(&k(1));
        s.insert(k(4), v(10), false, Medium::Dram).unwrap();
        assert!(s.peek(&k(1)).is_none(), "cleaned entry became evictable");
    }

    #[test]
    fn overwrite_adjusts_sizes_and_dirty() {
        let mut s = LruShard::new(10_000);
        s.insert(k(1), v(100), true, Medium::Dram).unwrap();
        let d1 = s.dirty_bytes();
        assert!(d1 > 0);
        s.insert(k(1), v(10), false, Medium::Dram).unwrap();
        assert_eq!(s.dirty_bytes(), 0);
        assert_eq!(s.len(), 1);
        s.mark_clean(&k(1)); // no-op on clean entry
        assert_eq!(s.dirty_bytes(), 0);
    }

    #[test]
    fn oversized_entry_rejected() {
        let mut s = LruShard::new(100);
        assert!(matches!(
            s.insert(k(1), v(200), false, Medium::Dram),
            Err(Error::InvalidArgument(_))
        ));
    }

    #[test]
    fn dirty_entries_snapshot() {
        let mut s = LruShard::new(10_000);
        s.insert(k(1), v(5), true, Medium::Dram).unwrap();
        s.insert(k(2), v(5), false, Medium::Dram).unwrap();
        s.insert(k(3), v(5), true, Medium::Pmem).unwrap();
        let dirty = s.dirty_entries();
        let keys: Vec<&Key> = dirty.iter().map(|(k, _)| k).collect();
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&&k(1)) && keys.contains(&&k(3)));
    }

    #[test]
    fn mru_ordering_reflects_access() {
        let mut s = LruShard::new(10_000);
        for i in 0..4 {
            s.insert(k(i), v(1), false, Medium::Dram).unwrap();
        }
        s.get(&k(0), 0);
        let order = s.keys_mru_first();
        assert_eq!(order[0], k(0));
        assert_eq!(order.last().unwrap(), &k(1));
    }

    #[test]
    fn expired_clean_entry_removed_on_get() {
        let mut s = LruShard::new(10_000);
        s.insert_full(k(1), v(5), false, Medium::Dram, Some(100))
            .unwrap();
        assert!(s.get(&k(1), 99).is_some());
        assert!(s.get(&k(1), 100).is_none(), "deadline == now expires");
        assert_eq!(s.len(), 0, "clean expired entry removed eagerly");
        assert_eq!(s.used_bytes(), 0);
    }

    #[test]
    fn expired_dirty_entry_pinned_but_invisible() {
        let mut s = LruShard::new(10_000);
        s.insert_full(k(1), v(5), true, Medium::Dram, Some(100))
            .unwrap();
        assert!(s.get(&k(1), 200).is_none());
        assert_eq!(s.len(), 1, "dirty entry survives until flushed");
        assert_eq!(s.sweep_expired(200).len(), 0, "sweep skips dirty");
        s.mark_clean(&k(1));
        let swept = s.sweep_expired(200);
        assert_eq!(swept.len(), 1);
        assert_eq!(swept[0].0, k(1));
    }

    #[test]
    fn set_expiry_roundtrip() {
        let mut s = LruShard::new(10_000);
        s.insert(k(1), v(5), false, Medium::Dram).unwrap();
        assert_eq!(s.expiry_of(&k(1)), Some(None));
        assert!(s.set_expiry(&k(1), Some(42)));
        assert_eq!(s.expiry_of(&k(1)), Some(Some(42)));
        assert!(s.set_expiry(&k(1), None));
        assert_eq!(s.expiry_of(&k(1)), Some(None));
        assert!(!s.set_expiry(&k(2), Some(1)), "absent key");
        assert_eq!(s.expiry_of(&k(2)), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Budget is never exceeded and the map/list stay consistent
        /// Expiry invariants under arbitrary interleavings of inserts
        /// (with and without deadlines), clock advances, and sweeps: a
        /// live read never returns an expired entry, and sweeping never
        /// touches unexpired or dirty entries.
        #[test]
        fn prop_expiry_never_leaks(
            ops in proptest::collection::vec((0usize..20, proptest::option::of(1u64..100), any::<bool>()), 1..200),
            advances in proptest::collection::vec(1u64..50, 1..20)
        ) {
            let mut s = LruShard::new(1 << 20);
            let mut now = 0u64;
            let mut ai = 0;
            for (i, (ki, ttl, dirty)) in ops.into_iter().enumerate() {
                let deadline = ttl.map(|t| now + t);
                s.insert_full(k(ki), v(8), dirty, Medium::Dram, deadline).unwrap();
                if i % 3 == 0 {
                    now += advances[ai % advances.len()];
                    ai += 1;
                }
                // A successful read is never of an expired entry.
                if let Some(e) = s.get(&k(ki), now) {
                    prop_assert!(e.expires_at.is_none_or(|at| at > now));
                }
            }
            let before = s.len();
            let swept = s.sweep_expired(now);
            for (_, e) in &swept {
                prop_assert!(!e.dirty);
                prop_assert!(e.expires_at.is_some_and(|at| at <= now));
            }
            prop_assert_eq!(s.len(), before - swept.len());
            // Everything left is live or dirty.
            for key in s.keys_mru_first() {
                let e = s.peek(&key).unwrap();
                prop_assert!(e.dirty || e.expires_at.is_none_or(|at| at > now));
            }
        }

        /// under arbitrary operation sequences.
        #[test]
        fn prop_budget_invariant(ops in proptest::collection::vec((0usize..50, 0usize..200, any::<bool>()), 1..300)) {
            let mut s = LruShard::new(2000);
            for (ki, vlen, dirty) in ops {
                // Dirty inserts may hit backpressure; that's fine.
                let _ = s.insert(k(ki), v(vlen.min(1800)), dirty, Medium::Dram);
                prop_assert!(s.used_bytes() <= 2000);
                prop_assert_eq!(s.keys_mru_first().len(), s.len());
            }
            // Sum of entry costs equals used_bytes.
            let keys = s.keys_mru_first();
            let sum: usize = keys.iter().map(|key| {
                let e = s.peek(key).unwrap();
                key.len() + e.value.len() + 64
            }).sum();
            prop_assert_eq!(sum, s.used_bytes());
        }
    }
}
