//! Point-in-time cache snapshots (the RDB role in Redis).
//!
//! WAL persistence replays every write; a snapshot instead captures the
//! cache's current contents in one sequential file, which makes warm
//! restarts cheap: load the snapshot, start serving, and let the
//! storage tier backfill anything written after the snapshot. The file
//! is CRC-framed and written atomically (tmp + rename), so a crash
//! mid-snapshot leaves the previous snapshot intact.
//!
//! Format:
//! ```text
//! magic:u32 | version:u8 | count:varint
//! per record: flags:u8 | [expires_at:varint] | klen:varint | key
//!             | vlen:varint | value
//! trailer: crc32 of everything after the magic
//! ```

use crate::cache::ShardedCache;
use std::io::Write;
use std::path::Path;
use tb_common::{crc32, read_varint, write_varint, Error, Key, Result, Value};

const SNAPSHOT_MAGIC: u32 = 0x5442_5244; // "TBRD"
const SNAPSHOT_VERSION: u8 = 1;

const FLAG_DIRTY: u8 = 0b01;
const FLAG_HAS_EXPIRY: u8 = 0b10;

/// Serializes every live cache entry to `path`. Returns the number of
/// entries written. Expired entries are omitted; dirty flags and expiry
/// deadlines are preserved.
pub fn write_snapshot(cache: &ShardedCache, path: &Path) -> Result<usize> {
    let entries = cache.scan_prefix(b"");
    let mut body = Vec::with_capacity(entries.len() * 64 + 16);
    body.push(SNAPSHOT_VERSION);
    write_varint(&mut body, entries.len() as u64);
    for (key, entry) in &entries {
        let mut flags = 0u8;
        if entry.dirty {
            flags |= FLAG_DIRTY;
        }
        if entry.expires_at.is_some() {
            flags |= FLAG_HAS_EXPIRY;
        }
        body.push(flags);
        if let Some(deadline) = entry.expires_at {
            write_varint(&mut body, deadline);
        }
        write_varint(&mut body, key.len() as u64);
        body.extend_from_slice(key.as_slice());
        write_varint(&mut body, entry.value.len() as u64);
        body.extend_from_slice(entry.value.as_slice());
    }

    let tmp = path.with_extension("rdb-tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&SNAPSHOT_MAGIC.to_le_bytes())?;
        f.write_all(&body)?;
        f.write_all(&crc32(&body).to_le_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(entries.len())
}

/// Loads a snapshot written by [`write_snapshot`] into `cache`.
/// Returns the number of entries restored. Entries whose deadline has
/// already passed at load time are skipped.
pub fn load_snapshot(cache: &ShardedCache, path: &Path) -> Result<usize> {
    let raw = std::fs::read(path)?;
    if raw.len() < 9 {
        return Err(Error::Corruption("snapshot too short".into()));
    }
    let magic = u32::from_le_bytes(raw[0..4].try_into().expect("sized"));
    if magic != SNAPSHOT_MAGIC {
        return Err(Error::Corruption(format!("bad snapshot magic {magic:#x}")));
    }
    let body = &raw[4..raw.len() - 4];
    let stored_crc = u32::from_le_bytes(raw[raw.len() - 4..].try_into().expect("sized"));
    if crc32(body) != stored_crc {
        return Err(Error::Corruption("snapshot checksum mismatch".into()));
    }
    let (&version, rest) = body
        .split_first()
        .ok_or_else(|| Error::Corruption("empty snapshot body".into()))?;
    if version != SNAPSHOT_VERSION {
        return Err(Error::Corruption(format!(
            "unknown snapshot version {version}"
        )));
    }

    let now = cache.clock().now_nanos();
    let mut pos = 0usize;
    let count = read_varint(rest, &mut pos)? as usize;
    let mut restored = 0usize;
    for _ in 0..count {
        if pos >= rest.len() {
            return Err(Error::Corruption("snapshot truncated".into()));
        }
        let flags = rest[pos];
        pos += 1;
        if flags & !(FLAG_DIRTY | FLAG_HAS_EXPIRY) != 0 {
            return Err(Error::Corruption(format!("bad snapshot flags {flags}")));
        }
        let expires_at = if flags & FLAG_HAS_EXPIRY != 0 {
            Some(read_varint(rest, &mut pos)?)
        } else {
            None
        };
        let klen = read_varint(rest, &mut pos)? as usize;
        if pos + klen > rest.len() {
            return Err(Error::Corruption("snapshot key overflow".into()));
        }
        let key = Key::copy_from(&rest[pos..pos + klen]);
        pos += klen;
        let vlen = read_varint(rest, &mut pos)? as usize;
        if pos + vlen > rest.len() {
            return Err(Error::Corruption("snapshot value overflow".into()));
        }
        let value = Value::copy_from(&rest[pos..pos + vlen]);
        pos += vlen;

        if tb_common::is_expired(expires_at, now) {
            continue;
        }
        cache.insert_full(key, value, flags & FLAG_DIRTY != 0, expires_at)?;
        restored += 1;
    }
    Ok(restored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use std::sync::Arc;
    use std::time::Duration;
    use tb_common::ManualClock;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tb-rdb-{name}-{}.rdb", std::process::id()))
    }

    fn cache_with_clock(clock: Arc<ManualClock>) -> ShardedCache {
        ShardedCache::new(CacheConfig {
            clock,
            ..CacheConfig::with_capacity(1 << 20)
        })
    }

    fn k(i: usize) -> Key {
        Key::from(format!("k{i:04}"))
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let clock = ManualClock::new();
        let src = cache_with_clock(clock.clone());
        for i in 0..100 {
            src.insert(k(i), Value::from(format!("v{i}")), i % 3 == 0)
                .unwrap();
        }
        src.insert_with_ttl(k(500), Value::from("ttl"), false, Duration::from_secs(60))
            .unwrap();

        let path = tmpfile("roundtrip");
        let written = write_snapshot(&src, &path).unwrap();
        assert_eq!(written, 101);

        let dst = cache_with_clock(clock.clone());
        let restored = load_snapshot(&dst, &path).unwrap();
        assert_eq!(restored, 101);
        for i in 0..100 {
            let e = dst.peek_entry(&k(i)).unwrap();
            assert_eq!(e.value, Value::from(format!("v{i}")));
            assert_eq!(e.dirty, i % 3 == 0, "dirty flag preserved");
        }
        // TTL preserved: advance past the deadline and it is gone.
        assert_eq!(dst.get(&k(500)), Some(Value::from("ttl")));
        clock.advance(Duration::from_secs(61));
        assert_eq!(dst.get(&k(500)), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn expired_entries_skipped_at_load() {
        let clock = ManualClock::new();
        let src = cache_with_clock(clock.clone());
        src.insert_with_ttl(k(1), Value::from("dies"), false, Duration::from_secs(5))
            .unwrap();
        src.insert(k(2), Value::from("lives"), false).unwrap();
        let path = tmpfile("expired");
        write_snapshot(&src, &path).unwrap();

        clock.advance(Duration::from_secs(10));
        let dst = cache_with_clock(clock.clone());
        let restored = load_snapshot(&dst, &path).unwrap();
        assert_eq!(restored, 1);
        assert!(dst.peek_entry(&k(1)).is_none());
        assert!(dst.peek_entry(&k(2)).is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupted_snapshot_is_error_not_panic() {
        let clock = ManualClock::new();
        let src = cache_with_clock(clock.clone());
        for i in 0..20 {
            src.insert(k(i), Value::from("x"), false).unwrap();
        }
        let path = tmpfile("corrupt");
        write_snapshot(&src, &path).unwrap();

        // Flip a byte in the middle.
        let mut raw = std::fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0xff;
        std::fs::write(&path, &raw).unwrap();

        let dst = cache_with_clock(clock);
        assert!(matches!(
            load_snapshot(&dst, &path),
            Err(Error::Corruption(_))
        ));
        assert!(dst.is_empty(), "nothing restored from a bad snapshot");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_snapshot_is_error() {
        let clock = ManualClock::new();
        let src = cache_with_clock(clock.clone());
        src.insert(k(1), Value::from("x"), false).unwrap();
        let path = tmpfile("trunc");
        write_snapshot(&src, &path).unwrap();
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() / 2]).unwrap();
        let dst = cache_with_clock(clock);
        assert!(load_snapshot(&dst, &path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_cache_snapshot() {
        let clock = ManualClock::new();
        let src = cache_with_clock(clock.clone());
        let path = tmpfile("empty");
        assert_eq!(write_snapshot(&src, &path).unwrap(), 0);
        let dst = cache_with_clock(clock);
        assert_eq!(load_snapshot(&dst, &path).unwrap(), 0);
        let _ = std::fs::remove_file(&path);
    }
}
