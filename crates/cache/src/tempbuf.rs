//! Temporary update buffer (§4.1.1).
//!
//! In write-through mode each connection stages its updates in a
//! private buffer. The update executes against the buffer first; only
//! when the synchronous storage write succeeds does the result transfer
//! into the main cache. On storage failure the buffered update is
//! discarded *and the main-cache entry is invalidated*, so subsequent
//! reads refetch from storage — the cache can never serve a value the
//! storage tier refused.

use crate::cache::ShardedCache;
use std::collections::HashMap;
use tb_common::{Key, Result, Value};

/// Staged outcome of one update against the connection buffer.
#[derive(Debug, Clone, PartialEq)]
enum Staged {
    Put(Value),
    Delete,
}

/// A per-connection staging area for write-through updates.
pub struct TempUpdateBuffer<'c> {
    cache: &'c ShardedCache,
    staged: HashMap<Key, Staged>,
}

impl<'c> TempUpdateBuffer<'c> {
    pub fn new(cache: &'c ShardedCache) -> Self {
        Self {
            cache,
            staged: HashMap::new(),
        }
    }

    /// Stages a put. Reads through the buffer see it immediately;
    /// the main cache does not.
    pub fn stage_put(&mut self, key: Key, value: Value) {
        self.staged.insert(key, Staged::Put(value));
    }

    /// Stages a delete.
    pub fn stage_delete(&mut self, key: Key) {
        self.staged.insert(key, Staged::Delete);
    }

    /// Read-your-writes lookup: staged value first, then main cache.
    pub fn get(&self, key: &Key) -> Option<Value> {
        match self.staged.get(key) {
            Some(Staged::Put(v)) => Some(v.clone()),
            Some(Staged::Delete) => None,
            None => self.cache.get(key),
        }
    }

    /// Number of staged updates.
    pub fn staged_count(&self) -> usize {
        self.staged.len()
    }

    /// Storage write succeeded: transfer staged updates into the main
    /// cache (clean — storage already has them).
    pub fn commit(&mut self) -> Result<()> {
        for (key, staged) in self.staged.drain() {
            match staged {
                Staged::Put(v) => {
                    self.cache.insert(key, v, false)?;
                }
                Staged::Delete => {
                    self.cache.remove(&key);
                }
            }
        }
        Ok(())
    }

    /// Storage write failed: drop staged updates and invalidate the
    /// touched main-cache entries so reads refetch from storage.
    pub fn rollback_and_invalidate(&mut self) {
        for (key, _) in self.staged.drain() {
            self.cache.remove(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;

    fn cache() -> ShardedCache {
        ShardedCache::new(CacheConfig::with_capacity(1 << 20))
    }

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    fn v(s: &str) -> Value {
        Value::from(s)
    }

    #[test]
    fn staged_updates_invisible_until_commit() {
        let c = cache();
        let mut buf = TempUpdateBuffer::new(&c);
        buf.stage_put(k("a"), v("staged"));
        // Buffer sees it; main cache does not.
        assert_eq!(buf.get(&k("a")), Some(v("staged")));
        assert_eq!(c.get(&k("a")), None);
        buf.commit().unwrap();
        assert_eq!(c.get(&k("a")), Some(v("staged")));
        // Committed entries are clean.
        assert!(!c.peek_entry(&k("a")).unwrap().dirty);
    }

    #[test]
    fn rollback_discards_and_invalidates() {
        let c = cache();
        c.insert(k("a"), v("old"), false).unwrap();
        let mut buf = TempUpdateBuffer::new(&c);
        buf.stage_put(k("a"), v("new"));
        buf.rollback_and_invalidate();
        // The old value is gone too: reads must refetch from storage.
        assert_eq!(c.get(&k("a")), None);
        assert_eq!(buf.staged_count(), 0);
    }

    #[test]
    fn staged_delete_shadows_cache() {
        let c = cache();
        c.insert(k("a"), v("live"), false).unwrap();
        let mut buf = TempUpdateBuffer::new(&c);
        buf.stage_delete(k("a"));
        assert_eq!(buf.get(&k("a")), None);
        assert_eq!(c.get(&k("a")), Some(v("live")), "main cache untouched");
        buf.commit().unwrap();
        assert_eq!(c.get(&k("a")), None);
    }

    #[test]
    fn read_your_writes_within_buffer() {
        let c = cache();
        let mut buf = TempUpdateBuffer::new(&c);
        buf.stage_put(k("x"), v("1"));
        buf.stage_put(k("x"), v("2"));
        assert_eq!(buf.get(&k("x")), Some(v("2")));
        assert_eq!(buf.staged_count(), 1, "same key stages once");
    }

    #[test]
    fn fallthrough_to_main_cache() {
        let c = cache();
        c.insert(k("main"), v("mv"), false).unwrap();
        let buf = TempUpdateBuffer::new(&c);
        assert_eq!(buf.get(&k("main")), Some(v("mv")));
        assert_eq!(buf.get(&k("absent")), None);
    }
}
