//! TierBase cache tier (§3, §4.1).
//!
//! In-memory hash tables with LRU eviction, sized to a byte budget and
//! split across shards for concurrency. The pieces the synchronization
//! policies need live here too:
//!
//! * [`lru`] / [`cache`] — the sharded LRU store with DRAM/PMem value
//!   placement and dirty-entry pinning (a dirty entry must never be
//!   evicted before it reaches the storage tier).
//! * [`coalesce`] — per-key write queues with write coalescing: multiple
//!   in-flight writes to one key collapse into the final value (the
//!   group-commit analog used by write-through, §4.1.1).
//! * [`tempbuf`] — the temporary update buffer: updates stage per
//!   connection and only reach the main cache when the storage write
//!   succeeds (write-through failure atomicity).
//! * [`replica`] — master→replica replication of cache contents and
//!   dirty data (write-back reliability, §4.1.2).

pub mod cache;
pub mod coalesce;
pub mod lru;
pub mod replica;
pub mod snapshot;
pub mod tempbuf;

pub use cache::{CacheConfig, CacheStats, Lookup, ShardedCache};
pub use coalesce::WriteCoalescer;
pub use lru::{CacheEntry, LruShard};
pub use replica::{ReplicatedCache, ReplicationMode};
pub use snapshot::{load_snapshot, write_snapshot};
pub use tempbuf::TempUpdateBuffer;
