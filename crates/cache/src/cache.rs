//! The sharded cache: N [`LruShard`]s behind per-shard locks, with
//! hit/miss statistics and DRAM/PMem placement.

use crate::lru::{CacheEntry, Evicted, LruShard};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tb_common::{deadline_after, fx_hash, Clock, Key, Result, SystemClock, TtlState, Value};
use tb_pmem::{LatencyModel, Medium, PlacementPolicy, SplitPlacement};

/// Cache construction options.
#[derive(Clone)]
pub struct CacheConfig {
    /// Total byte budget across shards.
    pub capacity_bytes: usize,
    /// Shard count (power of two recommended).
    pub shards: usize,
    /// Value placement policy (DRAM vs PMem).
    pub placement: Arc<dyn PlacementPolicy>,
    /// Access-latency premium for PMem-resident values (None = no
    /// simulation; DRAM accesses never pay it).
    pub pmem_latency: Option<LatencyModel>,
    /// Time source for TTL expiry (tests inject a `ManualClock`).
    pub clock: Arc<dyn Clock>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity_bytes: 64 << 20,
            shards: 16,
            placement: Arc::new(SplitPlacement::default()),
            pmem_latency: None,
            clock: Arc::new(SystemClock::new()),
        }
    }
}

impl CacheConfig {
    pub fn with_capacity(capacity_bytes: usize) -> Self {
        Self {
            capacity_bytes,
            ..Self::default()
        }
    }
}

/// Aggregate counters.
#[derive(Debug, Default)]
pub struct CacheStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub evictions: AtomicU64,
    pub inserts: AtomicU64,
    /// Entries reclaimed because their TTL passed (lazy or swept).
    pub expired: AtomicU64,
}

impl CacheStats {
    /// Observed miss ratio (1.0 when no lookups yet).
    pub fn miss_ratio(&self) -> f64 {
        let h = self.hits.load(Ordering::Relaxed);
        let m = self.misses.load(Ordering::Relaxed);
        if h + m == 0 {
            1.0
        } else {
            m as f64 / (h + m) as f64
        }
    }
}

/// Outcome of [`ShardedCache::lookup`].
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// The key is cached and live.
    Live(Value),
    /// The key was cached but its TTL has passed.
    Expired,
    /// The key is not cached.
    Absent,
}

/// A concurrent, bounded, LRU key-value cache.
pub struct ShardedCache {
    shards: Vec<Mutex<LruShard>>,
    placement: Arc<dyn PlacementPolicy>,
    pmem_latency: Option<LatencyModel>,
    clock: Arc<dyn Clock>,
    pub stats: Arc<CacheStats>,
    _obs: tb_obs::SourceGuard,
}

impl ShardedCache {
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.shards > 0);
        let per_shard = (config.capacity_bytes / config.shards).max(1024);
        let shards = (0..config.shards)
            .map(|_| Mutex::new(LruShard::new(per_shard)))
            .collect();
        let stats = Arc::new(CacheStats::default());
        let obs = {
            let stats = stats.clone();
            tb_obs::global().register_source(move |b| {
                b.counter("cache_hits", stats.hits.load(Ordering::Relaxed));
                b.counter("cache_misses", stats.misses.load(Ordering::Relaxed));
                b.counter("cache_evictions", stats.evictions.load(Ordering::Relaxed));
                b.counter("cache_inserts", stats.inserts.load(Ordering::Relaxed));
                b.counter("cache_expired", stats.expired.load(Ordering::Relaxed));
            })
        };
        Self {
            shards,
            placement: config.placement,
            pmem_latency: config.pmem_latency,
            clock: config.clock,
            stats,
            _obs: obs,
        }
    }

    fn shard(&self, key: &Key) -> &Mutex<LruShard> {
        let idx = (fx_hash(key.as_slice()) as usize) % self.shards.len();
        &self.shards[idx]
    }

    /// The cache's time source (shared with TTL bookkeeping).
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Looks up a value, updating recency and hit/miss stats. Expired
    /// entries read as misses. PMem-resident values pay the configured
    /// read-latency premium.
    pub fn get(&self, key: &Key) -> Option<Value> {
        match self.lookup(key) {
            Lookup::Live(v) => Some(v),
            Lookup::Expired | Lookup::Absent => None,
        }
    }

    /// [`get`](Self::get) that distinguishes a key that was present but
    /// expired from one that was never cached — tiered stores must not
    /// fall back to the storage tier for expired keys (the storage copy
    /// is stale by definition).
    pub fn lookup(&self, key: &Key) -> Lookup {
        let now = self.clock.now_nanos();
        let (value, medium, len) = {
            let mut shard = self.shard(key).lock();
            let had_key = shard.peek(key).is_some();
            match shard.get(key, now) {
                Some(e) => {
                    self.stats.hits.fetch_add(1, Ordering::Relaxed);
                    (e.value.clone(), e.medium, e.value.len())
                }
                None => {
                    self.stats.misses.fetch_add(1, Ordering::Relaxed);
                    return if had_key {
                        self.stats.expired.fetch_add(1, Ordering::Relaxed);
                        Lookup::Expired
                    } else {
                        Lookup::Absent
                    };
                }
            }
        };
        if medium == Medium::Pmem {
            if let Some(model) = &self.pmem_latency {
                model.stall_read(len);
            }
        }
        Lookup::Live(value)
    }

    /// Looks up the full entry (value + dirty flag) without stats.
    pub fn peek_entry(&self, key: &Key) -> Option<CacheEntry> {
        self.shard(key).lock().peek(key).cloned()
    }

    /// Inserts a value; returns what was evicted.
    pub fn insert(&self, key: Key, value: Value, dirty: bool) -> Result<Evicted> {
        self.insert_full(key, value, dirty, None)
    }

    /// Inserts a value that expires `ttl` from now.
    pub fn insert_with_ttl(
        &self,
        key: Key,
        value: Value,
        dirty: bool,
        ttl: Duration,
    ) -> Result<Evicted> {
        let deadline = deadline_after(self.clock.now_nanos(), ttl);
        self.insert_full(key, value, dirty, Some(deadline))
    }

    /// Inserts with an explicit absolute expiry deadline (replication
    /// replay, storage re-population).
    pub fn insert_full(
        &self,
        key: Key,
        value: Value,
        dirty: bool,
        expires_at: Option<u64>,
    ) -> Result<Evicted> {
        let medium = self.placement.place_value(value.len());
        self.insert_placed(key, value, dirty, medium, expires_at)
    }

    /// Inserts with an explicit medium (tests, replication replay).
    pub fn insert_placed(
        &self,
        key: Key,
        value: Value,
        dirty: bool,
        medium: Medium,
        expires_at: Option<u64>,
    ) -> Result<Evicted> {
        self.stats.inserts.fetch_add(1, Ordering::Relaxed);
        if medium == Medium::Pmem {
            if let Some(model) = &self.pmem_latency {
                model.stall_write(value.len());
            }
        }
        let evicted = self
            .shard(&key)
            .lock()
            .insert_full(key, value, dirty, medium, expires_at)?;
        self.stats
            .evictions
            .fetch_add(evicted.len() as u64, Ordering::Relaxed);
        Ok(evicted)
    }

    /// Sets a key's TTL. Returns `false` when the key is absent
    /// (Redis `EXPIRE`).
    pub fn expire(&self, key: &Key, ttl: Duration) -> bool {
        let deadline = deadline_after(self.clock.now_nanos(), ttl);
        self.shard(key).lock().set_expiry(key, Some(deadline))
    }

    /// Clears a key's TTL so it never expires. Returns `false` when the
    /// key is absent (Redis `PERSIST`).
    pub fn persist(&self, key: &Key) -> bool {
        self.shard(key).lock().set_expiry(key, None)
    }

    /// The key's TTL state (Redis `TTL`). Expired-but-unswept entries
    /// report [`TtlState::Missing`].
    pub fn ttl_state(&self, key: &Key) -> TtlState {
        let now = self.clock.now_nanos();
        match self.shard(key).lock().expiry_of(key) {
            None => TtlState::Missing,
            Some(deadline) => TtlState::from_deadline(deadline, now),
        }
    }

    /// Live entries whose key starts with `prefix`, sorted by key.
    /// Read-only: no recency updates, no stats, no reclamation.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Key, CacheEntry)> {
        let now = self.clock.now_nanos();
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().scan_prefix(prefix, now));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Live entries with `start <= key < end` (`end = None` =
    /// unbounded above), sorted by key. Read-only: no recency updates,
    /// no stats, no reclamation.
    pub fn scan_range(&self, start: &[u8], end: Option<&[u8]>) -> Vec<(Key, CacheEntry)> {
        let now = self.clock.now_nanos();
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().scan_range(start, end, now));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Active expiration pass over every shard: removes expired clean
    /// entries, returning their keys so the caller can propagate
    /// deletes to the storage tier.
    pub fn sweep_expired(&self) -> Vec<Key> {
        let now = self.clock.now_nanos();
        let mut out = Vec::new();
        for shard in &self.shards {
            for (key, _) in shard.lock().sweep_expired(now) {
                out.push(key);
            }
        }
        self.stats
            .expired
            .fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Removes a key (cache invalidation).
    pub fn remove(&self, key: &Key) -> Option<Value> {
        self.shard(key).lock().remove(key).map(|e| e.value)
    }

    /// Marks an entry clean after its storage write completed.
    pub fn mark_clean(&self, key: &Key) {
        self.shard(key).lock().mark_clean(key);
    }

    /// Collects all dirty entries across shards (write-back flush).
    pub fn dirty_entries(&self) -> Vec<(Key, Value)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().dirty_entries());
        }
        out
    }

    /// Total bytes resident across shards.
    pub fn used_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().used_bytes() as u64)
            .sum()
    }

    /// Bytes held by dirty entries across shards.
    pub fn dirty_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().dirty_bytes() as u64)
            .sum()
    }

    /// Entry count across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes resident per medium `(dram, pmem)` — feeds the blended
    /// space-cost accounting of the PMem configuration.
    pub fn bytes_by_medium(&self) -> (u64, u64) {
        let (mut dram, mut pmem) = (0u64, 0u64);
        for shard in &self.shards {
            let s = shard.lock();
            for key in s.keys_mru_first() {
                let e = s.peek(&key).expect("key just listed");
                let cost = (key.len() + e.value.len() + 64) as u64;
                match e.medium {
                    Medium::Dram => dram += cost,
                    Medium::Pmem => pmem += cost,
                }
            }
        }
        (dram, pmem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity: usize) -> ShardedCache {
        cache_with_clock(capacity, Arc::new(SystemClock::new()))
    }

    fn cache_with_clock(capacity: usize, clock: Arc<dyn Clock>) -> ShardedCache {
        ShardedCache::new(CacheConfig {
            capacity_bytes: capacity,
            shards: 4,
            placement: Arc::new(SplitPlacement {
                value_threshold: 100,
            }),
            pmem_latency: None,
            clock,
        })
    }

    fn k(i: usize) -> Key {
        Key::from(format!("key-{i}"))
    }

    #[test]
    fn hit_miss_stats() {
        let c = cache(1 << 20);
        c.insert(k(1), Value::from("v"), false).unwrap();
        assert!(c.get(&k(1)).is_some());
        assert!(c.get(&k(2)).is_none());
        assert_eq!(c.stats.hits.load(Ordering::Relaxed), 1);
        assert_eq!(c.stats.misses.load(Ordering::Relaxed), 1);
        assert!((c.stats.miss_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn eviction_under_pressure() {
        let c = cache(8 << 10);
        for i in 0..1000 {
            c.insert(k(i), Value::from(vec![b'x'; 64]), false).unwrap();
        }
        assert!(c.used_bytes() <= 8 << 10);
        assert!(c.stats.evictions.load(Ordering::Relaxed) > 0);
        assert!(c.len() < 1000);
    }

    #[test]
    fn placement_routes_values() {
        let c = cache(1 << 20);
        c.insert(k(1), Value::from(vec![0u8; 10]), false).unwrap(); // DRAM
        c.insert(k(2), Value::from(vec![0u8; 500]), false).unwrap(); // PMem
        let (dram, pmem) = c.bytes_by_medium();
        assert!(dram > 0 && pmem > 0);
        assert!(pmem > dram, "large value should dominate PMem bytes");
        assert_eq!(c.peek_entry(&k(2)).unwrap().medium, Medium::Pmem);
    }

    #[test]
    fn dirty_tracking_across_shards() {
        let c = cache(1 << 20);
        for i in 0..20 {
            c.insert(k(i), Value::from("dirty"), true).unwrap();
        }
        assert_eq!(c.dirty_entries().len(), 20);
        assert!(c.dirty_bytes() > 0);
        for i in 0..20 {
            c.mark_clean(&k(i));
        }
        assert_eq!(c.dirty_bytes(), 0);
        assert!(c.dirty_entries().is_empty());
    }

    #[test]
    fn remove_invalidates() {
        let c = cache(1 << 20);
        c.insert(k(1), Value::from("v"), false).unwrap();
        assert_eq!(c.remove(&k(1)), Some(Value::from("v")));
        assert!(c.get(&k(1)).is_none());
        assert_eq!(c.remove(&k(1)), None);
    }

    #[test]
    fn ttl_expires_entries() {
        let clock = tb_common::ManualClock::new();
        let c = cache_with_clock(1 << 20, clock.clone());
        c.insert_with_ttl(k(1), Value::from("v"), false, Duration::from_secs(10))
            .unwrap();
        c.insert(k(2), Value::from("forever"), false).unwrap();
        assert_eq!(c.get(&k(1)), Some(Value::from("v")));
        assert!(matches!(c.ttl_state(&k(1)), TtlState::Remaining(_)));
        assert_eq!(c.ttl_state(&k(2)), TtlState::NoExpiry);
        assert_eq!(c.ttl_state(&k(3)), TtlState::Missing);

        clock.advance(Duration::from_secs(10));
        assert_eq!(c.get(&k(1)), None, "entry expired");
        assert_eq!(c.ttl_state(&k(1)), TtlState::Missing);
        assert_eq!(c.get(&k(2)), Some(Value::from("forever")));
        assert_eq!(c.stats.expired.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn expire_and_persist() {
        let clock = tb_common::ManualClock::new();
        let c = cache_with_clock(1 << 20, clock.clone());
        c.insert(k(1), Value::from("v"), false).unwrap();
        assert!(c.expire(&k(1), Duration::from_secs(5)));
        assert!(!c.expire(&k(9), Duration::from_secs(5)), "absent key");
        assert!(c.persist(&k(1)));
        clock.advance(Duration::from_secs(6));
        assert_eq!(c.get(&k(1)), Some(Value::from("v")), "persist cleared TTL");
    }

    #[test]
    fn overwrite_resets_ttl() {
        let clock = tb_common::ManualClock::new();
        let c = cache_with_clock(1 << 20, clock.clone());
        c.insert_with_ttl(k(1), Value::from("a"), false, Duration::from_secs(1))
            .unwrap();
        // Plain SET replaces the expiry (Redis semantics).
        c.insert(k(1), Value::from("b"), false).unwrap();
        clock.advance(Duration::from_secs(2));
        assert_eq!(c.get(&k(1)), Some(Value::from("b")));
    }

    #[test]
    fn sweep_reclaims_expired_clean_entries() {
        let clock = tb_common::ManualClock::new();
        let c = cache_with_clock(1 << 20, clock.clone());
        for i in 0..10 {
            c.insert_with_ttl(k(i), Value::from("x"), false, Duration::from_secs(1))
                .unwrap();
        }
        for i in 10..15 {
            c.insert(k(i), Value::from("x"), false).unwrap();
        }
        // Dirty entry with TTL: invisible after expiry but not swept.
        c.insert_with_ttl(k(99), Value::from("dirty"), true, Duration::from_secs(1))
            .unwrap();
        clock.advance(Duration::from_secs(2));
        let swept = c.sweep_expired();
        assert_eq!(swept.len(), 10);
        assert_eq!(c.len(), 6, "5 persistent + 1 pinned dirty remain");
        assert_eq!(c.get(&k(99)), None, "expired dirty entry is invisible");
        assert!(c.dirty_bytes() > 0, "dirty entry still pinned for flush");
    }

    #[test]
    fn lookup_distinguishes_expired_from_absent() {
        let clock = tb_common::ManualClock::new();
        let c = cache_with_clock(1 << 20, clock.clone());
        c.insert_with_ttl(k(1), Value::from("v"), true, Duration::from_secs(1))
            .unwrap();
        clock.advance(Duration::from_secs(2));
        assert_eq!(c.lookup(&k(1)), Lookup::Expired);
        assert_eq!(c.lookup(&k(2)), Lookup::Absent);
    }

    #[test]
    fn concurrent_access() {
        let c = Arc::new(cache(1 << 20));
        let mut handles = vec![];
        for t in 0..8 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let key = k(i * 8 + t);
                    c.insert(key.clone(), Value::from(format!("v{t}")), false)
                        .unwrap();
                    assert!(c.get(&key).is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.len(), 4000);
    }
}
