//! Data nodes: a serving engine, an LSN-sequenced replication channel,
//! and the key inventory needed for slot migration.
//!
//! # Write acknowledgement semantics
//!
//! A node write is **acked** (returns `Ok(lsn)`) only after the primary
//! applied it *and* — when a replica is attached — the write shipped
//! through the [`ReplChannel`] and the replica acknowledged it, so the
//! returned LSN is at or below the channel watermark and survives
//! promotion. An `Err` from a write is **indeterminate**: the primary
//! may hold it, but it is covered by no watermark and a failover may
//! lose it — exactly the `tb_common::engine` LSN/ack contract.
//!
//! The key inventory tracks the *primary*, not the ack: a write that
//! applied locally but failed to ship still updates the inventory, so
//! migration and space accounting never diverge from what the primary
//! engine actually holds (the pre-PR-8 dual-write skipped the inventory
//! update on replica failure, stranding the key).

use crate::replication::{ReplChannel, ReplRecord};
use parking_lot::{Mutex, RwLock};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use tb_common::{slot_for_key, Error, Key, KvEngine, Lsn, Result, Value};

/// Cluster-unique node identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// How a data node serves requests.
#[derive(Debug, Clone, Default)]
pub enum ServingMode {
    /// Callers hit the engine directly (the original in-process model).
    #[default]
    Direct,
    /// The engine sits behind a [`tb_frontend::Frontend`]: per-shard
    /// submission queues, write coalescing, and group-commit — the
    /// paper's pipelined data-node serving path (§4.1.2, §4.4).
    Pipelined(tb_frontend::FrontendConfig),
}

/// Factory for fresh replica engines, used to re-seed replication after
/// a promotion consumed the previous replica.
type ReplicaFactory = Box<dyn Fn() -> Arc<dyn KvEngine> + Send + Sync>;

/// A data node: primary engine, optional replication channel, liveness
/// flag, and a key inventory. (The inventory predates
/// [`KvEngine::scan`] and is still what slot migration wants: migration
/// selects by *hash slot*, which is not a contiguous key range.)
pub struct NodeStore {
    pub id: NodeId,
    primary: Arc<dyn KvEngine>,
    /// The serving mode the node was built with, so promotion can
    /// re-wrap the caught-up replica the same way (a pipelined node
    /// stays pipelined across failover).
    mode: ServingMode,
    replication: Option<ReplChannel>,
    /// Builds fresh replica engines for post-promotion re-seeding; a
    /// node without one serves unreplicated after its first failover.
    replica_factory: Option<ReplicaFactory>,
    alive: AtomicBool,
    keys: RwLock<HashSet<Key>>,
    /// Serializes LSN assignment and shipping with the primary apply:
    /// the replication log must see writes in the order the primary
    /// applied them, or promotion replay could resurrect a stale value.
    write_order: Mutex<()>,
    /// Node-local LSN high-water mark. Engines that sequence writes
    /// (the LSM WAL) drive it through [`KvEngine::applied_lsn`];
    /// LSN-less engines fall back to this counter so acks still carry
    /// monotone LSNs.
    seq: AtomicU64,
}

impl NodeStore {
    pub fn new(id: NodeId, primary: Arc<dyn KvEngine>) -> Self {
        Self {
            id,
            primary,
            mode: ServingMode::Direct,
            replication: None,
            replica_factory: None,
            alive: AtomicBool::new(true),
            keys: RwLock::new(HashSet::new()),
            write_order: Mutex::new(()),
            seq: AtomicU64::new(0),
        }
    }

    /// Builds a node whose engine serves in the given mode. Pipelined
    /// mode wraps the engine in a front-end, so every request a client
    /// or the replay harness routes here flows through submission
    /// queues and group-commit batching.
    pub fn with_serving_mode(id: NodeId, engine: Arc<dyn KvEngine>, mode: ServingMode) -> Self {
        let primary = Self::wrap(engine, &mode);
        Self {
            mode,
            ..Self::new(id, primary)
        }
    }

    fn wrap(engine: Arc<dyn KvEngine>, mode: &ServingMode) -> Arc<dyn KvEngine> {
        match mode {
            ServingMode::Direct => engine,
            ServingMode::Pipelined(config) => {
                Arc::new(tb_frontend::Frontend::start(engine, config.clone()))
            }
        }
    }

    /// Attaches a replica behind an LSN-sequenced shipping channel.
    pub fn with_replica(mut self, replica: Arc<dyn KvEngine>) -> Self {
        self.replication = Some(ReplChannel::new(replica));
        self
    }

    /// Attaches a replica *factory*: the node starts replicated (unless
    /// [`Self::with_replica`] already attached one) and — unlike a bare
    /// `with_replica` node — re-seeds a fresh replica after every
    /// promotion, so a second primary crash is survivable.
    pub fn with_replica_factory(
        mut self,
        factory: impl Fn() -> Arc<dyn KvEngine> + Send + Sync + 'static,
    ) -> Self {
        if self.replication.is_none() {
            self.replication = Some(ReplChannel::new(factory()));
        }
        self.replica_factory = Some(Box::new(factory));
        self
    }

    /// Label of the serving engine ("frontend<...>" when pipelined).
    pub fn engine_label(&self) -> String {
        self.primary.label()
    }

    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Actively checks the node's health. The local `alive` flag only
    /// catches simulated [`NodeStore::crash`] calls; a *socket-backed*
    /// primary (a tb-server `ServerClient`) can die remotely without
    /// flipping it. The probe therefore also spends one cheap engine
    /// round trip (an empty `multi_get`) and records a remotely-dead
    /// primary as crashed, so failover sweeps see it.
    pub fn probe(&self) -> bool {
        if !self.is_alive() {
            return false;
        }
        match self.primary.multi_get(&[]) {
            Err(Error::Unavailable(_)) => {
                self.alive.store(false, Ordering::SeqCst);
                false
            }
            _ => true,
        }
    }

    /// Whether a replica is currently attached (failover decides
    /// between promotion and slot reassignment on this).
    pub fn has_replica(&self) -> bool {
        self.replication.is_some()
    }

    /// The replication watermark: every write acked at or below it
    /// survives promotion. `None` without a replica.
    pub fn replication_watermark(&self) -> Option<Lsn> {
        self.replication.as_ref().map(ReplChannel::watermark)
    }

    /// Highest LSN this node has acked (session-token recency bound:
    /// a client holding a token at or below this may read here without
    /// violating read-your-writes).
    pub fn session_lsn(&self) -> Lsn {
        Lsn(self.seq.load(Ordering::SeqCst))
    }

    /// Simulates a crash: the primary stops serving. Replication state
    /// is retained for promotion.
    pub fn crash(&self) {
        self.alive.store(false, Ordering::SeqCst);
    }

    /// Promotes the replica into the primary role; the node serves
    /// again. The caught-up replica is re-wrapped in the node's
    /// original [`ServingMode`], the inventory is pruned to what the
    /// promoted engine actually holds (un-acked writes died with the
    /// old primary), and — when a replica factory is attached — a fresh
    /// replica is seeded from the promoted state so a second crash is
    /// survivable. Errors when no replica exists; a faulted promotion
    /// leaves the channel intact, so a retry resumes the replay.
    pub fn promote_replica(&mut self) -> Result<()> {
        let channel = self
            .replication
            .as_ref()
            .ok_or_else(|| Error::Unavailable(format!("node {:?} has no replica", self.id)))?;
        let caught_up = channel.promote()?;
        let watermark = channel.watermark();
        self.replication = None;
        self.primary = Self::wrap(caught_up.clone(), &self.mode);
        self.seq.store(watermark.0, Ordering::SeqCst);
        // Writes the primary applied but never acked are gone: keep the
        // inventory honest about the promoted engine's contents.
        self.keys
            .write()
            .retain(|k| matches!(caught_up.get(k), Ok(Some(_))));
        if let Some(factory) = &self.replica_factory {
            // Snapshot re-seed: copy promoted state into a fresh
            // replica, then tail-ship from the watermark.
            let fresh = factory();
            for key in self.keys.read().iter() {
                if let Some(value) = caught_up.get(key)? {
                    fresh.put(key.clone(), value)?;
                }
            }
            self.replication = Some(ReplChannel::seeded(fresh, watermark));
        }
        self.alive.store(true, Ordering::SeqCst);
        Ok(())
    }

    fn check_alive(&self) -> Result<()> {
        if self.is_alive() {
            Ok(())
        } else {
            Err(Error::Unavailable(format!("node {:?} is down", self.id)))
        }
    }

    /// Next covering LSN for a write of `n` ops, folding in the
    /// engine's own sequencing when it has one. Callers hold
    /// `write_order`.
    fn next_lsn(&self, n: u64) -> Lsn {
        let applied = self.primary.applied_lsn().0;
        let covering = applied.max(self.seq.load(Ordering::SeqCst) + n);
        self.seq.store(covering, Ordering::SeqCst);
        Lsn(covering)
    }

    pub fn get(&self, key: &Key) -> Result<Option<Value>> {
        self.check_alive()?;
        self.primary.get(key)
    }

    /// Batched lookups; `result[i]` answers `keys[i]`. One engine
    /// submission: through a pipelined serving mode this rides the
    /// front-end's scatter/gather and the storage engine's overlapped
    /// `apply_batch` read path.
    pub fn multi_get(&self, keys: &[Key]) -> Result<Vec<Option<Value>>> {
        self.check_alive()?;
        self.primary.multi_get(keys)
    }

    /// Ordered range scan of this node's share of the keyspace. One
    /// engine submission; through a pipelined serving mode the scan is
    /// one op in a drained front-end batch.
    pub fn scan(&self, start: &Key, end: Option<&Key>, limit: usize) -> Result<Vec<(Key, Value)>> {
        self.check_alive()?;
        self.primary.scan(start, end, limit)
    }

    /// Applies a write to the primary, then ships it. See the module
    /// doc for the ack semantics the return value carries.
    pub fn put(&self, key: Key, value: Value) -> Result<Lsn> {
        self.check_alive()?;
        let _order = self.write_order.lock();
        self.primary.put(key.clone(), value.clone())?;
        self.keys.write().insert(key.clone());
        let lsn = self.next_lsn(1);
        if let Some(channel) = &self.replication {
            channel.ship(lsn, &ReplRecord::Put(key, value))?;
        }
        Ok(lsn)
    }

    pub fn delete(&self, key: &Key) -> Result<Lsn> {
        self.check_alive()?;
        let _order = self.write_order.lock();
        self.primary.delete(key)?;
        self.keys.write().remove(key);
        let lsn = self.next_lsn(1);
        if let Some(channel) = &self.replication {
            channel.ship(lsn, &ReplRecord::Delete(key.clone()))?;
        }
        Ok(lsn)
    }

    /// Coalesced write: one engine submission (through a pipelined
    /// serving mode this rides group commit as a single batch), then
    /// every pair ships through the one replication channel in LSN
    /// order. Returns the covering LSN — the max across the pairs.
    pub fn multi_put(&self, pairs: Vec<(Key, Value)>) -> Result<Lsn> {
        self.check_alive()?;
        if pairs.is_empty() {
            return Ok(Lsn::NONE);
        }
        let _order = self.write_order.lock();
        self.primary.multi_put(pairs.clone())?;
        {
            let mut keys = self.keys.write();
            for (key, _) in &pairs {
                keys.insert(key.clone());
            }
        }
        let n = pairs.len() as u64;
        let covering = self.next_lsn(n);
        if let Some(channel) = &self.replication {
            let base = covering.0 - n;
            for (i, (key, value)) in pairs.into_iter().enumerate() {
                channel.ship(Lsn(base + 1 + i as u64), &ReplRecord::Put(key, value))?;
            }
        }
        Ok(covering)
    }

    /// Keys whose slot is in `slots` (migration source scan).
    pub fn keys_in_slots(&self, slots: &HashSet<u16>) -> Vec<Key> {
        self.keys
            .read()
            .iter()
            .filter(|k| slots.contains(&slot_for_key(k.as_slice())))
            .cloned()
            .collect()
    }

    /// Removes a key from the inventory and engine without liveness
    /// checks (migration cleanup on the source). The eviction ships
    /// like any delete, so a later promotion does not resurrect a
    /// migrated key on this node.
    pub fn evict_migrated(&self, key: &Key) -> Result<()> {
        let _order = self.write_order.lock();
        self.primary.delete(key)?;
        self.keys.write().remove(key);
        let lsn = self.next_lsn(1);
        if let Some(channel) = &self.replication {
            channel.ship(lsn, &ReplRecord::Delete(key.clone()))?;
        }
        Ok(())
    }

    /// Number of keys resident.
    pub fn key_count(&self) -> usize {
        self.keys.read().len()
    }

    /// Engine bytes (space accounting).
    pub fn resident_bytes(&self) -> u64 {
        let mut total = self.primary.resident_bytes();
        if let Some(channel) = &self.replication {
            total += channel.resident_bytes();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::BTreeMap;
    use tb_common::fault::{self, FaultMode};

    pub(crate) struct MapEngine(Mutex<BTreeMap<Key, Value>>);

    impl MapEngine {
        pub(crate) fn shared() -> Arc<dyn KvEngine> {
            Arc::new(Self(Mutex::new(BTreeMap::new())))
        }
    }

    impl KvEngine for MapEngine {
        fn get(&self, key: &Key) -> Result<Option<Value>> {
            Ok(self.0.lock().get(key).cloned())
        }
        fn put(&self, key: Key, value: Value) -> Result<()> {
            self.0.lock().insert(key, value);
            Ok(())
        }
        fn delete(&self, key: &Key) -> Result<()> {
            self.0.lock().remove(key);
            Ok(())
        }
        // Native scan: the trait's default lowers onto `apply_batch`,
        // whose default lowers back — an engine must break the cycle.
        fn scan(&self, start: &Key, end: Option<&Key>, limit: usize) -> Result<Vec<(Key, Value)>> {
            Ok(self
                .0
                .lock()
                .range::<Key, _>((
                    std::ops::Bound::Included(start),
                    end.map_or(std::ops::Bound::Unbounded, std::ops::Bound::Excluded),
                ))
                .take(limit)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect())
        }
        fn resident_bytes(&self) -> u64 {
            self.0
                .lock()
                .iter()
                .map(|(k, v)| (k.len() + v.len()) as u64)
                .sum()
        }
        fn label(&self) -> String {
            "map".into()
        }
    }

    #[test]
    fn crash_blocks_access() {
        let n = NodeStore::new(NodeId(1), MapEngine::shared());
        n.put(Key::from("a"), Value::from("1")).unwrap();
        n.crash();
        assert!(matches!(n.get(&Key::from("a")), Err(Error::Unavailable(_))));
        assert!(matches!(
            n.put(Key::from("b"), Value::from("2")),
            Err(Error::Unavailable(_))
        ));
    }

    #[test]
    fn replica_promotion_restores_data() {
        let mut n =
            NodeStore::new(NodeId(1), MapEngine::shared()).with_replica(MapEngine::shared());
        n.put(Key::from("a"), Value::from("1")).unwrap();
        n.crash();
        n.promote_replica().unwrap();
        assert_eq!(n.get(&Key::from("a")).unwrap(), Some(Value::from("1")));
    }

    #[test]
    fn promotion_without_replica_fails() {
        let mut n = NodeStore::new(NodeId(1), MapEngine::shared());
        n.crash();
        assert!(matches!(n.promote_replica(), Err(Error::Unavailable(_))));
    }

    #[test]
    fn writes_carry_monotone_lsns_matching_the_watermark() {
        let n = NodeStore::new(NodeId(1), MapEngine::shared()).with_replica(MapEngine::shared());
        let mut last = Lsn::NONE;
        for i in 0..10 {
            let lsn = n.put(Key::from(format!("k{i}")), Value::from("v")).unwrap();
            assert!(lsn > last, "acked LSNs must be strictly monotone");
            last = lsn;
        }
        let covering = n
            .multi_put(
                (0..4)
                    .map(|i| (Key::from(format!("m{i}")), Value::from("v")))
                    .collect(),
            )
            .unwrap();
        assert!(covering > last);
        assert_eq!(n.replication_watermark(), Some(covering));
        assert_eq!(n.session_lsn(), covering);
        let del = n.delete(&Key::from("k0")).unwrap();
        assert!(del > covering);
    }

    #[test]
    fn failed_ship_keeps_primary_ack_and_inventory_aligned() {
        // The pre-PR-8 dual-write skipped the inventory update when the
        // replica write failed: the key existed on the primary but
        // migration could never see it. Now the inventory tracks the
        // primary, and the error tells the caller the ack is
        // indeterminate (covered by no watermark).
        let n = NodeStore::new(NodeId(1), MapEngine::shared()).with_replica(MapEngine::shared());
        fault::arm_scoped("repl.ship", 1, FaultMode::Error);
        let err = n.put(Key::from("a"), Value::from("1"));
        fault::reset();
        assert!(err.is_err(), "a failed ship must not ack");
        assert_eq!(
            n.get(&Key::from("a")).unwrap(),
            Some(Value::from("1")),
            "primary applied the write"
        );
        assert_eq!(n.key_count(), 1, "inventory tracks the primary");
        assert_eq!(n.replication_watermark(), Some(Lsn::NONE));
        // The write was never acked, so losing it via promotion is
        // allowed — and the log stayed parseable for the next ship.
        n.put(Key::from("b"), Value::from("2")).unwrap();
    }

    #[test]
    fn promotion_preserves_the_serving_mode() {
        let mut n = NodeStore::with_serving_mode(
            NodeId(3),
            MapEngine::shared(),
            ServingMode::Pipelined(tb_frontend::FrontendConfig::with_shards(2)),
        )
        .with_replica(MapEngine::shared());
        assert_eq!(n.engine_label(), "frontend<map>");
        n.put(Key::from("a"), Value::from("1")).unwrap();
        n.crash();
        n.promote_replica().unwrap();
        assert_eq!(
            n.engine_label(),
            "frontend<map>",
            "promotion must re-wrap the replica in the node's serving mode"
        );
        assert_eq!(n.get(&Key::from("a")).unwrap(), Some(Value::from("1")));
    }

    #[test]
    fn replica_factory_survives_two_crashes() {
        let mut n =
            NodeStore::new(NodeId(4), MapEngine::shared()).with_replica_factory(MapEngine::shared);
        n.put(Key::from("a"), Value::from("1")).unwrap();
        n.crash();
        n.promote_replica().unwrap();
        assert!(n.has_replica(), "promotion must re-seed a fresh replica");
        n.put(Key::from("b"), Value::from("2")).unwrap();
        n.crash();
        n.promote_replica().unwrap();
        assert_eq!(n.get(&Key::from("a")).unwrap(), Some(Value::from("1")));
        assert_eq!(n.get(&Key::from("b")).unwrap(), Some(Value::from("2")));
    }

    #[test]
    fn pipelined_serving_mode_wraps_engine_in_frontend() {
        let n = NodeStore::with_serving_mode(
            NodeId(7),
            MapEngine::shared(),
            ServingMode::Pipelined(tb_frontend::FrontendConfig::with_shards(2)),
        );
        assert_eq!(n.engine_label(), "frontend<map>");
        for i in 0..200 {
            n.put(Key::from(format!("k{i}")), Value::from("v")).unwrap();
        }
        assert_eq!(n.get(&Key::from("k42")).unwrap(), Some(Value::from("v")));
        n.delete(&Key::from("k42")).unwrap();
        assert_eq!(n.get(&Key::from("k42")).unwrap(), None);
        // Direct mode leaves the engine unwrapped.
        let d = NodeStore::with_serving_mode(NodeId(8), MapEngine::shared(), ServingMode::Direct);
        assert_eq!(d.engine_label(), "map");
    }

    #[test]
    fn slot_scan_finds_keys() {
        let n = NodeStore::new(NodeId(1), MapEngine::shared());
        let keys: Vec<Key> = (0..50).map(|i| Key::from(format!("k{i}"))).collect();
        for k in &keys {
            n.put(k.clone(), Value::from("v")).unwrap();
        }
        let all_slots: HashSet<u16> = keys.iter().map(|k| slot_for_key(k.as_slice())).collect();
        assert_eq!(n.keys_in_slots(&all_slots).len(), 50);
        let none: HashSet<u16> = HashSet::new();
        assert!(n.keys_in_slots(&none).is_empty());
    }
}
