//! Data nodes: an engine plus replication and the key inventory needed
//! for slot migration.

use parking_lot::RwLock;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tb_common::{slot_for_key, Error, Key, KvEngine, Result, Value};

/// Cluster-unique node identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// How a data node serves requests.
#[derive(Debug, Clone, Default)]
pub enum ServingMode {
    /// Callers hit the engine directly (the original in-process model).
    #[default]
    Direct,
    /// The engine sits behind a [`tb_frontend::Frontend`]: per-shard
    /// submission queues, write coalescing, and group-commit — the
    /// paper's pipelined data-node serving path (§4.1.2, §4.4).
    Pipelined(tb_frontend::FrontendConfig),
}

/// A data node: primary engine, optional replica engine, liveness flag,
/// and a key inventory. (The inventory predates [`KvEngine::scan`] and
/// is still what slot migration wants: migration selects by *hash
/// slot*, which is not a contiguous key range.)
pub struct NodeStore {
    pub id: NodeId,
    primary: Arc<dyn KvEngine>,
    replica: Option<Arc<dyn KvEngine>>,
    alive: AtomicBool,
    keys: RwLock<HashSet<Key>>,
}

impl NodeStore {
    pub fn new(id: NodeId, primary: Arc<dyn KvEngine>) -> Self {
        Self {
            id,
            primary,
            replica: None,
            alive: AtomicBool::new(true),
            keys: RwLock::new(HashSet::new()),
        }
    }

    /// Builds a node whose engine serves in the given mode. Pipelined
    /// mode wraps the engine in a front-end, so every request a client
    /// or the replay harness routes here flows through submission
    /// queues and group-commit batching.
    pub fn with_serving_mode(id: NodeId, engine: Arc<dyn KvEngine>, mode: ServingMode) -> Self {
        let primary: Arc<dyn KvEngine> = match mode {
            ServingMode::Direct => engine,
            ServingMode::Pipelined(config) => {
                Arc::new(tb_frontend::Frontend::start(engine, config))
            }
        };
        Self::new(id, primary)
    }

    /// Attaches a synchronous replica.
    pub fn with_replica(mut self, replica: Arc<dyn KvEngine>) -> Self {
        self.replica = Some(replica);
        self
    }

    /// Label of the serving engine ("frontend<...>" when pipelined).
    pub fn engine_label(&self) -> String {
        self.primary.label()
    }

    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Simulates a crash: the primary stops serving. Replica state is
    /// retained for promotion.
    pub fn crash(&self) {
        self.alive.store(false, Ordering::SeqCst);
    }

    /// Promotes the replica into the primary role; the node serves
    /// again. Errors when no replica exists.
    pub fn promote_replica(&mut self) -> Result<()> {
        let replica = self
            .replica
            .take()
            .ok_or_else(|| Error::Unavailable(format!("node {:?} has no replica", self.id)))?;
        self.primary = replica;
        self.alive.store(true, Ordering::SeqCst);
        Ok(())
    }

    fn check_alive(&self) -> Result<()> {
        if self.is_alive() {
            Ok(())
        } else {
            Err(Error::Unavailable(format!("node {:?} is down", self.id)))
        }
    }

    pub fn get(&self, key: &Key) -> Result<Option<Value>> {
        self.check_alive()?;
        self.primary.get(key)
    }

    /// Batched lookups; `result[i]` answers `keys[i]`. One engine
    /// submission: through a pipelined serving mode this rides the
    /// front-end's scatter/gather and the storage engine's overlapped
    /// `apply_batch` read path.
    pub fn multi_get(&self, keys: &[Key]) -> Result<Vec<Option<Value>>> {
        self.check_alive()?;
        self.primary.multi_get(keys)
    }

    /// Ordered range scan of this node's share of the keyspace. One
    /// engine submission; through a pipelined serving mode the scan is
    /// one op in a drained front-end batch.
    pub fn scan(&self, start: &Key, end: Option<&Key>, limit: usize) -> Result<Vec<(Key, Value)>> {
        self.check_alive()?;
        self.primary.scan(start, end, limit)
    }

    pub fn put(&self, key: Key, value: Value) -> Result<()> {
        self.check_alive()?;
        self.primary.put(key.clone(), value.clone())?;
        if let Some(r) = &self.replica {
            r.put(key.clone(), value)?;
        }
        self.keys.write().insert(key);
        Ok(())
    }

    pub fn delete(&self, key: &Key) -> Result<()> {
        self.check_alive()?;
        self.primary.delete(key)?;
        if let Some(r) = &self.replica {
            r.delete(key)?;
        }
        self.keys.write().remove(key);
        Ok(())
    }

    /// Keys whose slot is in `slots` (migration source scan).
    pub fn keys_in_slots(&self, slots: &HashSet<u16>) -> Vec<Key> {
        self.keys
            .read()
            .iter()
            .filter(|k| slots.contains(&slot_for_key(k.as_slice())))
            .cloned()
            .collect()
    }

    /// Removes a key from the inventory and engine without liveness
    /// checks (migration cleanup on the source).
    pub fn evict_migrated(&self, key: &Key) -> Result<()> {
        self.primary.delete(key)?;
        if let Some(r) = &self.replica {
            r.delete(key)?;
        }
        self.keys.write().remove(key);
        Ok(())
    }

    /// Number of keys resident.
    pub fn key_count(&self) -> usize {
        self.keys.read().len()
    }

    /// Engine bytes (space accounting).
    pub fn resident_bytes(&self) -> u64 {
        let mut total = self.primary.resident_bytes();
        if let Some(r) = &self.replica {
            total += r.resident_bytes();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::BTreeMap;

    pub(crate) struct MapEngine(Mutex<BTreeMap<Key, Value>>);

    impl MapEngine {
        pub(crate) fn shared() -> Arc<dyn KvEngine> {
            Arc::new(Self(Mutex::new(BTreeMap::new())))
        }
    }

    impl KvEngine for MapEngine {
        fn get(&self, key: &Key) -> Result<Option<Value>> {
            Ok(self.0.lock().get(key).cloned())
        }
        fn put(&self, key: Key, value: Value) -> Result<()> {
            self.0.lock().insert(key, value);
            Ok(())
        }
        fn delete(&self, key: &Key) -> Result<()> {
            self.0.lock().remove(key);
            Ok(())
        }
        // Native scan: the trait's default lowers onto `apply_batch`,
        // whose default lowers back — an engine must break the cycle.
        fn scan(&self, start: &Key, end: Option<&Key>, limit: usize) -> Result<Vec<(Key, Value)>> {
            Ok(self
                .0
                .lock()
                .range::<Key, _>((
                    std::ops::Bound::Included(start),
                    end.map_or(std::ops::Bound::Unbounded, std::ops::Bound::Excluded),
                ))
                .take(limit)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect())
        }
        fn resident_bytes(&self) -> u64 {
            self.0
                .lock()
                .iter()
                .map(|(k, v)| (k.len() + v.len()) as u64)
                .sum()
        }
        fn label(&self) -> String {
            "map".into()
        }
    }

    #[test]
    fn crash_blocks_access() {
        let n = NodeStore::new(NodeId(1), MapEngine::shared());
        n.put(Key::from("a"), Value::from("1")).unwrap();
        n.crash();
        assert!(matches!(n.get(&Key::from("a")), Err(Error::Unavailable(_))));
        assert!(matches!(
            n.put(Key::from("b"), Value::from("2")),
            Err(Error::Unavailable(_))
        ));
    }

    #[test]
    fn replica_promotion_restores_data() {
        let mut n =
            NodeStore::new(NodeId(1), MapEngine::shared()).with_replica(MapEngine::shared());
        n.put(Key::from("a"), Value::from("1")).unwrap();
        n.crash();
        n.promote_replica().unwrap();
        assert_eq!(n.get(&Key::from("a")).unwrap(), Some(Value::from("1")));
    }

    #[test]
    fn promotion_without_replica_fails() {
        let mut n = NodeStore::new(NodeId(1), MapEngine::shared());
        n.crash();
        assert!(matches!(n.promote_replica(), Err(Error::Unavailable(_))));
    }

    #[test]
    fn pipelined_serving_mode_wraps_engine_in_frontend() {
        let n = NodeStore::with_serving_mode(
            NodeId(7),
            MapEngine::shared(),
            ServingMode::Pipelined(tb_frontend::FrontendConfig::with_shards(2)),
        );
        assert_eq!(n.engine_label(), "frontend<map>");
        for i in 0..200 {
            n.put(Key::from(format!("k{i}")), Value::from("v")).unwrap();
        }
        assert_eq!(n.get(&Key::from("k42")).unwrap(), Some(Value::from("v")));
        n.delete(&Key::from("k42")).unwrap();
        assert_eq!(n.get(&Key::from("k42")).unwrap(), None);
        // Direct mode leaves the engine unwrapped.
        let d = NodeStore::with_serving_mode(NodeId(8), MapEngine::shared(), ServingMode::Direct);
        assert_eq!(d.engine_label(), "map");
    }

    #[test]
    fn slot_scan_finds_keys() {
        let n = NodeStore::new(NodeId(1), MapEngine::shared());
        let keys: Vec<Key> = (0..50).map(|i| Key::from(format!("k{i}"))).collect();
        for k in &keys {
            n.put(k.clone(), Value::from("v")).unwrap();
        }
        let all_slots: HashSet<u16> = keys.iter().map(|k| slot_for_key(k.as_slice())).collect();
        assert_eq!(n.keys_in_slots(&all_slots).len(), 50);
        let none: HashSet<u16> = HashSet::new();
        assert!(n.keys_in_slots(&none).is_empty());
    }
}
