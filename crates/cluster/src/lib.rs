//! TierBase's distributed layer (§3): hash-slot sharding, a coordinator
//! group with leader election, node failover with replica promotion,
//! smart clients with cached routing, and a proxy for thin clients.
//!
//! Everything runs in-process — nodes are [`KvEngine`] instances and
//! "RPCs" are method calls — but the control-plane protocol is real:
//! routing epochs, stale-routing errors, replica promotion, and slot
//! migration behave as they would across machines.

pub mod client;
pub mod coordinator;
pub mod node;
pub mod replication;
pub mod routing;

pub use client::{ClusterClient, Proxy};
pub use coordinator::{Coordinator, CoordinatorGroup};
pub use node::{NodeId, NodeStore, ServingMode};
pub use replication::{ReplChannel, ReplRecord, REPL_FAULT_SITES};
pub use routing::RoutingTable;
