//! Slot → node routing table with epochs.

use crate::node::NodeId;
use tb_common::{slot_for_key, SLOT_COUNT};

/// Immutable snapshot of slot ownership at one epoch. Clients cache a
/// snapshot and refresh when a node reports a newer epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingTable {
    /// Monotonic version; bumps on any ownership change.
    pub epoch: u64,
    /// Owner of each slot.
    slots: Vec<NodeId>,
}

impl RoutingTable {
    /// Assigns slots round-robin across `nodes` (even sharding, the
    /// cost model's baseline assumption).
    pub fn even(epoch: u64, nodes: &[NodeId]) -> Self {
        assert!(!nodes.is_empty(), "routing table needs at least one node");
        let slots = (0..SLOT_COUNT as usize)
            .map(|s| nodes[s % nodes.len()])
            .collect();
        Self { epoch, slots }
    }

    /// Owner of a slot.
    pub fn owner_of_slot(&self, slot: u16) -> NodeId {
        self.slots[slot as usize]
    }

    /// Owner of a key.
    pub fn owner_of_key(&self, key: &[u8]) -> NodeId {
        self.owner_of_slot(slot_for_key(key))
    }

    /// Slots owned by `node`.
    pub fn slots_of(&self, node: NodeId) -> Vec<u16> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, &n)| n == node)
            .map(|(s, _)| s as u16)
            .collect()
    }

    /// New table with every slot of `from` handed to `to` (failover or
    /// decommission), epoch bumped.
    pub fn reassign_all(&self, from: NodeId, to: NodeId) -> Self {
        let slots = self
            .slots
            .iter()
            .map(|&n| if n == from { to } else { n })
            .collect();
        Self {
            epoch: self.epoch + 1,
            slots,
        }
    }

    /// New table with an explicit set of slots moved to `to` (scaling /
    /// rebalancing), epoch bumped.
    pub fn reassign_slots(&self, moved: &[u16], to: NodeId) -> Self {
        let mut slots = self.slots.clone();
        for &s in moved {
            slots[s as usize] = to;
        }
        Self {
            epoch: self.epoch + 1,
            slots,
        }
    }

    /// Per-node slot counts (balance diagnostics).
    pub fn distribution(&self) -> Vec<(NodeId, usize)> {
        let mut counts: std::collections::BTreeMap<NodeId, usize> = Default::default();
        for &n in &self.slots {
            *counts.entry(n).or_default() += 1;
        }
        counts.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn even_assignment_is_balanced() {
        let t = RoutingTable::even(1, &nodes(4));
        for (_, count) in t.distribution() {
            assert_eq!(count, SLOT_COUNT as usize / 4);
        }
    }

    #[test]
    fn key_routing_is_deterministic() {
        let t = RoutingTable::even(1, &nodes(3));
        assert_eq!(t.owner_of_key(b"user:1"), t.owner_of_key(b"user:1"));
        // Hash tags land together.
        assert_eq!(
            t.owner_of_key(b"user:{42}:a"),
            t.owner_of_key(b"user:{42}:b")
        );
    }

    #[test]
    fn reassign_all_moves_everything_and_bumps_epoch() {
        let t = RoutingTable::even(1, &nodes(2));
        let t2 = t.reassign_all(NodeId(0), NodeId(1));
        assert_eq!(t2.epoch, 2);
        assert!(t2.slots_of(NodeId(0)).is_empty());
        assert_eq!(t2.slots_of(NodeId(1)).len(), SLOT_COUNT as usize);
    }

    #[test]
    fn reassign_slots_moves_subset() {
        let t = RoutingTable::even(1, &nodes(2));
        let moved: Vec<u16> = t.slots_of(NodeId(0)).into_iter().take(100).collect();
        let t2 = t.reassign_slots(&moved, NodeId(1));
        assert_eq!(t2.slots_of(NodeId(0)).len(), SLOT_COUNT as usize / 2 - 100);
        for s in moved {
            assert_eq!(t2.owner_of_slot(s), NodeId(1));
        }
    }
}
