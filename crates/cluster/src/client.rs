//! Smart client and proxy (§3 client tier).
//!
//! The smart client caches a routing snapshot from the coordinators,
//! routes each operation directly to its slot owner, and refreshes the
//! snapshot + retries when a node is down or routing moved (failover
//! transparency). The proxy wraps a client behind the plain
//! [`KvEngine`] interface for thin (native-Redis-style) callers.

use crate::coordinator::CoordinatorGroup;
use crate::node::NodeId;
use crate::routing::RoutingTable;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;
use tb_common::{EngineOp, Error, Key, KvEngine, Lsn, OpOutcome, Result, Value};

/// A routing-aware cluster client.
pub struct ClusterClient {
    coordinators: Arc<CoordinatorGroup>,
    cached: RwLock<Arc<RoutingTable>>,
    /// Per-node fan-out latency instruments, cached so the hot path
    /// pays a map read instead of a registry lock per call.
    node_histos: RwLock<BTreeMap<NodeId, Arc<tb_obs::Histo>>>,
    /// Per-node LSN session tokens: the highest write LSN this client
    /// was acked by each node. Reads refuse to land on a node that has
    /// not caught up to the token — read-your-writes and monotonic
    /// reads hold across a failover, because a promoted replica resumes
    /// at the replication watermark, which covers every acked write.
    sessions: RwLock<BTreeMap<NodeId, u64>>,
}

impl ClusterClient {
    /// Connects and fetches the initial routing snapshot.
    pub fn connect(coordinators: Arc<CoordinatorGroup>) -> Self {
        let cached = coordinators.routing();
        Self {
            coordinators,
            cached: RwLock::new(cached),
            node_histos: RwLock::new(BTreeMap::new()),
            sessions: RwLock::new(BTreeMap::new()),
        }
    }

    /// This session's token for `node` (test visibility).
    pub fn session_token(&self, node: NodeId) -> Lsn {
        Lsn(self.sessions.read().get(&node).copied().unwrap_or(0))
    }

    /// Folds an acked write LSN into the session token for `node`.
    fn note_write(&self, node: NodeId, lsn: Lsn) {
        if lsn.is_none() {
            return;
        }
        let mut sessions = self.sessions.write();
        let token = sessions.entry(node).or_insert(0);
        *token = (*token).max(lsn.0);
    }

    /// Refuses a read from a node that trails this session's token —
    /// surfaced as `Unavailable` so the caller's failover-retry path
    /// lands the read on a caught-up primary.
    fn check_session(&self, node: &crate::node::NodeStore) -> Result<()> {
        let token = self.sessions.read().get(&node.id).copied().unwrap_or(0);
        if token > 0 && node.session_lsn().0 < token {
            return Err(Error::Unavailable(format!(
                "node {:?} at lsn {} trails session token {token}",
                node.id,
                node.session_lsn().0
            )));
        }
        Ok(())
    }

    /// Epoch of the cached snapshot (test visibility).
    pub fn cached_epoch(&self) -> u64 {
        self.cached.read().epoch
    }

    fn refresh(&self) {
        *self.cached.write() = self.coordinators.routing();
    }

    /// The fan-out latency histogram of one data node.
    fn node_histo(&self, node: NodeId) -> Arc<tb_obs::Histo> {
        if let Some(h) = self.node_histos.read().get(&node) {
            return h.clone();
        }
        let h = tb_obs::global().histogram(&format!("cluster_node{}_fanout_ns", node.0));
        self.node_histos.write().entry(node).or_insert(h).clone()
    }

    /// Records a failover the client just triggered: the counter for
    /// rates, a tracer point event (keyed by the down node) for the
    /// timeline.
    fn note_failover(&self, down: NodeId) {
        tb_obs::counter!("cluster_failovers").add(1);
        tb_obs::tracer().event("cluster.failover", u64::from(down.0));
    }

    /// Routes an operation; on node failure triggers coordinator
    /// failover, refreshes routing, and retries once.
    fn with_owner<T>(
        &self,
        key: &Key,
        f: impl Fn(&crate::node::NodeStore) -> Result<T>,
    ) -> Result<T> {
        for attempt in 0..2 {
            let table = self.cached.read().clone();
            let owner = table.owner_of_key(key.as_slice());
            let node = self.coordinators.node(owner)?;
            let t0 = tb_obs::start();
            let result = {
                let guard = node.read();
                f(&guard)
            };
            if t0.is_some() {
                self.node_histo(owner).record_since(t0);
            }
            match result {
                Err(Error::Unavailable(_)) if attempt == 0 => {
                    // Node down: ask the control plane to fail over,
                    // then retry against fresh routing.
                    self.coordinators.run_failover()?;
                    self.refresh();
                    self.note_failover(owner);
                }
                other => return other,
            }
        }
        Err(Error::Unavailable("retries exhausted".into()))
    }

    pub fn get(&self, key: &Key) -> Result<Option<Value>> {
        self.with_owner(key, |n| {
            self.check_session(n)?;
            n.get(key)
        })
    }

    pub fn put(&self, key: Key, value: Value) -> Result<()> {
        let (node, lsn) = self.with_owner(&key.clone(), move |n| {
            n.put(key.clone(), value.clone()).map(|lsn| (n.id, lsn))
        })?;
        self.note_write(node, lsn);
        Ok(())
    }

    pub fn delete(&self, key: &Key) -> Result<()> {
        let (node, lsn) = self.with_owner(key, |n| n.delete(key).map(|lsn| (n.id, lsn)))?;
        self.note_write(node, lsn);
        Ok(())
    }

    /// Batched lookup across the cluster: keys group by owning node
    /// (one batched call each — the node's engine overlaps the batch's
    /// storage reads), results gather in request order. A down node
    /// triggers one failover + routing refresh, after which **only the
    /// failed groups** regroup against the refreshed table and retry —
    /// groups that already answered keep their results, so a failover
    /// mid-gather never re-fetches (or double-counts in the engines'
    /// batch stats) work that succeeded.
    pub fn multi_get(&self, keys: &[Key]) -> Result<Vec<Option<Value>>> {
        let mut out = vec![None; keys.len()];
        // Request positions still awaiting an answer.
        let mut pending: Vec<usize> = (0..keys.len()).collect();
        let mut down: Option<NodeId> = None;
        for attempt in 0..2 {
            let table = self.cached.read().clone();
            let mut groups: BTreeMap<NodeId, (Vec<usize>, Vec<Key>)> = BTreeMap::new();
            for &i in &pending {
                let owner = table.owner_of_key(keys[i].as_slice());
                let entry = groups.entry(owner).or_default();
                entry.0.push(i);
                entry.1.push(keys[i].clone());
            }
            let mut failed: Vec<usize> = Vec::new();
            for (owner, (idx, group)) in groups {
                let node = self.coordinators.node(owner)?;
                let t0 = tb_obs::start();
                let values = {
                    let guard = node.read();
                    self.check_session(&guard)
                        .and_then(|_| guard.multi_get(&group))
                };
                if t0.is_some() {
                    self.node_histo(owner).record_since(t0);
                }
                match values {
                    Ok(values) => {
                        for (slot, v) in idx.into_iter().zip(values) {
                            out[slot] = v;
                        }
                    }
                    Err(Error::Unavailable(_)) if attempt == 0 => {
                        // Remember the group; keep gathering the rest of
                        // this attempt before failing over once.
                        failed.extend(idx);
                        down = Some(owner);
                    }
                    Err(e) => return Err(e),
                }
            }
            if failed.is_empty() {
                return Ok(out);
            }
            self.coordinators.run_failover()?;
            self.refresh();
            if let Some(owner) = down.take() {
                self.note_failover(owner);
            }
            // The retry regroups only the failed positions against the
            // refreshed table.
            tb_obs::counter!("cluster_regroups").add(1);
            pending = failed;
        }
        Err(Error::Unavailable("retries exhausted".into()))
    }

    /// Ordered range scan across the cluster. Hash-slot routing
    /// scatters any key range over every node, so the scan fans out to
    /// each slot owner (whose engine runs its own batched scan, bounded
    /// by `limit`) and merges the per-node results in key order,
    /// truncated to `limit`. A down node triggers one failover +
    /// routing refresh, after which **only the failed nodes' slots**
    /// retry against their refreshed owners — shares that already
    /// answered are kept, the multi_get partial-retry shape. The merge
    /// dedups by key (first answer wins), so a retry that lands on a
    /// node which already contributed cannot double-report.
    pub fn scan(&self, start: &Key, end: Option<&Key>, limit: usize) -> Result<Vec<(Key, Value)>> {
        let mut merged: BTreeMap<Key, Value> = BTreeMap::new();
        let mut pending: Vec<NodeId> = self
            .cached
            .read()
            .distribution()
            .into_iter()
            .map(|(node, _)| node)
            .collect();
        for attempt in 0..2 {
            let table = self.cached.read().clone();
            let mut failed: Vec<NodeId> = Vec::new();
            for &owner in &pending {
                let node = self.coordinators.node(owner)?;
                let t0 = tb_obs::start();
                let rows = {
                    let guard = node.read();
                    self.check_session(&guard)
                        .and_then(|_| guard.scan(start, end, limit))
                };
                if t0.is_some() {
                    self.node_histo(owner).record_since(t0);
                }
                match rows {
                    Ok(rows) => {
                        for (k, v) in rows {
                            merged.entry(k).or_insert(v);
                        }
                    }
                    Err(Error::Unavailable(_)) if attempt == 0 => failed.push(owner),
                    Err(e) => return Err(e),
                }
            }
            if failed.is_empty() {
                return Ok(merged.into_iter().take(limit).collect());
            }
            self.coordinators.run_failover()?;
            self.refresh();
            for &owner in &failed {
                self.note_failover(owner);
            }
            tb_obs::counter!("cluster_regroups").add(1);
            // Retry against whoever now owns the failed nodes' slots
            // (the promoted node keeps its id; a reassignment moves
            // them to a surviving peer).
            let after = self.cached.read().clone();
            let mut retry: Vec<NodeId> = failed
                .iter()
                .flat_map(|&down| table.slots_of(down))
                .map(|slot| after.owner_of_slot(slot))
                .collect();
            retry.sort_unstable();
            retry.dedup();
            pending = retry;
        }
        Err(Error::Unavailable("retries exhausted".into()))
    }
}

/// Proxy service: a [`KvEngine`] façade over the cluster for clients
/// that do not speak the routing protocol.
pub struct Proxy {
    client: ClusterClient,
}

impl Proxy {
    pub fn new(coordinators: Arc<CoordinatorGroup>) -> Self {
        Self {
            client: ClusterClient::connect(coordinators),
        }
    }
}

impl KvEngine for Proxy {
    fn get(&self, key: &Key) -> Result<Option<Value>> {
        self.client.get(key)
    }

    fn put(&self, key: Key, value: Value) -> Result<()> {
        self.client.put(key, value)
    }

    fn delete(&self, key: &Key) -> Result<()> {
        self.client.delete(key)
    }

    fn multi_get(&self, keys: &[Key]) -> Result<Vec<Option<Value>>> {
        self.client.multi_get(keys)
    }

    fn scan(&self, start: &Key, end: Option<&Key>, limit: usize) -> Result<Vec<(Key, Value)>> {
        self.client.scan(start, end, limit)
    }

    /// Per-op lowering that preserves the proxy's amortized entry
    /// points: the trait's default would unroll `MultiGet` into point
    /// gets, losing the client's per-node grouping.
    fn apply_batch(&self, ops: Vec<EngineOp>) -> Vec<Result<OpOutcome>> {
        ops.into_iter()
            .map(|op| match op {
                EngineOp::Get(key) => self.get(&key).map(OpOutcome::Value),
                // The proxy's `()`-acked entry points erase per-node
                // LSNs (the client still folds them into its session
                // tokens), so batch acks carry `Lsn::NONE`.
                EngineOp::Put(key, value) => {
                    self.put(key, value).map(|_| OpOutcome::Done(Lsn::NONE))
                }
                EngineOp::Delete(key) => self.delete(&key).map(|_| OpOutcome::Done(Lsn::NONE)),
                EngineOp::Cas { key, expected, new } => self
                    .cas(key, expected.as_ref(), new)
                    .map(|_| OpOutcome::Done(Lsn::NONE)),
                EngineOp::MultiGet(keys) => self.multi_get(&keys).map(OpOutcome::Values),
                // Inline put loop, not `self.multi_put`: the proxy has
                // no native multi_put, and the trait default routes back
                // through `apply_batch` — per-key puts each reach their
                // owning node anyway.
                EngineOp::MultiPut(pairs) => {
                    let mut result = Ok(());
                    for (k, v) in pairs {
                        result = self.put(k, v);
                        if result.is_err() {
                            break;
                        }
                    }
                    result.map(|_| OpOutcome::Done(Lsn::NONE))
                }
                EngineOp::Scan { start, end, limit } => {
                    self.scan(&start, end.as_ref(), limit).map(OpOutcome::Range)
                }
            })
            .collect()
    }

    fn resident_bytes(&self) -> u64 {
        0 // the proxy holds no data
    }

    fn label(&self) -> String {
        "tierbase-proxy".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::CoordinatorGroup;
    use crate::node::{NodeId, NodeStore};
    use parking_lot::Mutex;
    use std::collections::BTreeMap;

    struct MapEngine(Mutex<BTreeMap<Key, Value>>);

    impl MapEngine {
        fn shared() -> Arc<dyn KvEngine> {
            Arc::new(Self(Mutex::new(BTreeMap::new())))
        }
    }

    impl KvEngine for MapEngine {
        fn get(&self, key: &Key) -> Result<Option<Value>> {
            Ok(self.0.lock().get(key).cloned())
        }
        fn put(&self, key: Key, value: Value) -> Result<()> {
            self.0.lock().insert(key, value);
            Ok(())
        }
        fn delete(&self, key: &Key) -> Result<()> {
            self.0.lock().remove(key);
            Ok(())
        }
        fn scan(&self, start: &Key, end: Option<&Key>, limit: usize) -> Result<Vec<(Key, Value)>> {
            Ok(self
                .0
                .lock()
                .range::<Key, _>((
                    std::ops::Bound::Included(start),
                    end.map_or(std::ops::Bound::Unbounded, std::ops::Bound::Excluded),
                ))
                .take(limit)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect())
        }
        fn resident_bytes(&self) -> u64 {
            0
        }
        fn label(&self) -> String {
            "map".into()
        }
    }

    fn cluster(n: u32) -> Arc<CoordinatorGroup> {
        let nodes = (0..n)
            .map(|i| {
                NodeStore::new(NodeId(i), MapEngine::shared()).with_replica(MapEngine::shared())
            })
            .collect();
        Arc::new(CoordinatorGroup::bootstrap(3, nodes).unwrap())
    }

    #[test]
    fn client_routes_and_reads_back() {
        let c = cluster(4);
        let client = ClusterClient::connect(c);
        for i in 0..500 {
            client
                .put(Key::from(format!("k{i}")), Value::from(format!("v{i}")))
                .unwrap();
        }
        for i in 0..500 {
            assert_eq!(
                client.get(&Key::from(format!("k{i}"))).unwrap(),
                Some(Value::from(format!("v{i}")))
            );
        }
        client.delete(&Key::from("k0")).unwrap();
        assert_eq!(client.get(&Key::from("k0")).unwrap(), None);
    }

    #[test]
    fn client_survives_node_failure_via_failover() {
        let c = cluster(2);
        let client = ClusterClient::connect(c.clone());
        for i in 0..200 {
            client
                .put(Key::from(format!("k{i}")), Value::from("v"))
                .unwrap();
        }
        // Crash node 0; the next operations trigger transparent failover
        // (replica promotion) and succeed.
        c.node(NodeId(0)).unwrap().read().crash();
        for i in 0..200 {
            assert_eq!(
                client.get(&Key::from(format!("k{i}"))).unwrap(),
                Some(Value::from("v")),
                "key k{i} unreadable after failover"
            );
        }
    }

    #[test]
    fn pipelined_nodes_serve_concurrent_cluster_replay() {
        use crate::node::ServingMode;
        // Every data node serves through a front-end: submission
        // queues, coalesced writes, group commit.
        let nodes = (0..3)
            .map(|i| {
                NodeStore::with_serving_mode(
                    NodeId(i),
                    MapEngine::shared(),
                    ServingMode::Pipelined(tb_frontend::FrontendConfig::with_shards(2)),
                )
            })
            .collect();
        let c = Arc::new(CoordinatorGroup::bootstrap(3, nodes).unwrap());
        let client = Arc::new(ClusterClient::connect(c.clone()));
        std::thread::scope(|s| {
            for t in 0..4 {
                let client = client.clone();
                s.spawn(move || {
                    for i in 0..250 {
                        client
                            .put(
                                Key::from(format!("t{t}:k{i}")),
                                Value::from(format!("v{i}")),
                            )
                            .unwrap();
                    }
                });
            }
        });
        for t in 0..4 {
            for i in 0..250 {
                assert_eq!(
                    client.get(&Key::from(format!("t{t}:k{i}"))).unwrap(),
                    Some(Value::from(format!("v{i}"))),
                    "t{t}:k{i} lost through the pipelined node"
                );
            }
        }
        for id in 0..3 {
            let node = c.node(NodeId(id)).unwrap();
            assert_eq!(node.read().engine_label(), "frontend<map>");
        }
    }

    #[test]
    fn multi_get_gathers_across_nodes_in_key_order() {
        let c = cluster(4);
        let client = ClusterClient::connect(c.clone());
        for i in 0..64 {
            client
                .put(Key::from(format!("mg{i}")), Value::from(format!("v{i}")))
                .unwrap();
        }
        // Hits interleaved with misses, spanning every node.
        let keys: Vec<Key> = (0..128).map(|i| Key::from(format!("mg{i}"))).collect();
        let got = client.multi_get(&keys).unwrap();
        assert_eq!(got.len(), 128);
        for (i, item) in got.iter().enumerate() {
            if i < 64 {
                assert_eq!(
                    item.as_ref(),
                    Some(&Value::from(format!("v{i}"))),
                    "key mg{i}"
                );
            } else {
                assert!(item.is_none(), "key mg{i} should miss");
            }
        }
        // Survives a node failure via failover + regroup.
        c.node(NodeId(0)).unwrap().read().crash();
        let got = client.multi_get(&keys).unwrap();
        assert_eq!(got.iter().filter(|v| v.is_some()).count(), 64);
    }

    /// Engine that counts `multi_get` calls, to pin down exactly which
    /// groups a failover retry re-fetches.
    #[derive(Default)]
    struct CountingEngine {
        map: Mutex<BTreeMap<Key, Value>>,
        multi_gets: std::sync::atomic::AtomicU64,
    }

    impl KvEngine for CountingEngine {
        fn get(&self, key: &Key) -> Result<Option<Value>> {
            Ok(self.map.lock().get(key).cloned())
        }
        fn put(&self, key: Key, value: Value) -> Result<()> {
            self.map.lock().insert(key, value);
            Ok(())
        }
        fn delete(&self, key: &Key) -> Result<()> {
            self.map.lock().remove(key);
            Ok(())
        }
        fn multi_get(&self, keys: &[Key]) -> Result<Vec<Option<Value>>> {
            // Empty batches are failover liveness probes
            // (`NodeStore::probe`), not data fetches — don't count them.
            if !keys.is_empty() {
                self.multi_gets
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            let m = self.map.lock();
            Ok(keys.iter().map(|k| m.get(k).cloned()).collect())
        }
        fn resident_bytes(&self) -> u64 {
            0
        }
        fn label(&self) -> String {
            "counting-map".into()
        }
    }

    #[test]
    fn multi_get_failover_retries_only_the_failed_group() {
        // Node 0 healthy (counting engine), node 1 crashed. The gather
        // visits nodes in id order, so node 0's group succeeds before
        // node 1's fails — the failover retry must re-fetch *only* the
        // failed group, not restart the whole key set against node 0.
        let healthy = Arc::new(CountingEngine::default());
        let nodes = vec![
            NodeStore::new(NodeId(0), healthy.clone()).with_replica(MapEngine::shared()),
            NodeStore::new(NodeId(1), MapEngine::shared()).with_replica(MapEngine::shared()),
        ];
        let c = Arc::new(CoordinatorGroup::bootstrap(3, nodes).unwrap());
        let client = ClusterClient::connect(c.clone());
        let keys: Vec<Key> = (0..96).map(|i| Key::from(format!("fg{i}"))).collect();
        for key in &keys {
            client.put(key.clone(), Value::from("v")).unwrap();
        }
        let table = c.routing();
        assert!(
            keys.iter()
                .any(|k| table.owner_of_key(k.as_slice()) == NodeId(1)),
            "test needs keys on the crashing node"
        );
        healthy
            .multi_gets
            .store(0, std::sync::atomic::Ordering::Relaxed);
        c.node(NodeId(1)).unwrap().read().crash();
        let got = client.multi_get(&keys).unwrap();
        assert!(
            got.iter().all(|v| v.as_ref() == Some(&Value::from("v"))),
            "every key must survive the failover"
        );
        assert_eq!(
            healthy
                .multi_gets
                .load(std::sync::atomic::Ordering::Relaxed),
            1,
            "the healthy node's group was re-fetched after an unrelated failover"
        );
    }

    #[test]
    fn pipelined_nodes_batch_reads_through_the_engine_batch_path() {
        use crate::node::ServingMode;
        // Pipelined nodes over the real LSM engine: a client multi_get
        // must flow node → front-end scatter/gather → LsmDb::apply_batch,
        // which leaves its trace in the engine's dedup counters.
        let dir = tb_common::test_dir("tb-cluster-batch");
        let dbs: Vec<Arc<tb_lsm::LsmDb>> = (0..2)
            .map(|i| {
                // One engine per node with a small parallel read pool:
                // the client's grouped batches land on the pooled
                // completion pass end to end.
                let mut config = tb_lsm::LsmConfig::small_for_tests(dir.join(format!("n{i}")));
                config.read_pool_threads = 2;
                Arc::new(tb_lsm::LsmDb::open(config).unwrap())
            })
            .collect();
        let nodes = dbs
            .iter()
            .enumerate()
            .map(|(i, db)| {
                NodeStore::with_serving_mode(
                    NodeId(i as u32),
                    db.clone() as Arc<dyn KvEngine>,
                    ServingMode::Pipelined(tb_frontend::FrontendConfig::with_shards(2)),
                )
            })
            .collect();
        let c = Arc::new(CoordinatorGroup::bootstrap(1, nodes).unwrap());
        let client = ClusterClient::connect(c);
        for i in 0..400 {
            client
                .put(Key::from(format!("bk{i:04}")), Value::from(format!("v{i}")))
                .unwrap();
        }
        let keys: Vec<Key> = (0..400).map(|i| Key::from(format!("bk{i:04}"))).collect();
        let got = client.multi_get(&keys).unwrap();
        assert!(
            got.iter().all(|v| v.is_some()),
            "every key written reads back"
        );
        let batched: u64 = dbs
            .iter()
            .map(|db| {
                let s = KvEngine::batch_read_stats(db.as_ref());
                s.blocks_read + s.memtable_hits
            })
            .sum();
        assert!(
            batched > 0,
            "client multi_get never reached the engines' batch read path"
        );
    }

    #[test]
    fn scan_fans_out_merges_in_key_order_and_survives_failover() {
        let c = cluster(4);
        let client = ClusterClient::connect(c.clone());
        for i in 0..80 {
            client
                .put(Key::from(format!("sc{i:03}")), Value::from(format!("v{i}")))
                .unwrap();
        }
        let start = Key::from("sc010");
        let end = Key::from("sc050");
        let got = client.scan(&start, Some(&end), 1000).unwrap();
        assert_eq!(got.len(), 40, "keys 10..50");
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0), "key-ordered");
        assert_eq!(got[0], (Key::from("sc010"), Value::from("v10")));
        assert_eq!(got.last().unwrap().0, Key::from("sc049"), "end exclusive");

        // The limit binds globally, not per node.
        let limited = client.scan(&start, Some(&end), 7).unwrap();
        assert_eq!(limited, got[..7].to_vec());

        // Unbounded tail scan.
        assert_eq!(
            client.scan(&Key::from("sc070"), None, 1000).unwrap().len(),
            10
        );

        // A crashed node fails over (replica promotion) and only its
        // share retries; the merged result is complete.
        c.node(NodeId(0)).unwrap().read().crash();
        let after = client.scan(&start, Some(&end), 1000).unwrap();
        assert_eq!(after, got, "scan lost rows across failover");
    }

    #[test]
    fn proxy_is_a_kv_engine() {
        let c = cluster(2);
        let proxy = Proxy::new(c);
        proxy.put(Key::from("a"), Value::from("1")).unwrap();
        assert_eq!(proxy.get(&Key::from("a")).unwrap(), Some(Value::from("1")));
        assert_eq!(proxy.label(), "tierbase-proxy");
        // CAS works through the default trait implementation.
        proxy
            .cas(Key::from("a"), Some(&Value::from("1")), Value::from("2"))
            .unwrap();
        assert_eq!(proxy.get(&Key::from("a")).unwrap(), Some(Value::from("2")));
    }

    #[test]
    fn session_tokens_track_acked_writes_and_survive_failover() {
        let c = cluster(2);
        let client = ClusterClient::connect(c.clone());
        for i in 0..64 {
            client
                .put(Key::from(format!("sy{i}")), Value::from(format!("v{i}")))
                .unwrap();
        }
        // Every node the client wrote through holds a session token.
        let table = c.routing();
        let wrote: std::collections::BTreeSet<NodeId> = (0..64)
            .map(|i| table.owner_of_key(Key::from(format!("sy{i}")).as_slice()))
            .collect();
        for &node in &wrote {
            assert!(
                client.session_token(node) > Lsn::NONE,
                "no session token for {node:?}"
            );
        }
        // The promoted replica resumes at the replication watermark,
        // which covers every acked write — so reads carrying the
        // session token still land (read-your-writes across failover).
        c.node(NodeId(0)).unwrap().read().crash();
        for i in 0..64 {
            assert_eq!(
                client.get(&Key::from(format!("sy{i}"))).unwrap(),
                Some(Value::from(format!("v{i}"))),
                "sy{i} violated read-your-writes after failover"
            );
        }
    }

    #[test]
    fn routing_refresh_on_epoch_change() {
        let c = cluster(2);
        let client = ClusterClient::connect(c.clone());
        let epoch0 = client.cached_epoch();
        // Crash a node *without* a replica path by killing both; force a
        // slot reassignment through a no-replica node.
        let nodes_without_replica = vec![
            NodeStore::new(NodeId(10), MapEngine::shared()),
            NodeStore::new(NodeId(11), MapEngine::shared()),
        ];
        let c2 = Arc::new(CoordinatorGroup::bootstrap(1, nodes_without_replica).unwrap());
        let client2 = ClusterClient::connect(c2.clone());
        c2.node(NodeId(10)).unwrap().read().crash();
        // A get on a key owned by node 10 fails over and refreshes.
        let mut key = Key::from("probe");
        for i in 0..10_000 {
            let k = Key::from(format!("probe{i}"));
            if c2.routing().owner_of_key(k.as_slice()) == NodeId(10) {
                key = k;
                break;
            }
        }
        assert_eq!(client2.get(&key).unwrap(), None);
        assert!(client2.cached_epoch() > epoch0);
    }
}
