//! Smart client and proxy (§3 client tier).
//!
//! The smart client caches a routing snapshot from the coordinators,
//! routes each operation directly to its slot owner, and refreshes the
//! snapshot + retries when a node is down or routing moved (failover
//! transparency). The proxy wraps a client behind the plain
//! [`KvEngine`] interface for thin (native-Redis-style) callers.

use crate::coordinator::CoordinatorGroup;
use crate::routing::RoutingTable;
use parking_lot::RwLock;
use std::sync::Arc;
use tb_common::{Error, Key, KvEngine, Result, Value};

/// A routing-aware cluster client.
pub struct ClusterClient {
    coordinators: Arc<CoordinatorGroup>,
    cached: RwLock<Arc<RoutingTable>>,
}

impl ClusterClient {
    /// Connects and fetches the initial routing snapshot.
    pub fn connect(coordinators: Arc<CoordinatorGroup>) -> Self {
        let cached = coordinators.routing();
        Self {
            coordinators,
            cached: RwLock::new(cached),
        }
    }

    /// Epoch of the cached snapshot (test visibility).
    pub fn cached_epoch(&self) -> u64 {
        self.cached.read().epoch
    }

    fn refresh(&self) {
        *self.cached.write() = self.coordinators.routing();
    }

    /// Routes an operation; on node failure triggers coordinator
    /// failover, refreshes routing, and retries once.
    fn with_owner<T>(
        &self,
        key: &Key,
        f: impl Fn(&crate::node::NodeStore) -> Result<T>,
    ) -> Result<T> {
        for attempt in 0..2 {
            let table = self.cached.read().clone();
            let owner = table.owner_of_key(key.as_slice());
            let node = self.coordinators.node(owner)?;
            let result = {
                let guard = node.read();
                f(&guard)
            };
            match result {
                Err(Error::Unavailable(_)) if attempt == 0 => {
                    // Node down: ask the control plane to fail over,
                    // then retry against fresh routing.
                    self.coordinators.run_failover()?;
                    self.refresh();
                }
                other => return other,
            }
        }
        Err(Error::Unavailable("retries exhausted".into()))
    }

    pub fn get(&self, key: &Key) -> Result<Option<Value>> {
        self.with_owner(key, |n| n.get(key))
    }

    pub fn put(&self, key: Key, value: Value) -> Result<()> {
        self.with_owner(&key.clone(), move |n| n.put(key.clone(), value.clone()))
    }

    pub fn delete(&self, key: &Key) -> Result<()> {
        self.with_owner(key, |n| n.delete(key))
    }
}

/// Proxy service: a [`KvEngine`] façade over the cluster for clients
/// that do not speak the routing protocol.
pub struct Proxy {
    client: ClusterClient,
}

impl Proxy {
    pub fn new(coordinators: Arc<CoordinatorGroup>) -> Self {
        Self {
            client: ClusterClient::connect(coordinators),
        }
    }
}

impl KvEngine for Proxy {
    fn get(&self, key: &Key) -> Result<Option<Value>> {
        self.client.get(key)
    }

    fn put(&self, key: Key, value: Value) -> Result<()> {
        self.client.put(key, value)
    }

    fn delete(&self, key: &Key) -> Result<()> {
        self.client.delete(key)
    }

    fn resident_bytes(&self) -> u64 {
        0 // the proxy holds no data
    }

    fn label(&self) -> String {
        "tierbase-proxy".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::CoordinatorGroup;
    use crate::node::{NodeId, NodeStore};
    use parking_lot::Mutex;
    use std::collections::BTreeMap;

    struct MapEngine(Mutex<BTreeMap<Key, Value>>);

    impl MapEngine {
        fn shared() -> Arc<dyn KvEngine> {
            Arc::new(Self(Mutex::new(BTreeMap::new())))
        }
    }

    impl KvEngine for MapEngine {
        fn get(&self, key: &Key) -> Result<Option<Value>> {
            Ok(self.0.lock().get(key).cloned())
        }
        fn put(&self, key: Key, value: Value) -> Result<()> {
            self.0.lock().insert(key, value);
            Ok(())
        }
        fn delete(&self, key: &Key) -> Result<()> {
            self.0.lock().remove(key);
            Ok(())
        }
        fn resident_bytes(&self) -> u64 {
            0
        }
        fn label(&self) -> String {
            "map".into()
        }
    }

    fn cluster(n: u32) -> Arc<CoordinatorGroup> {
        let nodes = (0..n)
            .map(|i| {
                NodeStore::new(NodeId(i), MapEngine::shared()).with_replica(MapEngine::shared())
            })
            .collect();
        Arc::new(CoordinatorGroup::bootstrap(3, nodes).unwrap())
    }

    #[test]
    fn client_routes_and_reads_back() {
        let c = cluster(4);
        let client = ClusterClient::connect(c);
        for i in 0..500 {
            client
                .put(Key::from(format!("k{i}")), Value::from(format!("v{i}")))
                .unwrap();
        }
        for i in 0..500 {
            assert_eq!(
                client.get(&Key::from(format!("k{i}"))).unwrap(),
                Some(Value::from(format!("v{i}")))
            );
        }
        client.delete(&Key::from("k0")).unwrap();
        assert_eq!(client.get(&Key::from("k0")).unwrap(), None);
    }

    #[test]
    fn client_survives_node_failure_via_failover() {
        let c = cluster(2);
        let client = ClusterClient::connect(c.clone());
        for i in 0..200 {
            client
                .put(Key::from(format!("k{i}")), Value::from("v"))
                .unwrap();
        }
        // Crash node 0; the next operations trigger transparent failover
        // (replica promotion) and succeed.
        c.node(NodeId(0)).unwrap().read().crash();
        for i in 0..200 {
            assert_eq!(
                client.get(&Key::from(format!("k{i}"))).unwrap(),
                Some(Value::from("v")),
                "key k{i} unreadable after failover"
            );
        }
    }

    #[test]
    fn pipelined_nodes_serve_concurrent_cluster_replay() {
        use crate::node::ServingMode;
        // Every data node serves through a front-end: submission
        // queues, coalesced writes, group commit.
        let nodes = (0..3)
            .map(|i| {
                NodeStore::with_serving_mode(
                    NodeId(i),
                    MapEngine::shared(),
                    ServingMode::Pipelined(tb_frontend::FrontendConfig::with_shards(2)),
                )
            })
            .collect();
        let c = Arc::new(CoordinatorGroup::bootstrap(3, nodes).unwrap());
        let client = Arc::new(ClusterClient::connect(c.clone()));
        std::thread::scope(|s| {
            for t in 0..4 {
                let client = client.clone();
                s.spawn(move || {
                    for i in 0..250 {
                        client
                            .put(
                                Key::from(format!("t{t}:k{i}")),
                                Value::from(format!("v{i}")),
                            )
                            .unwrap();
                    }
                });
            }
        });
        for t in 0..4 {
            for i in 0..250 {
                assert_eq!(
                    client.get(&Key::from(format!("t{t}:k{i}"))).unwrap(),
                    Some(Value::from(format!("v{i}"))),
                    "t{t}:k{i} lost through the pipelined node"
                );
            }
        }
        for id in 0..3 {
            let node = c.node(NodeId(id)).unwrap();
            assert_eq!(node.read().engine_label(), "frontend<map>");
        }
    }

    #[test]
    fn proxy_is_a_kv_engine() {
        let c = cluster(2);
        let proxy = Proxy::new(c);
        proxy.put(Key::from("a"), Value::from("1")).unwrap();
        assert_eq!(proxy.get(&Key::from("a")).unwrap(), Some(Value::from("1")));
        assert_eq!(proxy.label(), "tierbase-proxy");
        // CAS works through the default trait implementation.
        proxy
            .cas(Key::from("a"), Some(&Value::from("1")), Value::from("2"))
            .unwrap();
        assert_eq!(proxy.get(&Key::from("a")).unwrap(), Some(Value::from("2")));
    }

    #[test]
    fn routing_refresh_on_epoch_change() {
        let c = cluster(2);
        let client = ClusterClient::connect(c.clone());
        let epoch0 = client.cached_epoch();
        // Crash a node *without* a replica path by killing both; force a
        // slot reassignment through a no-replica node.
        let nodes_without_replica = vec![
            NodeStore::new(NodeId(10), MapEngine::shared()),
            NodeStore::new(NodeId(11), MapEngine::shared()),
        ];
        let c2 = Arc::new(CoordinatorGroup::bootstrap(1, nodes_without_replica).unwrap());
        let client2 = ClusterClient::connect(c2.clone());
        c2.node(NodeId(10)).unwrap().read().crash();
        // A get on a key owned by node 10 fails over and refreshes.
        let mut key = Key::from("probe");
        for i in 0..10_000 {
            let k = Key::from(format!("probe{i}"));
            if c2.routing().owner_of_key(k.as_slice()) == NodeId(10) {
                key = k;
                break;
            }
        }
        assert_eq!(client2.get(&key).unwrap(), None);
        assert!(client2.cached_epoch() > epoch0);
    }
}
