//! LSN-sequenced WAL-shipping replication: the primary→replica channel.
//!
//! A [`ReplChannel`] is a data node's one replication pipe. Every write
//! the primary applies is *shipped* as an LSN-stamped frame into the
//! replica-side log (an in-memory byte log with the same framing as the
//! `tb-lsm` WAL, so torn-frame injection is meaningful), the replica
//! *acks* it — advancing the channel watermark — and is then eagerly
//! *applied* to the replica engine. Eager apply is best-effort: a
//! failure leaves the frame logged and acked, and promotion replay
//! catches the replica up from the log.
//!
//! The channel enforces the `tb_common::engine` LSN/ack contract at the
//! replication layer: **no write acked at or below the watermark is
//! ever lost by promotion** — [`ReplChannel::promote`] replays logged
//! frames up to the watermark exactly, discarding any un-acked tail
//! (including a torn final frame from a primary that crashed mid-ship).
//!
//! Fault sites (torture coverage in `tests/fault_torture.rs`):
//!
//! * `repl.ship` — the frame write into the replica log (write site:
//!   supports torn frames).
//! * `repl.ack` — the replica acknowledgement that advances the
//!   watermark.
//! * `repl.apply` — applying a shipped record to the replica engine
//!   (eager path and promotion replay).
//! * `repl.promote` — the promotion entry point.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tb_common::{
    fault, read_varint, write_varint, Crc32, Error, Key, KvEngine, Lsn, Result, Value,
};

/// The replication fault sites, in ship order. `tests/fault_torture.rs`
/// enumerates `(site, hit)` across these.
pub const REPL_FAULT_SITES: &[&str] = &["repl.ship", "repl.ack", "repl.apply", "repl.promote"];

/// One replicated write, as shipped over the channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplRecord {
    Put(Key, Value),
    Delete(Key),
}

impl ReplRecord {
    /// Tag byte + varint-framed key (and value, for puts).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            ReplRecord::Put(k, v) => {
                out.push(1);
                write_varint(&mut out, k.len() as u64);
                out.extend_from_slice(k.as_slice());
                write_varint(&mut out, v.len() as u64);
                out.extend_from_slice(v.as_slice());
            }
            ReplRecord::Delete(k) => {
                out.push(2);
                write_varint(&mut out, k.len() as u64);
                out.extend_from_slice(k.as_slice());
            }
        }
        out
    }

    pub fn decode(buf: &[u8]) -> Result<ReplRecord> {
        let tag = *buf
            .first()
            .ok_or_else(|| Error::Corruption("empty repl record".into()))?;
        let mut pos = 1usize;
        let take = |buf: &[u8], pos: &mut usize| -> Result<Vec<u8>> {
            let len = read_varint(buf, pos)? as usize;
            let end = pos
                .checked_add(len)
                .filter(|&e| e <= buf.len())
                .ok_or_else(|| Error::Corruption("repl record truncated".into()))?;
            let out = buf[*pos..end].to_vec();
            *pos = end;
            Ok(out)
        };
        match tag {
            1 => {
                let k = take(buf, &mut pos)?;
                let v = take(buf, &mut pos)?;
                Ok(ReplRecord::Put(Key::from(k), Value::from(v)))
            }
            2 => {
                let k = take(buf, &mut pos)?;
                Ok(ReplRecord::Delete(Key::from(k)))
            }
            t => Err(Error::Corruption(format!("unknown repl record tag {t}"))),
        }
    }
}

/// Frame header: `len u32 | crc u32 | lsn u64`, all little-endian; crc
/// covers `lsn_le || payload` (the `tb-lsm` WAL frame layout).
const FRAME_HEADER: usize = 16;

fn frame_crc(lsn: u64, payload: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(&lsn.to_le_bytes()).update(payload);
    c.finalize()
}

fn encode_frame(lsn: Lsn, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_crc(lsn.0, payload).to_le_bytes());
    out.extend_from_slice(&lsn.0.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parses the frame at the head of `buf`: `Some((lsn, payload, total
/// frame bytes))`, or `None` for an incomplete/corrupt head (the torn
/// tail a crashed ship leaves behind).
fn parse_frame(buf: &[u8]) -> Option<(u64, &[u8], usize)> {
    if buf.len() < FRAME_HEADER {
        return None;
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().ok()?) as usize;
    let crc = u32::from_le_bytes(buf[4..8].try_into().ok()?);
    let lsn = u64::from_le_bytes(buf[8..16].try_into().ok()?);
    let end = FRAME_HEADER.checked_add(len)?;
    if buf.len() < end {
        return None;
    }
    let payload = &buf[FRAME_HEADER..end];
    (frame_crc(lsn, payload) == crc).then_some((lsn, payload, end))
}

struct Inner {
    /// Shipped frames — the replica's receive log. An in-memory
    /// stand-in for the replica's persistent WAL.
    log: Vec<u8>,
    /// Byte offset of the first frame not yet applied to the replica
    /// engine (promotion replay resumes here).
    applied_off: usize,
}

/// Watermark state, shared with the channel's obs snapshot source.
struct Stats {
    shipped: AtomicU64,
    /// Highest LSN the replica acknowledged: the channel watermark. No
    /// write at or below it may ever be lost.
    acked: AtomicU64,
    /// Highest LSN applied to the replica engine.
    applied: AtomicU64,
}

/// The primary→replica shipping channel for one node.
pub struct ReplChannel {
    replica: Arc<dyn KvEngine>,
    inner: Mutex<Inner>,
    stats: Arc<Stats>,
    /// Keeps `repl_shipped` / `repl_applied_lsn` / `repl_lag`
    /// contributing to [`tb_obs::global`] snapshots; drops with the
    /// channel.
    _obs: tb_obs::SourceGuard,
}

impl ReplChannel {
    /// A channel to an empty replica, watermark at [`Lsn::NONE`].
    pub fn new(replica: Arc<dyn KvEngine>) -> Self {
        Self::seeded(replica, Lsn::NONE)
    }

    /// A channel to a replica already seeded with state through
    /// `watermark` (snapshot re-seed after promotion: the snapshot
    /// covers everything up to the watermark, the log tail-ships from
    /// there).
    pub fn seeded(replica: Arc<dyn KvEngine>, watermark: Lsn) -> Self {
        let stats = Arc::new(Stats {
            shipped: AtomicU64::new(0),
            acked: AtomicU64::new(watermark.0),
            applied: AtomicU64::new(watermark.0),
        });
        let obs = {
            let s = stats.clone();
            tb_obs::global().register_source(move |b| {
                let acked = s.acked.load(Ordering::Relaxed);
                let applied = s.applied.load(Ordering::Relaxed);
                b.counter("repl_shipped", s.shipped.load(Ordering::Relaxed));
                b.gauge("repl_applied_lsn", applied as i64);
                b.gauge("repl_lag", acked.saturating_sub(applied) as i64);
            })
        };
        Self {
            replica,
            inner: Mutex::new(Inner {
                log: Vec::new(),
                applied_off: 0,
            }),
            stats,
            _obs: obs,
        }
    }

    /// The acked watermark: every write at or below it survives
    /// promotion.
    pub fn watermark(&self) -> Lsn {
        Lsn(self.stats.acked.load(Ordering::Acquire))
    }

    /// Highest LSN applied to the replica engine (lags the watermark
    /// only while an eager apply failed and replay hasn't run).
    pub fn applied_lsn(&self) -> Lsn {
        Lsn(self.stats.applied.load(Ordering::Acquire))
    }

    /// Frames shipped since the channel opened.
    pub fn shipped(&self) -> u64 {
        self.stats.shipped.load(Ordering::Relaxed)
    }

    /// Ships one write at `lsn`: log the frame, take the replica ack
    /// (advancing the watermark), then eagerly apply. An error anywhere
    /// leaves the write **below no watermark** — the caller must not
    /// report it covered — but never corrupts the log: a partially
    /// written frame from an errored ship is truncated away, and a torn
    /// frame from a crash is discarded by promotion replay.
    pub fn ship(&self, lsn: Lsn, record: &ReplRecord) -> Result<()> {
        let mut inner = self.inner.lock();
        let frame = encode_frame(lsn, &record.encode());
        let base = inner.log.len();
        if let Err(e) = fault::write_all("repl.ship", &mut inner.log, &frame) {
            // Keep the log parseable so later frames don't land behind
            // garbage (a crash/torn panic skips this — replay handles
            // the torn tail instead).
            inner.log.truncate(base);
            return Err(e);
        }
        fault::hit("repl.ack")?;
        self.stats.acked.store(lsn.0, Ordering::Release);
        self.stats.shipped.fetch_add(1, Ordering::Relaxed);
        tb_obs::counter!("repl_ship_frames").add(1);
        // Eager apply is best-effort: on failure the acked frame stays
        // in the log and promotion replay catches the replica up. It
        // runs only while the applied prefix is contiguous with this
        // frame — once a failed apply leaves a gap, applying later
        // frames out of order could overtake an overwrite/delete the
        // gap still holds, so the channel waits for replay instead.
        let contiguous = inner.applied_off == base;
        let applied = contiguous
            && fault::hit("repl.apply").is_ok()
            && apply_record(self.replica.as_ref(), record).is_ok();
        if applied {
            self.stats.applied.store(lsn.0, Ordering::Release);
            inner.applied_off = inner.log.len();
        }
        Ok(())
    }

    /// Promotes the replica: replays every logged frame up to the
    /// watermark that the eager path hasn't applied, then hands the
    /// caught-up replica engine back. Frames past the watermark —
    /// shipped but never acked, torn tails included — are discarded.
    /// On error the channel state is intact and resumable: a retry
    /// continues the replay where it stopped.
    pub fn promote(&self) -> Result<Arc<dyn KvEngine>> {
        fault::hit("repl.promote")?;
        let mut inner = self.inner.lock();
        let acked = self.stats.acked.load(Ordering::Acquire);
        let mut pos = inner.applied_off;
        while let Some((lsn, payload, consumed)) = parse_frame(&inner.log[pos..]) {
            if lsn > acked {
                break;
            }
            if lsn > self.stats.applied.load(Ordering::Acquire) {
                let record = ReplRecord::decode(payload)?;
                fault::hit("repl.apply")?;
                apply_record(self.replica.as_ref(), &record)?;
                self.stats.applied.store(lsn, Ordering::Release);
            }
            pos += consumed;
            inner.applied_off = pos;
        }
        Ok(self.replica.clone())
    }

    /// Replica engine bytes (node space accounting).
    pub fn resident_bytes(&self) -> u64 {
        self.replica.resident_bytes()
    }
}

fn apply_record(replica: &dyn KvEngine, record: &ReplRecord) -> Result<()> {
    match record {
        ReplRecord::Put(k, v) => replica.put(k.clone(), v.clone()),
        ReplRecord::Delete(k) => replica.delete(k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PMutex;
    use std::collections::BTreeMap;
    use tb_common::fault::FaultMode;

    struct MapEngine(PMutex<BTreeMap<Key, Value>>);

    impl MapEngine {
        fn shared() -> Arc<Self> {
            Arc::new(Self(PMutex::new(BTreeMap::new())))
        }
    }

    impl KvEngine for MapEngine {
        fn get(&self, key: &Key) -> Result<Option<Value>> {
            Ok(self.0.lock().get(key).cloned())
        }
        fn put(&self, key: Key, value: Value) -> Result<()> {
            self.0.lock().insert(key, value);
            Ok(())
        }
        fn delete(&self, key: &Key) -> Result<()> {
            self.0.lock().remove(key);
            Ok(())
        }
        fn resident_bytes(&self) -> u64 {
            0
        }
        fn label(&self) -> String {
            "map".into()
        }
    }

    fn k(i: u64) -> Key {
        Key::from(format!("k{i}"))
    }

    fn v(i: u64) -> Value {
        Value::from(format!("v{i}"))
    }

    #[test]
    fn record_codec_roundtrips() {
        for rec in [
            ReplRecord::Put(Key::from("a"), Value::from("1")),
            ReplRecord::Put(Key::from(""), Value::from(vec![0u8, 255])),
            ReplRecord::Delete(Key::from("gone")),
        ] {
            assert_eq!(ReplRecord::decode(&rec.encode()).unwrap(), rec);
        }
        assert!(ReplRecord::decode(&[]).is_err());
        assert!(ReplRecord::decode(&[9, 0]).is_err());
        let mut truncated = ReplRecord::Put(Key::from("abc"), Value::from("def")).encode();
        truncated.pop();
        assert!(ReplRecord::decode(&truncated).is_err());
    }

    #[test]
    fn ship_advances_watermark_and_applies_eagerly() {
        let replica = MapEngine::shared();
        let ch = ReplChannel::new(replica.clone());
        for i in 1..=5u64 {
            ch.ship(Lsn(i), &ReplRecord::Put(k(i), v(i))).unwrap();
        }
        ch.ship(Lsn(6), &ReplRecord::Delete(k(1))).unwrap();
        assert_eq!(ch.watermark(), Lsn(6));
        assert_eq!(ch.applied_lsn(), Lsn(6));
        assert_eq!(ch.shipped(), 6);
        assert_eq!(replica.get(&k(1)).unwrap(), None);
        assert_eq!(replica.get(&k(5)).unwrap(), Some(v(5)));
    }

    #[test]
    fn promote_replays_acked_but_unapplied_frames() {
        let replica = MapEngine::shared();
        let ch = ReplChannel::new(replica.clone());
        ch.ship(Lsn(1), &ReplRecord::Put(k(1), v(1))).unwrap();
        // Eager apply fails for LSN 2: acked but not applied — the
        // exact window promotion replay exists for.
        fault::arm_scoped("repl.apply", 1, FaultMode::Error);
        ch.ship(Lsn(2), &ReplRecord::Put(k(2), v(2))).unwrap();
        fault::reset();
        assert_eq!(ch.watermark(), Lsn(2));
        assert_eq!(ch.applied_lsn(), Lsn(1));
        assert_eq!(replica.get(&k(2)).unwrap(), None, "eager apply failed");
        let promoted = ch.promote().unwrap();
        assert_eq!(ch.applied_lsn(), Lsn(2));
        assert_eq!(promoted.get(&k(2)).unwrap(), Some(v(2)));
    }

    #[test]
    fn apply_gap_is_not_skipped_by_later_successful_ships() {
        // One eager apply fails mid-stream; later ships succeed. The
        // applied cursor must stall at the gap — advancing it past the
        // unapplied frame silently dropped that write from promotion
        // replay (the bug this test pins).
        let replica = MapEngine::shared();
        let ch = ReplChannel::new(replica.clone());
        ch.ship(Lsn(1), &ReplRecord::Delete(k(8))).unwrap();
        fault::arm_scoped("repl.apply", 1, FaultMode::Error);
        ch.ship(Lsn(2), &ReplRecord::Put(k(8), v(8))).unwrap();
        fault::reset();
        ch.ship(Lsn(3), &ReplRecord::Put(k(9), v(9))).unwrap();
        assert_eq!(ch.watermark(), Lsn(3));
        assert_eq!(ch.applied_lsn(), Lsn(1), "cursor stalls at the gap");
        let promoted = ch.promote().unwrap();
        assert_eq!(promoted.get(&k(8)).unwrap(), Some(v(8)), "gap replayed");
        assert_eq!(promoted.get(&k(9)).unwrap(), Some(v(9)));
        assert_eq!(ch.applied_lsn(), Lsn(3));
    }

    #[test]
    fn errored_ship_leaves_log_parseable() {
        let replica = MapEngine::shared();
        let ch = ReplChannel::new(replica.clone());
        ch.ship(Lsn(1), &ReplRecord::Put(k(1), v(1))).unwrap();
        fault::arm_scoped("repl.ship", 1, FaultMode::Error);
        assert!(ch.ship(Lsn(2), &ReplRecord::Put(k(2), v(2))).is_err());
        fault::reset();
        // The failed frame left no garbage: the next ship lands cleanly
        // and promotion replays a consistent log.
        ch.ship(Lsn(2), &ReplRecord::Put(k(2), v(2))).unwrap();
        assert_eq!(ch.watermark(), Lsn(2));
        let promoted = ch.promote().unwrap();
        assert_eq!(promoted.get(&k(2)).unwrap(), Some(v(2)));
    }

    #[test]
    fn promote_discards_unacked_torn_tail() {
        let replica = MapEngine::shared();
        let ch = ReplChannel::new(replica.clone());
        ch.ship(Lsn(1), &ReplRecord::Put(k(1), v(1))).unwrap();
        // Tear the second frame mid-ship: header lands, payload does
        // not, the "primary" crashes.
        fault::arm_scoped("repl.ship", 1, FaultMode::Torn { keep: 10 });
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ch.ship(Lsn(2), &ReplRecord::Put(k(2), v(2)))
        }));
        assert!(crashed.is_err(), "torn ship must crash");
        fault::reset();
        assert_eq!(ch.watermark(), Lsn(1), "torn frame never acked");
        let promoted = ch.promote().unwrap();
        assert_eq!(promoted.get(&k(1)).unwrap(), Some(v(1)));
        assert_eq!(promoted.get(&k(2)).unwrap(), None, "torn write discarded");
    }

    #[test]
    fn failed_promotion_is_resumable() {
        let replica = MapEngine::shared();
        let ch = ReplChannel::new(replica.clone());
        fault::arm_scoped("repl.apply", 1, FaultMode::Error);
        ch.ship(Lsn(1), &ReplRecord::Put(k(1), v(1))).unwrap();
        fault::reset();
        fault::arm_scoped("repl.promote", 1, FaultMode::Error);
        assert!(ch.promote().is_err(), "armed promotion must fail");
        fault::reset();
        // Retry succeeds and finishes the replay.
        let promoted = ch.promote().unwrap();
        assert_eq!(promoted.get(&k(1)).unwrap(), Some(v(1)));
        assert_eq!(ch.applied_lsn(), Lsn(1));
    }

    #[test]
    fn seeded_channel_starts_at_the_given_watermark() {
        let replica = MapEngine::shared();
        replica.put(k(1), v(1)).unwrap(); // snapshot state
        let ch = ReplChannel::seeded(replica.clone(), Lsn(7));
        assert_eq!(ch.watermark(), Lsn(7));
        ch.ship(Lsn(8), &ReplRecord::Put(k(8), v(8))).unwrap();
        let promoted = ch.promote().unwrap();
        assert_eq!(promoted.get(&k(1)).unwrap(), Some(v(1)));
        assert_eq!(promoted.get(&k(8)).unwrap(), Some(v(8)));
    }
}
