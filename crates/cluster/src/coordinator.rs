//! The coordinator group: cluster metadata, failover, scaling.
//!
//! Coordinators own the routing table. A group of 2f+1 members elects
//! the lowest-id live member as leader (a stand-in for the consensus
//! election a production deployment runs); only the leader mutates the
//! table. Failover reassigns a dead node's slots after promoting its
//! replica; scale-out migrates slots (and their keys) to a new node.

use crate::node::{NodeId, NodeStore};
use crate::routing::RoutingTable;
use parking_lot::RwLock;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tb_common::{Error, Key, Result};

/// One coordinator process.
pub struct Coordinator {
    pub id: u32,
    alive: AtomicBool,
}

/// The coordinator group plus the data plane it manages.
pub struct CoordinatorGroup {
    members: Vec<Coordinator>,
    nodes: RwLock<Vec<Arc<RwLock<NodeStore>>>>,
    table: RwLock<Arc<RoutingTable>>,
}

impl CoordinatorGroup {
    /// Boots a group of `coordinators` members managing `nodes`, with
    /// slots spread evenly.
    pub fn bootstrap(coordinators: u32, nodes: Vec<NodeStore>) -> Result<Self> {
        if nodes.is_empty() {
            return Err(Error::InvalidArgument("cluster needs data nodes".into()));
        }
        let ids: Vec<NodeId> = nodes.iter().map(|n| n.id).collect();
        let table = RoutingTable::even(1, &ids);
        Ok(Self {
            members: (0..coordinators.max(1))
                .map(|id| Coordinator {
                    id,
                    alive: AtomicBool::new(true),
                })
                .collect(),
            nodes: RwLock::new(
                nodes
                    .into_iter()
                    .map(|n| Arc::new(RwLock::new(n)))
                    .collect(),
            ),
            table: RwLock::new(Arc::new(table)),
        })
    }

    /// The current leader: lowest-id live member.
    pub fn leader(&self) -> Result<u32> {
        self.members
            .iter()
            .filter(|c| c.alive.load(Ordering::SeqCst))
            .map(|c| c.id)
            .min()
            .ok_or_else(|| Error::Unavailable("no live coordinator".into()))
    }

    /// Kills a coordinator member (leader re-election test hook).
    pub fn kill_coordinator(&self, id: u32) {
        if let Some(c) = self.members.iter().find(|c| c.id == id) {
            c.alive.store(false, Ordering::SeqCst);
        }
    }

    /// Current routing snapshot (what clients fetch).
    pub fn routing(&self) -> Arc<RoutingTable> {
        self.table.read().clone()
    }

    /// Looks up a node handle.
    pub fn node(&self, id: NodeId) -> Result<Arc<RwLock<NodeStore>>> {
        self.nodes
            .read()
            .iter()
            .find(|n| n.read().id == id)
            .cloned()
            .ok_or_else(|| Error::InvalidArgument(format!("unknown node {id:?}")))
    }

    /// Health sweep: for every dead node, promote its replica in place
    /// (same id keeps the routing table unchanged) or, with no replica,
    /// reassign its slots to the first live node. Returns the ids
    /// failed over. Only the leader may run this.
    ///
    /// A node *with* a replica whose promotion fails propagates the
    /// error instead of falling through to slot reassignment: the
    /// replica still holds every acked write, and
    /// [`NodeStore::promote_replica`] is resumable, so the next sweep
    /// finishes the promotion — reassigning would discard acked data.
    pub fn run_failover(&self) -> Result<Vec<NodeId>> {
        self.leader()?; // asserts a live coordinator exists
        let mut failed = Vec::new();
        let nodes = self.nodes.read();
        for node in nodes.iter() {
            // Probe, don't just trust the flag: a socket-backed primary
            // whose server process died reports `Unavailable` remotely
            // while the local flag still says alive.
            let dead = !node.read().probe();
            if !dead {
                continue;
            }
            let id = node.read().id;
            if node.read().has_replica() {
                node.write().promote_replica()?;
                failed.push(id);
                continue;
            }
            // No replica: hand the slots to a live peer (data on the
            // dead node is lost — cache semantics).
            let target = nodes
                .iter()
                .find(|n| n.read().is_alive() && n.read().id != id)
                .map(|n| n.read().id);
            if let Some(target) = target {
                let mut table = self.table.write();
                *table = Arc::new(table.reassign_all(id, target));
                failed.push(id);
            } else {
                return Err(Error::Unavailable("no live node to fail over to".into()));
            }
        }
        Ok(failed)
    }

    /// Scale-out: adds a node and migrates an even share of slots (with
    /// their keys) to it. Returns the number of keys moved.
    ///
    /// Migration is copy → flip → evict. The routing flip happens only
    /// after every moved key is resident on the new node, and sources
    /// evict only after the flip: evicting first opened a window where
    /// the still-routed old owner answered `None` for a key it had just
    /// deleted (the pre-PR-8 lost-read bug, pinned by
    /// `tests/cluster_invariants.rs`).
    pub fn add_node_and_rebalance(&self, new_node: NodeStore) -> Result<usize> {
        self.leader()?;
        let new_id = new_node.id;
        let new_arc = Arc::new(RwLock::new(new_node));
        let mut nodes = self.nodes.write();
        let old_count = nodes.len();
        nodes.push(new_arc.clone());

        // Take every (old_count+1)-th slot from each existing owner.
        let table = self.table.read().clone();
        let mut moved_slots: Vec<u16> = Vec::new();
        for node in nodes.iter().take(old_count) {
            let id = node.read().id;
            let owned = table.slots_of(id);
            let share = owned.len() / (old_count + 1);
            moved_slots.extend(owned.into_iter().take(share));
        }

        // Copy: resident keys for the moved slots land on the new node
        // while the sources keep serving them.
        let moved_set: HashSet<u16> = moved_slots.iter().copied().collect();
        let mut migrated: Vec<(Arc<RwLock<NodeStore>>, Key)> = Vec::new();
        for node in nodes.iter().take(old_count) {
            let keys = node.read().keys_in_slots(&moved_set);
            for key in keys {
                if let Some(value) = node.read().get(&key)? {
                    new_arc.read().put(key.clone(), value)?;
                }
                migrated.push((node.clone(), key));
            }
        }

        // Flip: readers now route to the new node, which already holds
        // every moved key.
        {
            let mut table_guard = self.table.write();
            *table_guard = Arc::new(table_guard.reassign_slots(&moved_slots, new_id));
        }

        // Evict: drop the source copies, now unreachable via routing.
        for (node, key) in &migrated {
            node.read().evict_migrated(key)?;
        }
        Ok(migrated.len())
    }

    /// Total cluster key count (diagnostics).
    pub fn total_keys(&self) -> usize {
        self.nodes.read().iter().map(|n| n.read().key_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::BTreeMap;
    use tb_common::{Key, KvEngine, Value};

    struct MapEngine(Mutex<BTreeMap<Key, Value>>);

    impl MapEngine {
        fn shared() -> Arc<dyn KvEngine> {
            Arc::new(Self(Mutex::new(BTreeMap::new())))
        }
    }

    impl KvEngine for MapEngine {
        fn get(&self, key: &Key) -> Result<Option<Value>> {
            Ok(self.0.lock().get(key).cloned())
        }
        fn put(&self, key: Key, value: Value) -> Result<()> {
            self.0.lock().insert(key, value);
            Ok(())
        }
        fn delete(&self, key: &Key) -> Result<()> {
            self.0.lock().remove(key);
            Ok(())
        }
        fn resident_bytes(&self) -> u64 {
            0
        }
        fn label(&self) -> String {
            "map".into()
        }
    }

    fn cluster(n: u32) -> CoordinatorGroup {
        let nodes = (0..n)
            .map(|i| {
                NodeStore::new(NodeId(i), MapEngine::shared()).with_replica(MapEngine::shared())
            })
            .collect();
        CoordinatorGroup::bootstrap(3, nodes).unwrap()
    }

    #[test]
    fn leader_election_prefers_lowest_live() {
        let c = cluster(2);
        assert_eq!(c.leader().unwrap(), 0);
        c.kill_coordinator(0);
        assert_eq!(c.leader().unwrap(), 1);
        c.kill_coordinator(1);
        assert_eq!(c.leader().unwrap(), 2);
        c.kill_coordinator(2);
        assert!(c.leader().is_err());
    }

    #[test]
    fn failover_promotes_replica_in_place() {
        let c = cluster(2);
        let node0 = c.node(NodeId(0)).unwrap();
        node0
            .read()
            .put(Key::from("on-node-0"), Value::from("x"))
            .unwrap();
        // Only keys routed to node 0 matter; write one we control.
        node0.read().crash();
        let failed = c.run_failover().unwrap();
        assert_eq!(failed, vec![NodeId(0)]);
        // Node serves again with replicated data; routing unchanged.
        assert_eq!(
            node0.read().get(&Key::from("on-node-0")).unwrap(),
            Some(Value::from("x"))
        );
        assert_eq!(c.routing().epoch, 1);
    }

    #[test]
    fn failover_without_replica_reassigns_slots() {
        let nodes = vec![
            NodeStore::new(NodeId(0), MapEngine::shared()), // no replica
            NodeStore::new(NodeId(1), MapEngine::shared()),
        ];
        let c = CoordinatorGroup::bootstrap(1, nodes).unwrap();
        c.node(NodeId(0)).unwrap().read().crash();
        let failed = c.run_failover().unwrap();
        assert_eq!(failed, vec![NodeId(0)]);
        let table = c.routing();
        assert_eq!(table.epoch, 2);
        assert!(table.slots_of(NodeId(0)).is_empty());
    }

    #[test]
    fn scale_out_migrates_keys_and_rebalances() {
        let c = cluster(2);
        // Load keys through routing so inventories match slot owners.
        let table = c.routing();
        for i in 0..300 {
            let key = Key::from(format!("k{i}"));
            let owner = table.owner_of_key(key.as_slice());
            c.node(owner)
                .unwrap()
                .read()
                .put(key, Value::from("v"))
                .unwrap();
        }
        assert_eq!(c.total_keys(), 300);

        let new_node =
            NodeStore::new(NodeId(9), MapEngine::shared()).with_replica(MapEngine::shared());
        let moved = c.add_node_and_rebalance(new_node).unwrap();
        assert!(moved > 0, "some keys must migrate");
        assert_eq!(c.total_keys(), 300, "migration must not lose keys");

        // New table routes migrated keys to the new node, and reads work.
        let table = c.routing();
        assert!(table.epoch >= 2);
        assert!(!table.slots_of(NodeId(9)).is_empty());
        for i in 0..300 {
            let key = Key::from(format!("k{i}"));
            let owner = table.owner_of_key(key.as_slice());
            assert_eq!(
                c.node(owner).unwrap().read().get(&key).unwrap(),
                Some(Value::from("v")),
                "key k{i} lost after rebalance"
            );
        }
    }

    /// An engine whose process "dies" remotely — like a killed
    /// tb-server behind a `ServerClient` — without `NodeStore::crash`
    /// ever being called locally.
    #[derive(Default)]
    struct RemoteEngine {
        dead: std::sync::atomic::AtomicBool,
        map: Mutex<BTreeMap<Key, Value>>,
    }

    impl RemoteEngine {
        fn check(&self) -> Result<()> {
            if self.dead.load(std::sync::atomic::Ordering::SeqCst) {
                Err(tb_common::Error::Unavailable("connection refused".into()))
            } else {
                Ok(())
            }
        }
    }

    impl KvEngine for RemoteEngine {
        fn get(&self, key: &Key) -> Result<Option<Value>> {
            self.check()?;
            Ok(self.map.lock().get(key).cloned())
        }
        fn put(&self, key: Key, value: Value) -> Result<()> {
            self.check()?;
            self.map.lock().insert(key, value);
            Ok(())
        }
        fn delete(&self, key: &Key) -> Result<()> {
            self.check()?;
            self.map.lock().remove(key);
            Ok(())
        }
        fn multi_get(&self, keys: &[Key]) -> Result<Vec<Option<Value>>> {
            // A socket client fails the whole exchange, even an empty
            // probe batch; the default lowering would skip `get` for
            // zero keys and hide the outage.
            self.check()?;
            keys.iter().map(|k| self.get(k)).collect()
        }
        fn resident_bytes(&self) -> u64 {
            0
        }
        fn label(&self) -> String {
            "remote-stub".into()
        }
    }

    #[test]
    fn failover_probe_detects_remotely_dead_primary() {
        let remote = Arc::new(RemoteEngine::default());
        let nodes = vec![
            NodeStore::new(NodeId(0), remote.clone()),
            NodeStore::new(NodeId(1), MapEngine::shared()),
        ];
        let c = CoordinatorGroup::bootstrap(1, nodes).unwrap();
        assert!(c.run_failover().unwrap().is_empty(), "all healthy");

        // The server process behind node 0 dies; the local alive flag
        // still says alive, only a probe can tell.
        remote.dead.store(true, std::sync::atomic::Ordering::SeqCst);
        assert!(c.node(NodeId(0)).unwrap().read().is_alive());
        let failed = c.run_failover().unwrap();
        assert_eq!(failed, vec![NodeId(0)]);
        assert!(!c.node(NodeId(0)).unwrap().read().is_alive());
        // No replica: every slot now routes to the surviving node.
        let table = c.routing();
        assert!(table.slots_of(NodeId(0)).is_empty());
        assert_eq!(table.slots_of(NodeId(1)).len(), 16384);
    }
}
