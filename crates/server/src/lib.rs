//! # tb-server — TierBase network serving
//!
//! The socket layer that takes the in-process serving stack built in
//! the rest of the workspace — pipelined `Frontend`, batched `KvEngine`
//! path, `tb-obs` telemetry — across a network boundary without losing
//! its batching wins:
//!
//! * [`proto`] — length-prefixed binary wire protocol. A streaming
//!   [`FrameDecoder`] drains every complete frame per read: that vector
//!   is the *pipeline burst*.
//! * [`Server`] — threaded TCP / Unix-socket listener. One decoded
//!   burst becomes ONE `KvEngine::apply_batch` call; replies are
//!   positional; `Error::Backpressure` maps to a retryable `RETRY`
//!   reply (with a queue-depth hint), never a dropped connection.
//! * [`ServerClient`] — pipelined client implementing `KvEngine`, so
//!   the conformance battery, `ClusterClient`, and the bench harness
//!   run over sockets unchanged. Transport failure = retryable
//!   `Error::Unavailable` + transparent reconnect on the next call.
//!
//! ```no_run
//! use std::sync::Arc;
//! use tb_common::{Key, KvEngine, Value};
//! use tb_server::{Server, ServerClient};
//!
//! # fn main() -> tb_common::Result<()> {
//! let engine: Arc<dyn KvEngine> = Arc::new(tb_lsm::LsmDb::open(
//!     tb_lsm::LsmConfig::new(std::env::temp_dir().join("tb-server-demo")),
//! )?);
//! let server = Server::bind_tcp("127.0.0.1:0", engine)?;
//! let client = ServerClient::connect_tcp(server.addr().to_string().trim_start_matches("tcp://"))?;
//! client.put(Key::from("k"), Value::from("v"))?;
//! assert_eq!(client.get(&Key::from("k"))?, Some(Value::from("v")));
//! # Ok(())
//! # }
//! ```

mod client;
mod conn;
pub mod proto;
mod server;
mod stats;

/// The reference-counted buffer type frames decode into (re-exported
/// so callers can name it without depending on `bytes` directly).
pub use bytes::Bytes;

pub use client::ServerClient;
pub use proto::{FrameDecoder, Reply, Request, MAX_FRAME};
pub use server::{Server, ServerAddr};
pub use stats::{ServerStats, ServerStatsSnapshot};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tb_common::{test_dir, Error, Key, KvEngine, Value};

    fn lsm(dir: &std::path::Path) -> Arc<dyn KvEngine> {
        Arc::new(tb_lsm::LsmDb::open(tb_lsm::LsmConfig::new(dir)).unwrap())
    }

    #[test]
    fn tcp_round_trip() {
        let dir = test_dir("tb-server-tcp");
        let server = Server::bind_tcp("127.0.0.1:0", lsm(dir.path())).unwrap();
        let ServerAddr::Tcp(addr) = *server.addr() else {
            panic!("expected tcp addr")
        };
        let client = ServerClient::connect_tcp(addr.to_string()).unwrap();
        client.ping().unwrap();
        client.put(Key::from("k"), Value::from("v")).unwrap();
        assert_eq!(client.get(&Key::from("k")).unwrap(), Some(Value::from("v")));
        assert_eq!(client.get(&Key::from("absent")).unwrap(), None);
        let stats = server.stats();
        assert!(stats.bursts >= 2);
        assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
        server.stop();
    }

    #[test]
    fn unix_round_trip_and_stats_command() {
        let dir = test_dir("tb-server-unix");
        let sock = dir.path().join("tb.sock");
        let server = Server::bind_unix(&sock, lsm(&dir.path().join("db"))).unwrap();
        let client = ServerClient::connect_unix(&sock).unwrap();
        client
            .multi_put(vec![
                (Key::from("a"), Value::from("1")),
                (Key::from("b"), Value::from("2")),
            ])
            .unwrap();
        let got = client.multi_get(&[Key::from("a"), Key::from("b")]).unwrap();
        assert_eq!(got, vec![Some(Value::from("1")), Some(Value::from("2"))]);
        let text = client.stats_text().unwrap();
        assert!(text.contains("server_bursts"), "exposition:\n{text}");
        server.stop();
        assert!(!sock.exists(), "socket file removed on shutdown");
    }

    #[test]
    fn cas_mismatch_round_trips_exactly() {
        let dir = test_dir("tb-server-cas");
        let server = Server::bind_tcp("127.0.0.1:0", lsm(dir.path())).unwrap();
        let ServerAddr::Tcp(addr) = *server.addr() else {
            panic!("expected tcp addr")
        };
        let client = ServerClient::connect_tcp(addr.to_string()).unwrap();
        client.put(Key::from("k"), Value::from("v1")).unwrap();
        let err = client
            .cas(
                Key::from("k"),
                Some(&Value::from("wrong")),
                Value::from("v2"),
            )
            .unwrap_err();
        assert_eq!(err, Error::CasMismatch);
        server.stop();
    }
}
