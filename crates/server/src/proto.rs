//! The TierBase wire protocol: length-prefixed binary frames carrying
//! engine operations and their completions.
//!
//! # Frame layout
//!
//! Every message — request or reply — is one *frame*:
//!
//! ```text
//! +----------------+--------+-----------------------------+
//! | len: u32 LE    | opcode | payload (len - 1 bytes)     |
//! +----------------+--------+-----------------------------+
//! ```
//!
//! `len` counts the opcode byte plus the payload, never itself. Byte
//! strings inside a payload are LEB128-varint length-prefixed; counts
//! and integers are varints too. A length prefix larger than
//! [`MAX_FRAME`] is unrecoverable (the stream cannot be resynchronized)
//! and decodes to [`Error::Corruption`]; a *body* that fails to decode
//! is recoverable — framing is intact — and servers answer it with a
//! per-slot `ERR` reply instead of dropping the connection.
//!
//! # Pipelining
//!
//! Clients write any number of request frames back-to-back before
//! reading replies. [`FrameDecoder::frames`] drains every complete
//! frame buffered so far — that vector is the *pipeline burst* the
//! server lowers onto ONE `KvEngine::apply_batch` call. Replies come
//! back one frame per request, in submission order (positional, like
//! `apply_batch` completions).
//!
//! # Cross-shard `MultiPut`
//!
//! A `MULTIPUT` frame inherits the engine's batch semantics: when the
//! serving engine is a sharded `Frontend`, pairs are scattered to their
//! shards and each shard commits independently — there is no cross-shard
//! transaction. A mid-batch shard failure therefore leaves the pairs of
//! healthy shards applied and returns the first shard error for the op.
//! The reply stream stays per-slot honest: each op in a burst gets its
//! own outcome frame, so a partial-failure burst reports exactly which
//! ops failed rather than a bogus all-or-nothing ack.
//!
//! # Backpressure
//!
//! `Error::Backpressure` travels as a dedicated `RETRY` reply carrying
//! the refusing queue's depth as a varint — a retry-after hint the
//! client surfaces via [`Error::queue_depth`]. Every other error ships
//! as `ERR` = (stable code byte from [`Error::wire_code`], detail
//! message); message-free kinds (`NotFound`, `CasMismatch`) round-trip
//! to the exact enum value so `==` comparisons work across the socket.

use bytes::Bytes;
use tb_common::{read_varint, write_varint, EngineOp, Error, Key, Lsn, OpOutcome, Result, Value};

/// Hard cap on one frame's body (opcode + payload). A length prefix
/// beyond this is treated as corruption, not an allocation request.
pub const MAX_FRAME: usize = 32 << 20;

// Request opcodes.
const OP_GET: u8 = 0x01;
const OP_PUT: u8 = 0x02;
const OP_DELETE: u8 = 0x03;
const OP_CAS: u8 = 0x04;
const OP_MULTIGET: u8 = 0x05;
const OP_MULTIPUT: u8 = 0x06;
const OP_SCAN: u8 = 0x07;
const OP_STATS: u8 = 0x08;
const OP_PING: u8 = 0x09;
const OP_SYNC: u8 = 0x0A;

// Reply opcodes (high bit set).
const RE_VALUE: u8 = 0x80;
const RE_DONE: u8 = 0x81;
const RE_VALUES: u8 = 0x82;
const RE_RANGE: u8 = 0x83;
const RE_ERR: u8 = 0x84;
const RE_RETRY: u8 = 0x85;
const RE_STATS_TEXT: u8 = 0x86;
const RE_PONG: u8 = 0x87;

/// One request frame's meaning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// An engine operation; answered positionally by an outcome reply.
    Op(EngineOp),
    /// Fetch the server's metrics snapshot (Prometheus exposition).
    Stats,
    /// Liveness probe.
    Ping,
    /// Force the engine's buffered state durable (`KvEngine::sync`).
    Sync,
}

/// One reply frame's meaning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Completion of an [`Request::Op`] or [`Request::Sync`] slot.
    Outcome(Result<OpOutcome>),
    /// Answer to [`Request::Stats`].
    StatsText(String),
    /// Answer to [`Request::Ping`].
    Pong,
}

fn write_bytes(out: &mut Vec<u8>, b: &[u8]) {
    write_varint(out, b.len() as u64);
    out.extend_from_slice(b);
}

fn read_bytes(body: &Bytes, pos: &mut usize) -> Result<Bytes> {
    let len = read_varint(body, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= body.len())
        .ok_or_else(|| Error::Corruption("byte string runs past frame end".into()))?;
    // Zero-copy: the returned Bytes is a window into the burst buffer.
    let out = body.slice(*pos..end);
    *pos = end;
    Ok(out)
}

fn read_key(body: &Bytes, pos: &mut usize) -> Result<Key> {
    read_bytes(body, pos).map(Key::from_bytes)
}

fn read_value(body: &Bytes, pos: &mut usize) -> Result<Value> {
    read_bytes(body, pos).map(Value::from_bytes)
}

fn read_count(body: &Bytes, pos: &mut usize) -> Result<usize> {
    let n = read_varint(body, pos)? as usize;
    // Each element costs at least one byte on the wire, so a count
    // beyond the remaining payload is corrupt — reject it before any
    // allocation is sized from it.
    if n > body.len() - *pos {
        return Err(Error::Corruption(format!(
            "count {n} exceeds remaining payload ({} bytes)",
            body.len() - *pos
        )));
    }
    Ok(n)
}

/// Appends one framed request to `out` (length prefix included), so a
/// client can pack a whole pipeline burst into one write.
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    frame(out, |out| match req {
        Request::Op(op) => encode_op(op, out),
        Request::Stats => out.push(OP_STATS),
        Request::Ping => out.push(OP_PING),
        Request::Sync => out.push(OP_SYNC),
    });
}

fn encode_op(op: &EngineOp, out: &mut Vec<u8>) {
    match op {
        EngineOp::Get(k) => {
            out.push(OP_GET);
            write_bytes(out, k.as_slice());
        }
        EngineOp::Put(k, v) => {
            out.push(OP_PUT);
            write_bytes(out, k.as_slice());
            write_bytes(out, v.as_slice());
        }
        EngineOp::Delete(k) => {
            out.push(OP_DELETE);
            write_bytes(out, k.as_slice());
        }
        EngineOp::Cas { key, expected, new } => {
            out.push(OP_CAS);
            write_bytes(out, key.as_slice());
            match expected {
                Some(e) => {
                    out.push(1);
                    write_bytes(out, e.as_slice());
                }
                None => out.push(0),
            }
            write_bytes(out, new.as_slice());
        }
        EngineOp::MultiGet(keys) => {
            out.push(OP_MULTIGET);
            write_varint(out, keys.len() as u64);
            for k in keys {
                write_bytes(out, k.as_slice());
            }
        }
        EngineOp::MultiPut(pairs) => {
            out.push(OP_MULTIPUT);
            write_varint(out, pairs.len() as u64);
            for (k, v) in pairs {
                write_bytes(out, k.as_slice());
                write_bytes(out, v.as_slice());
            }
        }
        EngineOp::Scan { start, end, limit } => {
            out.push(OP_SCAN);
            write_bytes(out, start.as_slice());
            match end {
                Some(e) => {
                    out.push(1);
                    write_bytes(out, e.as_slice());
                }
                None => out.push(0),
            }
            write_varint(out, *limit as u64);
        }
    }
}

/// Decodes one request frame body (opcode + payload, no length prefix).
/// Keys and values are zero-copy windows into `body`.
pub fn decode_request(body: &Bytes) -> Result<Request> {
    let opcode = *body
        .first()
        .ok_or_else(|| Error::Corruption("empty frame".into()))?;
    let mut pos = 1usize;
    let req = match opcode {
        OP_GET => Request::Op(EngineOp::Get(read_key(body, &mut pos)?)),
        OP_PUT => Request::Op(EngineOp::Put(
            read_key(body, &mut pos)?,
            read_value(body, &mut pos)?,
        )),
        OP_DELETE => Request::Op(EngineOp::Delete(read_key(body, &mut pos)?)),
        OP_CAS => {
            let key = read_key(body, &mut pos)?;
            let expected = match read_flag(body, &mut pos)? {
                true => Some(read_value(body, &mut pos)?),
                false => None,
            };
            let new = read_value(body, &mut pos)?;
            Request::Op(EngineOp::Cas { key, expected, new })
        }
        OP_MULTIGET => {
            let n = read_count(body, &mut pos)?;
            let mut keys = Vec::with_capacity(n);
            for _ in 0..n {
                keys.push(read_key(body, &mut pos)?);
            }
            Request::Op(EngineOp::MultiGet(keys))
        }
        OP_MULTIPUT => {
            let n = read_count(body, &mut pos)?;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                pairs.push((read_key(body, &mut pos)?, read_value(body, &mut pos)?));
            }
            Request::Op(EngineOp::MultiPut(pairs))
        }
        OP_SCAN => {
            let start = read_key(body, &mut pos)?;
            let end = match read_flag(body, &mut pos)? {
                true => Some(read_key(body, &mut pos)?),
                false => None,
            };
            let limit = read_varint(body, &mut pos)? as usize;
            Request::Op(EngineOp::Scan { start, end, limit })
        }
        OP_STATS => Request::Stats,
        OP_PING => Request::Ping,
        OP_SYNC => Request::Sync,
        other => {
            return Err(Error::Corruption(format!(
                "unknown request opcode 0x{other:02x}"
            )))
        }
    };
    expect_end(body, pos)?;
    Ok(req)
}

/// Appends one framed reply to `out`, so a server can pack a burst's
/// worth of replies into one write.
pub fn encode_reply(reply: &Reply, out: &mut Vec<u8>) {
    frame(out, |out| match reply {
        Reply::Outcome(Ok(OpOutcome::Value(v))) => {
            out.push(RE_VALUE);
            write_opt_value(out, v.as_ref());
        }
        Reply::Outcome(Ok(OpOutcome::Done(lsn))) => {
            out.push(RE_DONE);
            write_varint(out, lsn.0);
        }
        Reply::Outcome(Ok(OpOutcome::Values(vs))) => {
            out.push(RE_VALUES);
            write_varint(out, vs.len() as u64);
            for v in vs {
                write_opt_value(out, v.as_ref());
            }
        }
        Reply::Outcome(Ok(OpOutcome::Range(entries))) => {
            out.push(RE_RANGE);
            write_varint(out, entries.len() as u64);
            for (k, v) in entries {
                write_bytes(out, k.as_slice());
                write_bytes(out, v.as_slice());
            }
        }
        Reply::Outcome(Err(Error::Backpressure {
            reason,
            queue_depth,
        })) => {
            out.push(RE_RETRY);
            write_varint(out, *queue_depth as u64);
            write_bytes(out, reason.as_bytes());
        }
        Reply::Outcome(Err(e)) => {
            out.push(RE_ERR);
            out.push(e.wire_code());
            write_bytes(out, e.wire_message().as_bytes());
        }
        Reply::StatsText(text) => {
            out.push(RE_STATS_TEXT);
            write_bytes(out, text.as_bytes());
        }
        Reply::Pong => out.push(RE_PONG),
    });
}

fn write_opt_value(out: &mut Vec<u8>, v: Option<&Value>) {
    match v {
        Some(v) => {
            out.push(1);
            write_bytes(out, v.as_slice());
        }
        None => out.push(0),
    }
}

/// Decodes one reply frame body. Values are zero-copy windows into
/// `body`.
pub fn decode_reply(body: &Bytes) -> Result<Reply> {
    let opcode = *body
        .first()
        .ok_or_else(|| Error::Corruption("empty frame".into()))?;
    let mut pos = 1usize;
    let reply = match opcode {
        RE_VALUE => {
            let v = read_opt_value(body, &mut pos)?;
            Reply::Outcome(Ok(OpOutcome::Value(v)))
        }
        RE_DONE => Reply::Outcome(Ok(OpOutcome::Done(Lsn(read_varint(body, &mut pos)?)))),
        RE_VALUES => {
            let n = read_count(body, &mut pos)?;
            let mut vs = Vec::with_capacity(n);
            for _ in 0..n {
                vs.push(read_opt_value(body, &mut pos)?);
            }
            Reply::Outcome(Ok(OpOutcome::Values(vs)))
        }
        RE_RANGE => {
            let n = read_count(body, &mut pos)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push((read_key(body, &mut pos)?, read_value(body, &mut pos)?));
            }
            Reply::Outcome(Ok(OpOutcome::Range(entries)))
        }
        RE_ERR => {
            let code = *body
                .get(pos)
                .ok_or_else(|| Error::Corruption("ERR frame truncated".into()))?;
            pos += 1;
            let msg = read_bytes(body, &mut pos)?;
            let msg = String::from_utf8_lossy(&msg).into_owned();
            Reply::Outcome(Err(Error::from_wire(code, msg)))
        }
        RE_RETRY => {
            let queue_depth = read_varint(body, &mut pos)? as u32;
            let reason = read_bytes(body, &mut pos)?;
            let reason = String::from_utf8_lossy(&reason).into_owned();
            Reply::Outcome(Err(Error::Backpressure {
                reason,
                queue_depth,
            }))
        }
        RE_STATS_TEXT => {
            let text = read_bytes(body, &mut pos)?;
            Reply::StatsText(String::from_utf8_lossy(&text).into_owned())
        }
        RE_PONG => Reply::Pong,
        other => {
            return Err(Error::Corruption(format!(
                "unknown reply opcode 0x{other:02x}"
            )))
        }
    };
    expect_end(body, pos)?;
    Ok(reply)
}

fn read_flag(body: &Bytes, pos: &mut usize) -> Result<bool> {
    let b = *body
        .get(*pos)
        .ok_or_else(|| Error::Corruption("flag byte missing".into()))?;
    *pos += 1;
    match b {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(Error::Corruption(format!("bad flag byte 0x{other:02x}"))),
    }
}

fn read_opt_value(body: &Bytes, pos: &mut usize) -> Result<Option<Value>> {
    match read_flag(body, pos)? {
        true => Ok(Some(read_value(body, pos)?)),
        false => Ok(None),
    }
}

fn expect_end(body: &Bytes, pos: usize) -> Result<()> {
    if pos != body.len() {
        return Err(Error::Corruption(format!(
            "{} trailing bytes after frame payload",
            body.len() - pos
        )));
    }
    Ok(())
}

fn frame(out: &mut Vec<u8>, write_body: impl FnOnce(&mut Vec<u8>)) {
    let at = out.len();
    out.extend_from_slice(&[0u8; 4]);
    write_body(out);
    let len = (out.len() - at - 4) as u32;
    out[at..at + 4].copy_from_slice(&len.to_le_bytes());
}

/// Streaming frame reassembler: feed raw socket bytes in, drain
/// complete frame bodies out.
///
/// [`FrameDecoder::frames`] returns *every* complete frame buffered so
/// far in one vector — the pipeline burst. Partial trailing bytes stay
/// buffered for the next feed, so frames may arrive fragmented down to
/// one byte at a time. All bodies drained together share one backing
/// allocation; per-frame keys/values are windows into it (one copy per
/// burst, at the reassembly boundary).
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffers raw bytes read from the transport.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered but not yet drained as complete frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Drains every complete frame currently buffered, in arrival
    /// order. Empty vector = no complete frame yet (read more).
    ///
    /// A length prefix over [`MAX_FRAME`] is unrecoverable corruption —
    /// there is no way to find the next frame boundary — so it errors
    /// and the connection must be dropped.
    pub fn frames(&mut self) -> Result<Vec<Bytes>> {
        let mut spans = Vec::new();
        let mut pos = 0usize;
        while self.buf.len() - pos >= 4 {
            let len = u32::from_le_bytes(self.buf[pos..pos + 4].try_into().unwrap()) as usize;
            if len > MAX_FRAME {
                return Err(Error::Corruption(format!(
                    "frame length {len} exceeds max {MAX_FRAME}"
                )));
            }
            if self.buf.len() - pos - 4 < len {
                break;
            }
            spans.push((pos + 4, len));
            pos += 4 + len;
        }
        if spans.is_empty() {
            return Ok(Vec::new());
        }
        // One allocation for the whole burst; frame bodies are windows.
        let burst = Bytes::from(self.buf[..pos].to_vec());
        self.buf.drain(..pos);
        Ok(spans
            .into_iter()
            .map(|(at, len)| burst.slice(at..at + len))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let mut wire = Vec::new();
        encode_request(&req, &mut wire);
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let frames = dec.frames().unwrap();
        assert_eq!(frames.len(), 1);
        assert_eq!(decode_request(&frames[0]).unwrap(), req);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Op(EngineOp::Get(Key::from("k"))));
        round_trip_request(Request::Op(EngineOp::Put(
            Key::from("k"),
            Value::from(vec![0u8, 255, 7]),
        )));
        round_trip_request(Request::Op(EngineOp::Delete(Key::from(""))));
        round_trip_request(Request::Op(EngineOp::Cas {
            key: Key::from("k"),
            expected: None,
            new: Value::from("v"),
        }));
        round_trip_request(Request::Op(EngineOp::Scan {
            start: Key::from("a"),
            end: None,
            limit: usize::MAX,
        }));
        round_trip_request(Request::Stats);
        round_trip_request(Request::Ping);
        round_trip_request(Request::Sync);
    }

    #[test]
    fn burst_is_drained_in_one_call() {
        let mut wire = Vec::new();
        for i in 0..10 {
            encode_request(
                &Request::Op(EngineOp::Get(Key::from(format!("k{i}")))),
                &mut wire,
            );
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let frames = dec.frames().unwrap();
        assert_eq!(frames.len(), 10, "whole burst in one drain");
        // Zero-copy: every body shares the burst's single allocation.
        let base = frames[0].as_ptr() as usize;
        for f in &frames[1..] {
            let p = f.as_ptr() as usize;
            assert!(p > base && p - base < wire.len());
        }
    }

    #[test]
    fn oversized_length_prefix_is_corruption() {
        let mut dec = FrameDecoder::new();
        dec.feed(&((MAX_FRAME as u32) + 1).to_le_bytes());
        dec.feed(&[0u8; 16]);
        assert!(matches!(dec.frames(), Err(Error::Corruption(_))));
    }

    #[test]
    fn backpressure_reply_carries_depth() {
        let reply = Reply::Outcome(Err(Error::backpressure_at_depth("shard 3 queue full", 256)));
        let mut wire = Vec::new();
        encode_reply(&reply, &mut wire);
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let frames = dec.frames().unwrap();
        let back = decode_reply(&frames[0]).unwrap();
        let Reply::Outcome(Err(e)) = back else {
            panic!("expected error outcome, got {back:?}");
        };
        assert_eq!(e.queue_depth(), Some(256));
        assert!(e.is_retryable());
    }
}
