//! The socket server: TCP or Unix-socket listener, one serving thread
//! per connection, clean shutdown.

use crate::conn::{serve_conn, Stream};
use crate::stats::{ServerStats, ServerStatsSnapshot};
use parking_lot::Mutex;
use std::fmt;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use tb_common::{KvEngine, Result};

/// Where a [`Server`] is listening.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerAddr {
    /// TCP socket address (queryable for the OS-assigned port).
    Tcp(SocketAddr),
    /// Unix-domain socket path (removed again on shutdown).
    Unix(PathBuf),
}

impl fmt::Display for ServerAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerAddr::Tcp(a) => write!(f, "tcp://{a}"),
            ServerAddr::Unix(p) => write!(f, "unix://{}", p.display()),
        }
    }
}

/// State shared between the accept loop and connection threads.
pub(crate) struct Shared {
    pub(crate) engine: Arc<dyn KvEngine>,
    pub(crate) stats: ServerStats,
    pub(crate) shutdown: AtomicBool,
    /// Stream clones of live connections, kept so shutdown can kick
    /// their blocked reads.
    pub(crate) conns: Mutex<Vec<Stream>>,
    pub(crate) conn_handles: Mutex<Vec<JoinHandle<()>>>,
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }

    fn set_nonblocking(&self) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(true),
            Listener::Unix(l) => l.set_nonblocking(true),
        }
    }
}

/// A socket front door over any [`KvEngine`] — typically a
/// `Frontend`, so decoded pipeline bursts ride its group-commit and
/// batched-read paths; a bare engine works too.
///
/// One thread accepts, one thread serves each connection. Dropping the
/// server (or calling [`Server::stop`]) closes the listener, kicks
/// every in-flight connection, and joins all threads.
pub struct Server {
    shared: Arc<Shared>,
    addr: ServerAddr,
    accept: Mutex<Option<JoinHandle<()>>>,
    _obs: tb_obs::SourceGuard,
}

impl Server {
    /// Binds a TCP listener (use port 0 for an OS-assigned port, then
    /// [`Server::addr`] to learn it) and starts serving `engine`.
    pub fn bind_tcp(addr: impl ToSocketAddrs, engine: Arc<dyn KvEngine>) -> Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let bound = ServerAddr::Tcp(listener.local_addr()?);
        Self::start(Listener::Tcp(listener), bound, engine)
    }

    /// Binds a Unix-domain socket (a stale socket file at `path` is
    /// replaced) and starts serving `engine`.
    pub fn bind_unix(path: impl AsRef<Path>, engine: Arc<dyn KvEngine>) -> Result<Server> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        Self::start(Listener::Unix(listener), ServerAddr::Unix(path), engine)
    }

    fn start(listener: Listener, addr: ServerAddr, engine: Arc<dyn KvEngine>) -> Result<Server> {
        listener.set_nonblocking()?;
        let shared = Arc::new(Shared {
            engine,
            stats: ServerStats::default(),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            conn_handles: Mutex::new(Vec::new()),
        });
        let obs = {
            let shared = shared.clone();
            tb_obs::global().register_source(move |b| {
                let s = shared.stats.snapshot();
                b.counter("server_conns_opened", s.conns_opened);
                b.gauge("server_conns_active", s.conns_active as i64);
                b.counter("server_bursts", s.bursts);
                b.counter("server_ops", s.ops);
                b.counter("server_bytes_in", s.bytes_in);
                b.counter("server_bytes_out", s.bytes_out);
                b.counter("server_decode_errors", s.decode_errors);
            })
        };
        let accept = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        Ok(Server {
            shared,
            addr,
            accept: Mutex::new(Some(accept)),
            _obs: obs,
        })
    }

    /// Where this server is listening.
    pub fn addr(&self) -> &ServerAddr {
        &self.addr
    }

    /// The engine being served.
    pub fn engine(&self) -> &Arc<dyn KvEngine> {
        &self.shared.engine
    }

    /// Point-in-time serving counters.
    pub fn stats(&self) -> ServerStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Stops accepting, kicks every live connection, joins all serving
    /// threads. Idempotent; also runs on drop.
    pub fn stop(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        for conn in self.shared.conns.lock().drain(..) {
            conn.shutdown_both();
        }
        if let Some(handle) = self.accept.lock().take() {
            let _ = handle.join();
        }
        // A connection may have been accepted between the flag and the
        // accept thread noticing; sweep again now that accepting is done.
        for conn in self.shared.conns.lock().drain(..) {
            conn.shutdown_both();
        }
        for handle in self.shared.conn_handles.lock().drain(..) {
            let _ = handle.join();
        }
        if let ServerAddr::Unix(path) = &self.addr {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: Listener, shared: Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => {
                if let Ok(kick) = stream.try_clone() {
                    shared.conns.lock().push(kick);
                }
                let shared2 = shared.clone();
                let handle = std::thread::spawn(move || serve_conn(shared2, stream));
                shared.conn_handles.lock().push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}
