//! The socket client: a [`KvEngine`] whose batch path is a pipelined
//! wire exchange, so everything written against the trait — the
//! conformance battery, `ClusterClient`, benches — runs over a socket
//! unchanged.

use crate::conn::Stream;
use crate::proto::{decode_reply, encode_request, FrameDecoder, Reply, Request};
use parking_lot::Mutex;
use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use tb_common::{BatchReadStats, EngineOp, Error, Key, KvEngine, Lsn, OpOutcome, Result, Value};

/// Reconnectable server address.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Target {
    Tcp(String),
    Unix(PathBuf),
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Tcp(a) => write!(f, "tcp://{a}"),
            Target::Unix(p) => write!(f, "unix://{}", p.display()),
        }
    }
}

struct Conn {
    stream: Stream,
    dec: FrameDecoder,
}

/// A pipelined client for one `tb-server`.
///
/// [`KvEngine::apply_batch`] writes all N request frames in one burst,
/// then reads the N positional replies — the server lowers the burst
/// onto ONE engine `apply_batch`, so network pipelining and engine
/// batching are the same thing. Point methods are one-op bursts.
///
/// Transport failure surfaces as [`Error::Unavailable`] (retryable) on
/// every in-flight slot; the broken connection is dropped and the next
/// call transparently reconnects — which is what lets `ClusterClient`
/// treat a killed server process like any other failed-over node.
pub struct ServerClient {
    target: Target,
    conn: Mutex<Option<Conn>>,
    /// Highest `Done` LSN seen in replies; this client's
    /// [`KvEngine::applied_lsn`] view of the remote engine.
    max_lsn: AtomicU64,
}

impl ServerClient {
    /// Connects over TCP (`"host:port"`). Fails fast when the server is
    /// unreachable; later breakage reconnects lazily per call.
    pub fn connect_tcp(addr: impl Into<String>) -> Result<ServerClient> {
        Self::connect(Target::Tcp(addr.into()))
    }

    /// Connects over a Unix-domain socket.
    pub fn connect_unix(path: impl Into<PathBuf>) -> Result<ServerClient> {
        Self::connect(Target::Unix(path.into()))
    }

    fn connect(target: Target) -> Result<ServerClient> {
        let client = ServerClient {
            target,
            conn: Mutex::new(None),
            max_lsn: AtomicU64::new(0),
        };
        let mut guard = client.conn.lock();
        *guard = Some(Self::dial(&client.target)?);
        drop(guard);
        Ok(client)
    }

    fn dial(target: &Target) -> Result<Conn> {
        let stream = match target {
            Target::Tcp(addr) => TcpStream::connect(addr).map(Stream::Tcp),
            Target::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
        }
        .map_err(|e| Error::Unavailable(format!("connect {target}: {e}")))?;
        Ok(Conn {
            stream,
            dec: FrameDecoder::new(),
        })
    }

    /// Liveness probe: one PING/PONG round trip.
    pub fn ping(&self) -> Result<()> {
        match self.rpc(&[Request::Ping])?.pop() {
            Some(Reply::Pong) => Ok(()),
            other => Err(Error::Internal(format!("PING answered with {other:?}"))),
        }
    }

    /// Fetches the server's metrics snapshot as Prometheus exposition
    /// (the wire `STATS` command).
    pub fn stats_text(&self) -> Result<String> {
        match self.rpc(&[Request::Stats])?.pop() {
            Some(Reply::StatsText(text)) => Ok(text),
            other => Err(Error::Internal(format!("STATS answered with {other:?}"))),
        }
    }

    /// One pipelined exchange: write all requests, read all replies in
    /// order. Any transport or protocol failure drops the connection
    /// (the next call redials) and reports [`Error::Unavailable`] /
    /// [`Error::Corruption`] respectively.
    fn rpc(&self, reqs: &[Request]) -> Result<Vec<Reply>> {
        let mut guard = self.conn.lock();
        if guard.is_none() {
            *guard = Some(Self::dial(&self.target)?);
        }
        let conn = guard.as_mut().expect("connection just ensured");
        let mut wire = Vec::new();
        for req in reqs {
            encode_request(req, &mut wire);
        }
        match Self::exchange(conn, &wire, reqs.len()) {
            Ok(replies) => Ok(replies),
            Err(e) => {
                // Poisoned mid-exchange: request/reply pairing is gone.
                *guard = None;
                Err(e)
            }
        }
    }

    fn exchange(conn: &mut Conn, wire: &[u8], expect: usize) -> Result<Vec<Reply>> {
        let unavailable = |e: std::io::Error| Error::Unavailable(format!("server io: {e}"));
        conn.stream.write_all(wire).map_err(unavailable)?;
        let mut replies = Vec::with_capacity(expect);
        let mut buf = vec![0u8; 64 << 10];
        loop {
            for body in conn.dec.frames()? {
                if replies.len() == expect {
                    return Err(Error::Corruption("unsolicited reply frame".into()));
                }
                replies.push(decode_reply(&body)?);
            }
            if replies.len() == expect {
                return Ok(replies);
            }
            let n = conn.stream.read(&mut buf).map_err(unavailable)?;
            if n == 0 {
                return Err(Error::Unavailable(
                    "server closed connection mid-exchange".into(),
                ));
            }
            conn.dec.feed(&buf[..n]);
        }
    }

    fn note_lsn(&self, lsn: Lsn) {
        self.max_lsn.fetch_max(lsn.0, Ordering::Relaxed);
    }

    fn one(&self, op: EngineOp) -> Result<OpOutcome> {
        self.apply_batch(vec![op])
            .pop()
            .unwrap_or_else(|| Err(Error::Internal("empty batch completion".into())))
    }
}

impl KvEngine for ServerClient {
    fn get(&self, key: &Key) -> Result<Option<Value>> {
        match self.one(EngineOp::Get(key.clone()))? {
            OpOutcome::Value(v) => Ok(v),
            other => Err(Error::Internal(format!("get resolved to {other:?}"))),
        }
    }

    fn put(&self, key: Key, value: Value) -> Result<()> {
        match self.one(EngineOp::Put(key, value))? {
            OpOutcome::Done(_) => Ok(()),
            other => Err(Error::Internal(format!("put resolved to {other:?}"))),
        }
    }

    fn delete(&self, key: &Key) -> Result<()> {
        match self.one(EngineOp::Delete(key.clone()))? {
            OpOutcome::Done(_) => Ok(()),
            other => Err(Error::Internal(format!("delete resolved to {other:?}"))),
        }
    }

    fn cas(&self, key: Key, expected: Option<&Value>, new: Value) -> Result<()> {
        let op = EngineOp::Cas {
            key,
            expected: expected.cloned(),
            new,
        };
        match self.one(op)? {
            OpOutcome::Done(_) => Ok(()),
            other => Err(Error::Internal(format!("cas resolved to {other:?}"))),
        }
    }

    // multi_get / multi_put / scan use the trait defaults: one
    // apply_batch submission = one wire burst = one server-side batch.

    fn apply_batch(&self, ops: Vec<EngineOp>) -> Vec<Result<OpOutcome>> {
        if ops.is_empty() {
            return Vec::new();
        }
        let n = ops.len();
        let reqs: Vec<Request> = ops.into_iter().map(Request::Op).collect();
        match self.rpc(&reqs) {
            Ok(replies) => replies
                .into_iter()
                .map(|reply| match reply {
                    Reply::Outcome(outcome) => {
                        if let Ok(OpOutcome::Done(lsn)) = &outcome {
                            self.note_lsn(*lsn);
                        }
                        outcome
                    }
                    other => Err(Error::Internal(format!("op answered with {other:?}"))),
                })
                .collect(),
            // The whole burst's fate is unknown — every slot reports the
            // same retryable transport error.
            Err(e) => (0..n).map(|_| Err(e.clone())).collect(),
        }
    }

    fn sync(&self) -> Result<()> {
        match self.rpc(&[Request::Sync])?.pop() {
            Some(Reply::Outcome(Ok(OpOutcome::Done(lsn)))) => {
                self.note_lsn(lsn);
                Ok(())
            }
            Some(Reply::Outcome(Err(e))) => Err(e),
            other => Err(Error::Internal(format!("SYNC answered with {other:?}"))),
        }
    }

    fn applied_lsn(&self) -> Lsn {
        Lsn(self.max_lsn.load(Ordering::Relaxed))
    }

    fn batch_read_stats(&self) -> BatchReadStats {
        // The remote engine's counters are visible via STATS; this
        // client adds no read amplification of its own.
        BatchReadStats::default()
    }

    fn resident_bytes(&self) -> u64 {
        0
    }

    fn label(&self) -> String {
        format!("net({})", self.target)
    }
}
