//! Serving-side counters, exported into the `tb-obs` global registry.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative counters for one [`crate::Server`]. Readable locally via
/// [`crate::Server::stats`] and exported as `server_*` metrics in
/// `tb_obs::global()` snapshots (which the wire `STATS` command
/// returns as Prometheus exposition).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted over the server's life.
    pub conns_opened: AtomicU64,
    /// Connections currently being served.
    pub conns_active: AtomicU64,
    /// Pipeline bursts lowered onto the engine (one `apply_batch` each).
    pub bursts: AtomicU64,
    /// Engine ops served (sum of burst sizes; ops/burst = ops/bursts).
    pub ops: AtomicU64,
    /// Raw bytes read off sockets.
    pub bytes_in: AtomicU64,
    /// Raw bytes written to sockets.
    pub bytes_out: AtomicU64,
    /// Frame-level decode failures (connection dropped) plus per-slot
    /// body decode failures (answered with `ERR`, connection kept).
    pub decode_errors: AtomicU64,
}

/// Point-in-time copy of [`ServerStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    pub conns_opened: u64,
    pub conns_active: u64,
    pub bursts: u64,
    pub ops: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub decode_errors: u64,
}

impl ServerStats {
    pub(crate) fn bump(counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> ServerStatsSnapshot {
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ServerStatsSnapshot {
            conns_opened: c(&self.conns_opened),
            conns_active: c(&self.conns_active),
            bursts: c(&self.bursts),
            ops: c(&self.ops),
            bytes_in: c(&self.bytes_in),
            bytes_out: c(&self.bytes_out),
            decode_errors: c(&self.decode_errors),
        }
    }
}
