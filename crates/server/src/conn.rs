//! Per-connection serving: reassemble pipeline bursts, lower each onto
//! ONE `KvEngine::apply_batch`, reply positionally.

use crate::proto::{decode_request, encode_reply, FrameDecoder, Reply, Request};
use crate::server::Shared;
use crate::stats::ServerStats;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use tb_common::OpOutcome;

/// A connected byte stream over either transport.
pub(crate) enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    pub(crate) fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    /// Kicks any blocked read/write on every clone of this stream.
    pub(crate) fn shutdown_both(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// One decoded request's place in the burst while the engine runs.
enum Slot {
    /// An engine op, submitted to `apply_batch`; resolved positionally.
    Pending,
    /// A control frame (or a body decode failure), resolved inline.
    Ready(Reply),
}

/// Serves one connection until the peer closes, an unrecoverable
/// protocol error occurs, or the server shuts down.
pub(crate) fn serve_conn(shared: Arc<Shared>, mut stream: Stream) {
    ServerStats::bump(&shared.stats.conns_opened, 1);
    shared.stats.conns_active.fetch_add(1, Ordering::Relaxed);
    let mut dec = FrameDecoder::new();
    let mut buf = vec![0u8; 64 << 10];
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        ServerStats::bump(&shared.stats.bytes_in, n as u64);
        dec.feed(&buf[..n]);
        // Everything complete so far IS the pipeline burst.
        let frames = match dec.frames() {
            Ok(frames) => frames,
            Err(e) => {
                // Framing broke: the stream cannot be resynchronized.
                // Best-effort ERR so a non-pipelined peer learns why,
                // then drop the connection.
                ServerStats::bump(&shared.stats.decode_errors, 1);
                let mut out = Vec::new();
                encode_reply(&Reply::Outcome(Err(e)), &mut out);
                let _ = stream.write_all(&out);
                break;
            }
        };
        if frames.is_empty() {
            continue;
        }
        if !serve_burst(&shared, &mut stream, frames) {
            break;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
    shared.stats.conns_active.fetch_sub(1, Ordering::Relaxed);
}

/// Serves one decoded burst; returns false when the connection died.
///
/// All engine ops in the burst go down as ONE `apply_batch` submission
/// (that is the whole point of the wire protocol: network pipelining
/// lowers 1:1 onto the engine's batch path, preserving group-commit and
/// batched-read wins). Control frames resolve around it: `PING`/`STATS`
/// immediately, `SYNC` *after* the batch so it acts as a trailing
/// barrier covering every op in the burst. A body that fails to decode
/// gets a per-slot `ERR` reply — framing is intact, the connection
/// survives.
fn serve_burst(shared: &Arc<Shared>, stream: &mut Stream, frames: Vec<bytes::Bytes>) -> bool {
    let mut slots: Vec<Slot> = Vec::with_capacity(frames.len());
    let mut ops = Vec::new();
    let mut op_slots = Vec::new();
    let mut sync_slots = Vec::new();
    for frame in &frames {
        match decode_request(frame) {
            Ok(Request::Op(op)) => {
                op_slots.push(slots.len());
                ops.push(op);
                slots.push(Slot::Pending);
            }
            Ok(Request::Ping) => slots.push(Slot::Ready(Reply::Pong)),
            Ok(Request::Stats) => slots.push(Slot::Ready(Reply::StatsText(
                tb_obs::global().snapshot().to_prometheus(),
            ))),
            Ok(Request::Sync) => {
                sync_slots.push(slots.len());
                slots.push(Slot::Pending);
            }
            Err(e) => {
                ServerStats::bump(&shared.stats.decode_errors, 1);
                slots.push(Slot::Ready(Reply::Outcome(Err(e))));
            }
        }
    }
    let outcomes = if ops.is_empty() {
        Vec::new()
    } else {
        ServerStats::bump(&shared.stats.bursts, 1);
        ServerStats::bump(&shared.stats.ops, ops.len() as u64);
        let t0 = tb_obs::start();
        let outcomes = shared.engine.apply_batch(ops);
        tb_obs::histo!("server_burst_ns").record_since(t0);
        outcomes
    };
    for (slot, outcome) in op_slots.into_iter().zip(outcomes) {
        slots[slot] = Slot::Ready(Reply::Outcome(outcome));
    }
    for slot in sync_slots {
        let outcome = shared
            .engine
            .sync()
            .map(|_| OpOutcome::Done(shared.engine.applied_lsn()));
        slots[slot] = Slot::Ready(Reply::Outcome(outcome));
    }
    let mut out = Vec::new();
    for slot in slots {
        let reply = match slot {
            Slot::Ready(reply) => reply,
            Slot::Pending => Reply::Outcome(Err(tb_common::Error::Internal(
                "burst slot left unresolved".into(),
            ))),
        };
        encode_reply(&reply, &mut out);
    }
    ServerStats::bump(&shared.stats.bytes_out, out.len() as u64);
    stream.write_all(&out).is_ok()
}
