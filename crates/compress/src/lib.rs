//! Pre-trained compression for TierBase (§4.2).
//!
//! Two compressors are provided behind one [`Compressor`] trait:
//!
//! * **tzstd** ([`lz`], [`dict`]) — an LZ77 hash-chain compressor with
//!   compression levels and offline-trained dictionaries. It stands in for
//!   Zstandard: same role (general string compression, dictionary mode for
//!   small records), same knobs (level trades ratio against speed), same
//!   training flow (`train_dictionary` ≈ `zstd --train`). Entropy coding is
//!   omitted; ratios are therefore uniformly a little worse than real zstd
//!   but the *orderings* the paper measures (dict > no-dict on small
//!   records, higher level → better ratio/slower SET) are preserved.
//! * **PBC** ([`pbc`]) — Pattern-Based Compression per the paper and ref
//!   [59]: offline hierarchical clustering of sampled records extracts
//!   *patterns* (templates of literal anchors with wildcard gaps); a record
//!   compresses to a pattern id plus its gap residuals. Decompression is a
//!   sequence of memcpys, which is why PBC GET throughput approaches raw.
//!
//! [`framework`] supplies the production wrapper: sampling, training,
//! a compression-efficiency monitor with retrain triggers, and the
//! compressor recommender surfaced by TierBase's Insight service.

pub mod block;
pub mod dict;
pub mod framework;
pub mod lz;
pub mod pbc;
pub mod rangecoder;

pub use block::{BlockCodec, BlockCodecState, FRAME_HEADER_LEN, FRAME_TAG_STORED};
pub use dict::train_dictionary;
pub use framework::{
    CompressionMonitor, CompressionStats, CompressorChoice, CompressorRecommender, MonitorConfig,
    PretrainedCompression,
};
pub use lz::{Tzstd, TzstdLevel};
pub use pbc::{Pbc, PbcConfig, PbcModel};

use tb_common::Result;

/// A byte-string compressor.
pub trait Compressor: Send + Sync {
    /// Compresses `input`. The output must round-trip via [`Self::decompress`].
    fn compress(&self, input: &[u8]) -> Vec<u8>;

    /// Decompresses a buffer produced by [`Self::compress`].
    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>>;

    /// Short identifier ("raw", "tzstd", "tzstd-d", "pbc").
    fn name(&self) -> &'static str;
}

/// Identity compressor (the paper's "Raw" baseline).
#[derive(Debug, Default, Clone, Copy)]
pub struct RawCompressor;

impl Compressor for RawCompressor {
    fn compress(&self, input: &[u8]) -> Vec<u8> {
        input.to_vec()
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
        Ok(input.to_vec())
    }

    fn name(&self) -> &'static str {
        "raw"
    }
}

/// Measures the compression ratio (compressed/original, lower is better)
/// of `c` over a sample set.
pub fn measure_ratio(c: &dyn Compressor, samples: &[Vec<u8>]) -> f64 {
    let orig: usize = samples.iter().map(|s| s.len()).sum();
    if orig == 0 {
        return 1.0;
    }
    let comp: usize = samples.iter().map(|s| c.compress(s).len()).sum();
    comp as f64 / orig as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_roundtrip_is_identity() {
        let c = RawCompressor;
        let data = b"hello world".to_vec();
        let z = c.compress(&data);
        assert_eq!(z, data);
        assert_eq!(c.decompress(&z).unwrap(), data);
    }

    #[test]
    fn measure_ratio_of_raw_is_one() {
        let samples = vec![b"aaaa".to_vec(), b"bbbb".to_vec()];
        assert_eq!(measure_ratio(&RawCompressor, &samples), 1.0);
    }

    #[test]
    fn measure_ratio_empty_sample() {
        assert_eq!(measure_ratio(&RawCompressor, &[]), 1.0);
    }
}
