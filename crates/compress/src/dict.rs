//! Dictionary training for `tzstd` (the `zstd --train` analog).
//!
//! The trainer scores fixed-length fragments of the sample set by
//! (frequency − 1) × length — the bytes an LZ match into the dictionary
//! would save — and greedily packs the best non-redundant fragments into
//! the dictionary budget. High-value fragments go at the *end* of the
//! dictionary so they sit at short match distances (cheap varints).

use crate::lz::TrainedDict;
use std::collections::HashMap;
use std::sync::Arc;

/// Fragment lengths considered during training.
const FRAGMENT_LENS: [usize; 3] = [8, 16, 32];
/// Cap on samples examined (training is offline; keep it bounded anyway).
const MAX_TRAIN_SAMPLES: usize = 4096;

/// Trains a dictionary of at most `max_size` bytes from sample records.
///
/// Returns an indexed [`TrainedDict`] ready to hand to
/// [`crate::Tzstd::with_dict`].
pub fn train_dictionary(samples: &[Vec<u8>], max_size: usize) -> Arc<TrainedDict> {
    let mut freq: HashMap<&[u8], u32> = HashMap::new();
    for s in samples.iter().take(MAX_TRAIN_SAMPLES) {
        for &flen in &FRAGMENT_LENS {
            if s.len() < flen {
                continue;
            }
            // Stride by half the fragment length: dense enough to catch
            // shared template pieces, sparse enough to stay fast.
            let stride = (flen / 2).max(1);
            let mut i = 0;
            while i + flen <= s.len() {
                *freq.entry(&s[i..i + flen]).or_insert(0) += 1;
                i += stride;
            }
        }
    }

    // Score: bytes saved if this fragment becomes a dictionary match.
    let mut scored: Vec<(&[u8], u64)> = freq
        .into_iter()
        .filter(|&(_, c)| c >= 2)
        .map(|(frag, c)| (frag, (c as u64 - 1) * frag.len() as u64))
        .collect();
    scored.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));

    // Greedy pack, skipping fragments already covered by chosen content.
    let mut chosen: Vec<&[u8]> = Vec::new();
    let mut used = 0usize;
    for (frag, _) in scored {
        if used + frag.len() > max_size {
            continue;
        }
        if chosen.iter().any(|c| contains(c, frag)) {
            continue;
        }
        used += frag.len();
        chosen.push(frag);
        if used >= max_size {
            break;
        }
    }

    // Lowest-value fragments first → highest value nearest the end.
    let mut bytes = Vec::with_capacity(used);
    for frag in chosen.iter().rev() {
        bytes.extend_from_slice(frag);
    }
    Arc::new(TrainedDict::new(bytes))
}

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    if needle.len() > haystack.len() {
        return false;
    }
    haystack.windows(needle.len()).any(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lz::{Tzstd, TzstdLevel};
    use crate::{measure_ratio, Compressor};

    #[test]
    fn empty_samples_give_empty_dict() {
        let d = train_dictionary(&[], 1024);
        assert!(d.is_empty());
    }

    #[test]
    fn dict_respects_budget() {
        let samples: Vec<Vec<u8>> = (0..100)
            .map(|i| format!("record-{i}-common-suffix-shared-by-all-records").into_bytes())
            .collect();
        let d = train_dictionary(&samples, 256);
        assert!(d.len() <= 256, "dict size {}", d.len());
        assert!(!d.is_empty());
    }

    #[test]
    fn trained_dict_contains_shared_template() {
        let samples: Vec<Vec<u8>> = (0..50)
            .map(|i| {
                format!("{{\"type\":\"order\",\"status\":\"completed\",\"id\":{i}}}").into_bytes()
            })
            .collect();
        let d = train_dictionary(&samples, 1024);
        let dict_str = String::from_utf8_lossy(d.as_bytes()).into_owned();
        assert!(
            dict_str.contains("status") || dict_str.contains("completed"),
            "dictionary missed the shared template: {dict_str:?}"
        );
    }

    #[test]
    fn dict_training_improves_ratio_on_templated_records() {
        let samples: Vec<Vec<u8>> = (0..200)
            .map(|i| {
                format!(
                    "{{\"uid\":\"{:016x}\",\"device\":\"android\",\"region\":\"CN-ZJ\",\"ts\":{}}}",
                    i * 0x1234_5678_9abc_u64,
                    1_700_000_000 + i
                )
                .into_bytes()
            })
            .collect();
        let train = &samples[..100];
        let test: Vec<Vec<u8>> = samples[100..].to_vec();

        let plain = Tzstd::new(TzstdLevel(1));
        let d = train_dictionary(train, 4096);
        let trained = Tzstd::with_dict(TzstdLevel(1), d);

        let r_plain = measure_ratio(&plain, &test);
        let r_dict = measure_ratio(&trained, &test);
        assert!(
            r_dict < r_plain,
            "dict ratio {r_dict:.3} should beat plain {r_plain:.3}"
        );
    }

    #[test]
    fn roundtrip_with_trained_dict() {
        let samples: Vec<Vec<u8>> = (0..100)
            .map(|i| format!("TXN|v3|{:032x}|AMT:{}|CUR:CNY|END", i, i * 37).into_bytes())
            .collect();
        let d = train_dictionary(&samples, 2048);
        let c = Tzstd::with_dict(TzstdLevel(15), d);
        for s in &samples {
            let z = c.compress(s);
            assert_eq!(&c.decompress(&z).unwrap(), s);
        }
    }
}
