//! PBC — Pattern-Based Compression (§4.2, ref [59]).
//!
//! Machine-generated records usually instantiate a small number of rigid
//! *templates*: fixed field names, separators and enum values with
//! high-entropy identifiers in between. PBC discovers those templates
//! offline and stores each record as a pattern id plus the bytes in the
//! template's gaps.
//!
//! **Training** (`PbcModel::train`):
//! 1. tokenize sampled records into character-class runs,
//! 2. agglomeratively cluster samples under a gap-weighted similarity
//!    metric (token-level LCS length normalized by record length),
//! 3. fold the token-LCS across each cluster to get the common token
//!    subsequence, joining tokens that are adjacent in every member into
//!    longer literal anchors.
//!
//! **Compression**: greedily locate each pattern literal in order; emit
//! `pattern id + gap residuals`. Records matching no pattern fall back to
//! `tzstd` (and the fallback rate feeds the retraining monitor).
//! **Decompression** is a sequence of memcpys — literals from the pattern,
//! gaps from the payload — which is why PBC GET throughput approaches raw
//! (Table 2).

use crate::lz::{read_varint, write_varint, TrainedDict, Tzstd, TzstdLevel};
use crate::Compressor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tb_common::{Error, Result};

/// Record tag: tzstd fallback (no pattern matched).
const TAG_FALLBACK: u8 = 0;
/// Record tag: pattern match with plain residuals.
const TAG_PATTERN: u8 = 1;
/// Record tag: pattern match with tzstd-compressed residual blob
/// (the paper's "residual strings are then compressed further").
const TAG_PATTERN_LZ: u8 = 2;

/// Training knobs.
#[derive(Debug, Clone)]
pub struct PbcConfig {
    /// Upper bound on retained patterns.
    pub max_patterns: usize,
    /// Records participating in clustering (quadratic phase).
    pub max_cluster_samples: usize,
    /// Minimum similarity for two records to share a cluster.
    pub similarity_threshold: f64,
    /// A pattern must cover at least this many literal bytes to be kept.
    pub min_pattern_bytes: usize,
    /// Minimum cluster size generating a pattern.
    pub min_cluster_size: usize,
    /// Level of the tzstd fallback used for unmatched records.
    pub fallback_level: TzstdLevel,
}

impl Default for PbcConfig {
    fn default() -> Self {
        Self {
            max_patterns: 64,
            max_cluster_samples: 128,
            similarity_threshold: 0.35,
            min_pattern_bytes: 12,
            min_cluster_size: 2,
            fallback_level: TzstdLevel(1),
        }
    }
}

/// A discovered template: literal anchors with wildcard gaps between,
/// before, and after them (`gap lit gap lit ... lit gap`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    literals: Vec<Vec<u8>>,
}

impl Pattern {
    /// Total bytes covered when the pattern matches.
    fn literal_bytes(&self) -> usize {
        self.literals.iter().map(|l| l.len()).sum()
    }

    /// Greedy in-order match. Returns the gap residuals
    /// (`literals.len() + 1` pieces) when every literal is found.
    fn match_record<'a>(&self, record: &'a [u8]) -> Option<Vec<&'a [u8]>> {
        let mut gaps = Vec::with_capacity(self.literals.len() + 1);
        let mut pos = 0usize;
        for lit in &self.literals {
            let found = find(&record[pos..], lit)?;
            gaps.push(&record[pos..pos + found]);
            pos += found + lit.len();
        }
        gaps.push(&record[pos..]);
        Some(gaps)
    }

    /// Reassembles a record from gap residuals.
    fn reconstruct(&self, gaps: &[Vec<u8>]) -> Vec<u8> {
        let total: usize = self.literal_bytes() + gaps.iter().map(|g| g.len()).sum::<usize>();
        let mut out = Vec::with_capacity(total);
        for (i, lit) in self.literals.iter().enumerate() {
            out.extend_from_slice(&gaps[i]);
            out.extend_from_slice(lit);
        }
        out.extend_from_slice(gaps.last().expect("trailing gap"));
        out
    }
}

/// Byte-level substring search (memmem).
fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() {
        return Some(0);
    }
    if needle.len() > haystack.len() {
        return None;
    }
    let first = needle[0];
    let mut i = 0;
    while i + needle.len() <= haystack.len() {
        if haystack[i] == first && &haystack[i..i + needle.len()] == needle {
            return Some(i);
        }
        i += 1;
    }
    None
}

// ---------------------------------------------------------------------
// Tokenization
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CharClass {
    Alpha,
    Digit,
    Other,
}

fn class_of(b: u8) -> CharClass {
    match b {
        b'a'..=b'z' | b'A'..=b'Z' => CharClass::Alpha,
        b'0'..=b'9' => CharClass::Digit,
        _ => CharClass::Other,
    }
}

/// Splits a record into maximal same-class runs.
fn tokenize(record: &[u8]) -> Vec<&[u8]> {
    let mut tokens = Vec::new();
    let mut start = 0usize;
    for i in 1..=record.len() {
        if i == record.len() || class_of(record[i]) != class_of(record[start]) {
            tokens.push(&record[start..i]);
            start = i;
        }
    }
    tokens
}

/// Token-level LCS; returns the common subsequence of token values.
fn token_lcs<'a>(a: &[&'a [u8]], b: &[&[u8]]) -> Vec<&'a [u8]> {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return vec![];
    }
    // Weighted by token byte length so long anchors win ties.
    let mut dp = vec![0u32; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[idx(i, j)] = if a[i] == b[j] {
                dp[idx(i + 1, j + 1)] + a[i].len() as u32
            } else {
                dp[idx(i + 1, j)].max(dp[idx(i, j + 1)])
            };
        }
    }
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < n && j < m {
        if a[i] == b[j] && dp[idx(i, j)] == dp[idx(i + 1, j + 1)] + a[i].len() as u32 {
            out.push(a[i]);
            i += 1;
            j += 1;
        } else if dp[idx(i + 1, j)] >= dp[idx(i, j + 1)] {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// Gap-weighted similarity: shared anchor bytes over mean record length.
fn similarity(a: &[u8], b: &[u8]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let ta = tokenize(a);
    let tb = tokenize(b);
    let common: usize = token_lcs(&ta, &tb).iter().map(|t| t.len()).sum();
    2.0 * common as f64 / (a.len() + b.len()) as f64
}

// ---------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------

/// A trained PBC model: the pattern table plus the tzstd fallback.
pub struct PbcModel {
    patterns: Vec<Pattern>,
    fallback: Tzstd,
}

impl PbcModel {
    /// Trains a model from sample records (offline pre-training phase).
    pub fn train(samples: &[Vec<u8>], config: &PbcConfig) -> Self {
        let sample_refs: Vec<&[u8]> = samples
            .iter()
            .take(config.max_cluster_samples)
            .map(|s| s.as_slice())
            .collect();
        let clusters = cluster(&sample_refs, config.similarity_threshold);
        let mut patterns = Vec::new();
        for members in clusters {
            if members.len() < config.min_cluster_size {
                continue;
            }
            if let Some(p) = extract_pattern(&sample_refs, &members) {
                if p.literal_bytes() >= config.min_pattern_bytes {
                    patterns.push(p);
                }
            }
            if patterns.len() >= config.max_patterns {
                break;
            }
        }
        // Prefer high-coverage patterns when compressing.
        patterns.sort_by_key(|p| std::cmp::Reverse(p.literal_bytes()));

        // Residuals and fallback records still benefit from a small
        // dictionary trained on the same samples.
        let dict = crate::dict::train_dictionary(samples, 4096);
        let fallback = if dict.is_empty() {
            Tzstd::new(config.fallback_level)
        } else {
            Tzstd::with_dict(config.fallback_level, dict)
        };
        Self { patterns, fallback }
    }

    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }

    /// The trained fallback dictionary (exposed for diagnostics).
    pub fn fallback_dict(&self) -> Option<&Arc<TrainedDict>> {
        self.fallback.dictionary()
    }

    /// Serializes the trained model — pattern table in order (records
    /// reference patterns by index), fallback level, fallback
    /// dictionary — so it can be stored as a table-level dictionary
    /// payload and rebuilt by [`PbcModel::from_bytes`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_varint(&mut out, self.patterns.len() as u64);
        for p in &self.patterns {
            write_varint(&mut out, p.literals.len() as u64);
            for lit in &p.literals {
                write_varint(&mut out, lit.len() as u64);
                out.extend_from_slice(lit);
            }
        }
        out.extend_from_slice(&self.fallback.level().0.to_le_bytes());
        let dict = self
            .fallback
            .dictionary()
            .map(|d| d.as_bytes())
            .unwrap_or(&[]);
        write_varint(&mut out, dict.len() as u64);
        out.extend_from_slice(dict);
        out
    }

    /// Rebuilds a model serialized by [`PbcModel::to_bytes`]. Every
    /// malformed input is an [`Error::Corruption`], never a panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut pos = 0usize;
        let take = |bytes: &[u8], pos: &mut usize, len: usize| -> Result<Vec<u8>> {
            let end = pos
                .checked_add(len)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| Error::Corruption("PBC model truncated".into()))?;
            let out = bytes[*pos..end].to_vec();
            *pos = end;
            Ok(out)
        };
        let pattern_count = read_varint(bytes, &mut pos)? as usize;
        if pattern_count > bytes.len() {
            return Err(Error::Corruption("implausible PBC pattern count".into()));
        }
        let mut patterns = Vec::with_capacity(pattern_count);
        for _ in 0..pattern_count {
            let lit_count = read_varint(bytes, &mut pos)? as usize;
            if lit_count > bytes.len() {
                return Err(Error::Corruption("implausible PBC literal count".into()));
            }
            let mut literals = Vec::with_capacity(lit_count);
            for _ in 0..lit_count {
                let len = read_varint(bytes, &mut pos)? as usize;
                literals.push(take(bytes, &mut pos, len)?);
            }
            patterns.push(Pattern { literals });
        }
        let level = TzstdLevel(i32::from_le_bytes(
            take(bytes, &mut pos, 4)?.try_into().expect("4 bytes"),
        ));
        let dict_len = read_varint(bytes, &mut pos)? as usize;
        let dict_bytes = take(bytes, &mut pos, dict_len)?;
        if pos != bytes.len() {
            return Err(Error::Corruption("trailing garbage after PBC model".into()));
        }
        let fallback = if dict_bytes.is_empty() {
            Tzstd::new(level)
        } else {
            Tzstd::with_dict(level, Arc::new(TrainedDict::new(dict_bytes)))
        };
        Ok(Self { patterns, fallback })
    }
}

/// Agglomerative (complete-linkage) clustering over the sample indices.
fn cluster(samples: &[&[u8]], threshold: f64) -> Vec<Vec<usize>> {
    let n = samples.len();
    if n == 0 {
        return vec![];
    }
    // Pairwise similarity matrix.
    let mut sim = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let s = similarity(samples[i], samples[j]);
            sim[i * n + j] = s;
            sim[j * n + i] = s;
        }
    }
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    loop {
        // Find the closest pair of clusters under complete linkage.
        let mut best: Option<(usize, usize, f64)> = None;
        for a in 0..clusters.len() {
            for b in (a + 1)..clusters.len() {
                let mut link = f64::INFINITY;
                for &i in &clusters[a] {
                    for &j in &clusters[b] {
                        link = link.min(sim[i * n + j]);
                    }
                }
                if best.map(|(_, _, s)| link > s).unwrap_or(true) {
                    best = Some((a, b, link));
                }
            }
        }
        match best {
            Some((a, b, s)) if s >= threshold => {
                // a < b, so removing b leaves index a valid.
                let merged = clusters.swap_remove(b);
                clusters[a].extend(merged);
            }
            _ => break,
        }
    }
    clusters
}

/// Folds the token-LCS across cluster members and joins always-adjacent
/// tokens into maximal literal anchors.
fn extract_pattern(samples: &[&[u8]], members: &[usize]) -> Option<Pattern> {
    let token_seqs: Vec<Vec<&[u8]>> = members.iter().map(|&i| tokenize(samples[i])).collect();
    let mut common: Vec<&[u8]> = token_seqs[0].clone();
    for seq in token_seqs.iter().skip(1) {
        common = token_lcs(&common, seq);
    }
    if common.is_empty() {
        return None;
    }

    // adjacency[k] == true ⇔ common[k] and common[k+1] are contiguous in
    // every member record.
    let mut adjacency = vec![true; common.len().saturating_sub(1)];
    for &i in members {
        let rec = samples[i];
        // Greedy in-order byte search mirrors compress-time matching.
        let mut pos = 0usize;
        let mut ends = Vec::with_capacity(common.len());
        for tok in &common {
            match find(&rec[pos..], tok) {
                Some(off) => {
                    let start = pos + off;
                    adjacency_mark(&mut adjacency, &ends, start);
                    ends.push(start + tok.len());
                    pos = start + tok.len();
                }
                None => return None, // LCS token must occur; bail defensively
            }
        }
    }

    let mut literals = Vec::new();
    let mut cur: Vec<u8> = common[0].to_vec();
    for k in 1..common.len() {
        if adjacency[k - 1] {
            cur.extend_from_slice(common[k]);
        } else {
            literals.push(std::mem::take(&mut cur));
            cur = common[k].to_vec();
        }
    }
    literals.push(cur);
    Some(Pattern { literals })
}

fn adjacency_mark(adjacency: &mut [bool], ends: &[usize], start: usize) {
    if let Some(&prev_end) = ends.last() {
        let k = ends.len() - 1;
        if prev_end != start {
            adjacency[k] = false;
        }
    }
}

// ---------------------------------------------------------------------
// Compressor
// ---------------------------------------------------------------------

/// The PBC compressor: a trained model plus live match statistics.
pub struct Pbc {
    model: Arc<PbcModel>,
    matched: AtomicU64,
    fallback_count: AtomicU64,
}

impl Pbc {
    pub fn new(model: Arc<PbcModel>) -> Self {
        Self {
            model,
            matched: AtomicU64::new(0),
            fallback_count: AtomicU64::new(0),
        }
    }

    /// Convenience: train + build in one call.
    pub fn train(samples: &[Vec<u8>], config: &PbcConfig) -> Self {
        Self::new(Arc::new(PbcModel::train(samples, config)))
    }

    pub fn model(&self) -> &Arc<PbcModel> {
        &self.model
    }

    /// Fraction of compressed records that matched no pattern (feeds the
    /// §4.2 monitoring service's retrain trigger).
    pub fn unmatched_rate(&self) -> f64 {
        let m = self.matched.load(Ordering::Relaxed);
        let f = self.fallback_count.load(Ordering::Relaxed);
        if m + f == 0 {
            0.0
        } else {
            f as f64 / (m + f) as f64
        }
    }

    /// Resets live statistics (after retraining).
    pub fn reset_stats(&self) {
        self.matched.store(0, Ordering::Relaxed);
        self.fallback_count.store(0, Ordering::Relaxed);
    }
}

impl Compressor for Pbc {
    fn compress(&self, input: &[u8]) -> Vec<u8> {
        // Best pattern = most literal bytes covered (patterns are sorted
        // by coverage, so first full match wins).
        for (id, p) in self.model.patterns.iter().enumerate() {
            if p.literal_bytes() >= input.len() {
                continue; // cannot possibly help
            }
            if let Some(gaps) = p.match_record(input) {
                let mut header = Vec::with_capacity(gaps.len() + 4);
                write_varint(&mut header, id as u64);
                for g in &gaps {
                    write_varint(&mut header, g.len() as u64);
                }
                let blob_len: usize = gaps.iter().map(|g| g.len()).sum();
                let mut blob = Vec::with_capacity(blob_len);
                for g in &gaps {
                    blob.extend_from_slice(g);
                }
                // Residuals are compressed further when that actually
                // saves bytes; otherwise kept plain (fast GET path).
                let lz_blob = self.model.fallback.compress(&blob);
                let mut out = Vec::with_capacity(header.len() + blob.len() + 1);
                if lz_blob.len() + 4 < blob.len() {
                    out.push(TAG_PATTERN_LZ);
                    out.extend_from_slice(&header);
                    out.extend_from_slice(&lz_blob);
                } else {
                    out.push(TAG_PATTERN);
                    out.extend_from_slice(&header);
                    out.extend_from_slice(&blob);
                }
                if out.len() < input.len() {
                    self.matched.fetch_add(1, Ordering::Relaxed);
                    return out;
                }
            }
        }
        self.fallback_count.fetch_add(1, Ordering::Relaxed);
        let mut out = Vec::with_capacity(input.len() / 2 + 8);
        out.push(TAG_FALLBACK);
        out.extend_from_slice(&self.model.fallback.compress(input));
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
        let (&tag, rest) = input
            .split_first()
            .ok_or_else(|| Error::Corruption("empty PBC record".into()))?;
        match tag {
            TAG_FALLBACK => self.model.fallback.decompress(rest),
            TAG_PATTERN | TAG_PATTERN_LZ => {
                let mut pos = 0usize;
                let id = read_varint(rest, &mut pos)? as usize;
                let pattern = self
                    .model
                    .patterns
                    .get(id)
                    .ok_or_else(|| Error::Corruption(format!("unknown pattern id {id}")))?;
                let gap_count = pattern.literals.len() + 1;
                let mut lens = Vec::with_capacity(gap_count);
                for _ in 0..gap_count {
                    lens.push(read_varint(rest, &mut pos)? as usize);
                }
                let blob: Vec<u8> = if tag == TAG_PATTERN_LZ {
                    self.model.fallback.decompress(&rest[pos..])?
                } else {
                    rest[pos..].to_vec()
                };
                let expected: usize = lens.iter().sum();
                if blob.len() != expected {
                    return Err(Error::Corruption(format!(
                        "residual blob is {} bytes, gaps need {expected}",
                        blob.len()
                    )));
                }
                let mut gaps = Vec::with_capacity(gap_count);
                let mut bpos = 0usize;
                for len in lens {
                    gaps.push(blob[bpos..bpos + len].to_vec());
                    bpos += len;
                }
                Ok(pattern.reconstruct(&gaps))
            }
            other => Err(Error::Corruption(format!("bad PBC tag {other}"))),
        }
    }

    fn name(&self) -> &'static str {
        "pbc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure_ratio;
    use proptest::prelude::*;

    fn kv_samples(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                format!(
                    "TXN|v3|{:032x}|AMT:{}|CUR:CNY|CH:alipay|ST:OK|SIG:{:040x}|END",
                    (i as u64) * 0x1357_9bdf,
                    i * 31 % 10_000_000,
                    (i as u64) * 0x0246_8ace,
                )
                .into_bytes()
            })
            .collect()
    }

    #[test]
    fn tokenize_splits_class_runs() {
        let t = tokenize(b"abc123!!x");
        let vals: Vec<&[u8]> = vec![b"abc", b"123", b"!!", b"x"];
        assert_eq!(t, vals);
        assert!(tokenize(b"").is_empty());
    }

    #[test]
    fn token_lcs_finds_shared_template() {
        let a = tokenize(b"user=123;dev=ios");
        let b = tokenize(b"user=987;dev=android");
        let lcs = token_lcs(&a, &b);
        let joined: Vec<u8> = lcs.concat();
        let s = String::from_utf8(joined).unwrap();
        assert!(s.contains("user"));
        assert!(s.contains("dev"));
    }

    #[test]
    fn similarity_reflects_structure() {
        let a = b"TXN|v3|aaaa|AMT:100|END";
        let b = b"TXN|v3|bbbb|AMT:999|END";
        let c = b"completely unrelated text here";
        assert!(similarity(a, b) > 0.5);
        assert!(similarity(a, c) < 0.3);
        assert_eq!(similarity(b"", b""), 1.0);
    }

    #[test]
    fn training_discovers_patterns() {
        let samples = kv_samples(64);
        let model = PbcModel::train(&samples, &PbcConfig::default());
        assert!(model.pattern_count() >= 1, "no patterns learned");
        let p = &model.patterns[0];
        assert!(
            p.literal_bytes() >= 20,
            "template too small: {} bytes",
            p.literal_bytes()
        );
    }

    #[test]
    fn pbc_roundtrips_matching_records() {
        let samples = kv_samples(64);
        let pbc = Pbc::train(&samples, &PbcConfig::default());
        // Fresh records from the same generator (not in the train set).
        for i in 100..140 {
            let rec = &kv_samples(i + 1)[i];
            let z = pbc.compress(rec);
            assert_eq!(&pbc.decompress(&z).unwrap(), rec);
        }
    }

    #[test]
    fn pbc_beats_plain_lz_on_templated_records() {
        let samples = kv_samples(64);
        let test = kv_samples(200)[100..].to_vec();
        let pbc = Pbc::train(&samples, &PbcConfig::default());
        let lz = Tzstd::new(TzstdLevel(1));
        let r_pbc = measure_ratio(&pbc, &test);
        let r_lz = measure_ratio(&lz, &test);
        assert!(
            r_pbc < r_lz,
            "PBC {r_pbc:.3} should beat plain LZ {r_lz:.3} on templated data"
        );
        assert!(
            pbc.unmatched_rate() < 0.2,
            "unmatched {}",
            pbc.unmatched_rate()
        );
    }

    #[test]
    fn unmatched_records_fall_back() {
        let samples = kv_samples(32);
        let pbc = Pbc::train(&samples, &PbcConfig::default());
        let alien = b"<<<completely different record shape 0x00>>>".to_vec();
        let z = pbc.compress(&alien);
        assert_eq!(pbc.decompress(&z).unwrap(), alien);
        assert!(pbc.unmatched_rate() > 0.0);
    }

    #[test]
    fn empty_and_tiny_records() {
        let pbc = Pbc::train(&kv_samples(16), &PbcConfig::default());
        for rec in [&b""[..], b"x", b"ab"] {
            let z = pbc.compress(rec);
            assert_eq!(pbc.decompress(&z).unwrap(), rec);
        }
    }

    #[test]
    fn corrupted_pbc_is_error_not_panic() {
        let pbc = Pbc::train(&kv_samples(32), &PbcConfig::default());
        let z = pbc.compress(&kv_samples(40)[35]);
        for i in 0..z.len().min(32) {
            let mut bad = z.clone();
            bad[i] = bad[i].wrapping_add(17);
            let _ = pbc.decompress(&bad); // must not panic
        }
        assert!(pbc.decompress(&[]).is_err());
        assert!(pbc.decompress(&[9, 9, 9]).is_err());
    }

    #[test]
    fn pattern_reconstruct_inverts_match() {
        let p = Pattern {
            literals: vec![b"AB".to_vec(), b"CD".to_vec()],
        };
        let rec = b"xxAByyCDzz";
        let gaps = p.match_record(rec).unwrap();
        let owned: Vec<Vec<u8>> = gaps.iter().map(|g| g.to_vec()).collect();
        assert_eq!(p.reconstruct(&owned), rec);
    }

    #[test]
    fn model_serialization_roundtrips() {
        let samples = kv_samples(64);
        let model = PbcModel::train(&samples, &PbcConfig::default());
        let bytes = model.to_bytes();
        let back = PbcModel::from_bytes(&bytes).unwrap();
        assert_eq!(back.patterns, model.patterns, "pattern order must survive");
        assert_eq!(back.fallback.level(), model.fallback.level());
        assert_eq!(
            back.fallback_dict().map(|d| d.as_bytes().to_vec()),
            model.fallback_dict().map(|d| d.as_bytes().to_vec())
        );
        // Records compressed by the original decode under the revived
        // model (pattern ids reference positions).
        let pbc = Pbc::new(Arc::new(model));
        let revived = Pbc::new(Arc::new(back));
        for rec in kv_samples(120).iter().skip(100) {
            let z = pbc.compress(rec);
            assert_eq!(&revived.decompress(&z).unwrap(), rec);
        }
    }

    #[test]
    fn malformed_model_bytes_are_errors_not_panics() {
        let model = PbcModel::train(&kv_samples(32), &PbcConfig::default());
        let bytes = model.to_bytes();
        assert!(PbcModel::from_bytes(&[]).is_err());
        assert!(PbcModel::from_bytes(&[0xff; 3]).is_err());
        for cut in 0..bytes.len().min(64) {
            let _ = PbcModel::from_bytes(&bytes[..cut]); // must not panic
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(PbcModel::from_bytes(&trailing).is_err());
    }

    #[test]
    fn reset_stats_clears_counters() {
        let pbc = Pbc::train(&kv_samples(16), &PbcConfig::default());
        pbc.compress(b"no match here at all \x01\x02");
        assert!(pbc.unmatched_rate() > 0.0);
        pbc.reset_stats();
        assert_eq!(pbc.unmatched_rate(), 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_pbc_roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..600)) {
            let pbc = Pbc::train(&kv_samples(24), &PbcConfig::default());
            let z = pbc.compress(&data);
            prop_assert_eq!(pbc.decompress(&z).unwrap(), data);
        }

        #[test]
        fn prop_pbc_roundtrip_templated(ids in proptest::collection::vec(0u64..1_000_000, 1..20)) {
            let pbc = Pbc::train(&kv_samples(48), &PbcConfig::default());
            for id in ids {
                let rec = format!(
                    "TXN|v3|{id:032x}|AMT:{}|CUR:CNY|CH:alipay|ST:OK|SIG:{:040x}|END",
                    id % 7_777_777, id
                ).into_bytes();
                let z = pbc.compress(&rec);
                prop_assert_eq!(pbc.decompress(&z).unwrap(), rec);
            }
        }
    }
}
