//! Per-block compressed frames for the SSTable data path.
//!
//! Every on-disk data block is wrapped in a versioned frame:
//!
//! ```text
//! frame := codec_tag u8 | uncompressed_len u32 LE | crc32(payload) u32 LE | payload
//! ```
//!
//! The codec is chosen per table ([`BlockCodec`]) and its trained state
//! (tzstd dictionary, PBC pattern table) is serialized into a
//! table-level *dictionary payload* stored next to the data blocks, so
//! a table is self-describing: reopening it needs only the footer's
//! codec byte and the dictionary payload, never the training samples.
//!
//! Per-block stored fallback: when compression does not shrink a block
//! (or the codec is [`BlockCodec::None`]) the frame carries the raw
//! bytes under [`FRAME_TAG_STORED`] — still CRC-checked, so every block
//! read is checksummed regardless of codec.

use crate::dict::train_dictionary;
use crate::lz::TrainedDict;
use crate::pbc::{Pbc, PbcConfig, PbcModel};
use crate::{Compressor, Tzstd, TzstdLevel};
use std::sync::Arc;
use tb_common::{crc32, Error, Result};

/// `codec_tag u8 | uncompressed_len u32 | crc32 u32`.
pub const FRAME_HEADER_LEN: usize = 1 + 4 + 4;

/// Frame tag for an uncompressed (stored) payload — shared by every
/// codec as the didn't-shrink fallback, and the only tag
/// [`BlockCodec::None`] emits.
pub const FRAME_TAG_STORED: u8 = 0;

/// Writer-side cap on dictionary training samples collected from a
/// flush/compaction input stream (first N put values, deterministic).
pub const MAX_TRAIN_SAMPLES: usize = 512;

/// Byte budget for a trained tzstd dictionary stored per table.
pub const MAX_DICT_BYTES: usize = 4096;

/// Per-table block codec, chosen from `LsmConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockCodec {
    /// Stored frames only (still CRC-checked).
    #[default]
    None,
    /// tzstd without a dictionary.
    Lz,
    /// Pattern-based compression; the trained model is the table's
    /// dictionary payload.
    Pbc,
    /// tzstd with a dictionary trained on the table's input values.
    Dict,
}

impl BlockCodec {
    pub const ALL: [BlockCodec; 4] = [
        BlockCodec::None,
        BlockCodec::Lz,
        BlockCodec::Pbc,
        BlockCodec::Dict,
    ];

    /// The frame tag this codec stamps on compressed frames (and the
    /// footer's codec byte). [`FRAME_TAG_STORED`] is deliberately the
    /// same value as `None`'s tag: a `None` table only emits stored
    /// frames.
    pub fn tag(self) -> u8 {
        match self {
            BlockCodec::None => 0,
            BlockCodec::Lz => 1,
            BlockCodec::Pbc => 2,
            BlockCodec::Dict => 3,
        }
    }

    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(BlockCodec::None),
            1 => Some(BlockCodec::Lz),
            2 => Some(BlockCodec::Pbc),
            3 => Some(BlockCodec::Dict),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            BlockCodec::None => "none",
            BlockCodec::Lz => "lz",
            BlockCodec::Pbc => "pbc",
            BlockCodec::Dict => "dict",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(BlockCodec::None),
            "lz" => Some(BlockCodec::Lz),
            "pbc" => Some(BlockCodec::Pbc),
            "dict" => Some(BlockCodec::Dict),
            _ => None,
        }
    }
}

/// A table's codec plus its trained state: built by the writer from
/// sampled input values ([`BlockCodecState::train`]) or rebuilt by a
/// reader from the stored dictionary payload
/// ([`BlockCodecState::from_dict_payload`]).
pub struct BlockCodecState {
    codec: BlockCodec,
    compressor: Option<Box<dyn Compressor>>,
    dict_payload: Vec<u8>,
}

impl Default for BlockCodecState {
    fn default() -> Self {
        Self {
            codec: BlockCodec::None,
            compressor: None,
            dict_payload: Vec::new(),
        }
    }
}

impl BlockCodecState {
    /// Trains the codec from sampled input values (flush/compaction
    /// collects the first [`MAX_TRAIN_SAMPLES`] put values, so training
    /// is deterministic for a fixed input stream).
    pub fn train(codec: BlockCodec, samples: &[Vec<u8>]) -> Self {
        match codec {
            BlockCodec::None => Self::default(),
            BlockCodec::Lz => Self {
                codec,
                compressor: Some(Box::new(Tzstd::new(TzstdLevel(1)))),
                dict_payload: Vec::new(),
            },
            BlockCodec::Dict => {
                let dict = train_dictionary(samples, MAX_DICT_BYTES);
                let (compressor, dict_payload): (Box<dyn Compressor>, Vec<u8>) = if dict.is_empty()
                {
                    (Box::new(Tzstd::new(TzstdLevel(1))), Vec::new())
                } else {
                    let payload = dict.as_bytes().to_vec();
                    (Box::new(Tzstd::with_dict(TzstdLevel(1), dict)), payload)
                };
                Self {
                    codec,
                    compressor: Some(compressor),
                    dict_payload,
                }
            }
            BlockCodec::Pbc => {
                let model = PbcModel::train(samples, &PbcConfig::default());
                let dict_payload = model.to_bytes();
                Self {
                    codec,
                    compressor: Some(Box::new(Pbc::new(Arc::new(model)))),
                    dict_payload,
                }
            }
        }
    }

    /// Rebuilds the state from a table's stored dictionary payload.
    pub fn from_dict_payload(codec: BlockCodec, payload: &[u8]) -> Result<Self> {
        match codec {
            BlockCodec::None => Ok(Self::default()),
            BlockCodec::Lz => Ok(Self {
                codec,
                compressor: Some(Box::new(Tzstd::new(TzstdLevel(1)))),
                dict_payload: Vec::new(),
            }),
            BlockCodec::Dict => {
                let compressor: Box<dyn Compressor> = if payload.is_empty() {
                    Box::new(Tzstd::new(TzstdLevel(1)))
                } else {
                    Box::new(Tzstd::with_dict(
                        TzstdLevel(1),
                        Arc::new(TrainedDict::new(payload.to_vec())),
                    ))
                };
                Ok(Self {
                    codec,
                    compressor: Some(compressor),
                    dict_payload: payload.to_vec(),
                })
            }
            BlockCodec::Pbc => {
                let model = PbcModel::from_bytes(payload)?;
                Ok(Self {
                    codec,
                    compressor: Some(Box::new(Pbc::new(Arc::new(model)))),
                    dict_payload: payload.to_vec(),
                })
            }
        }
    }

    pub fn codec(&self) -> BlockCodec {
        self.codec
    }

    /// The serialized trained state the writer must store per table.
    pub fn dict_payload(&self) -> &[u8] {
        &self.dict_payload
    }

    /// Appends one frame for `block` to `out`. Compresses when the
    /// codec wins; falls back to a stored frame otherwise (so output
    /// frames never exceed `block.len() + FRAME_HEADER_LEN`, modulo the
    /// codec's own stored mode). Returns `true` when the frame carries
    /// a compressed payload.
    pub fn encode_frame(&self, block: &[u8], out: &mut Vec<u8>) -> bool {
        if let Some(c) = &self.compressor {
            let z = c.compress(block);
            if z.len() < block.len() {
                push_frame(out, self.codec.tag(), block.len(), &z);
                return true;
            }
        }
        push_frame(out, FRAME_TAG_STORED, block.len(), block);
        false
    }

    /// Decodes and verifies one frame, returning the uncompressed block
    /// bytes. Every failure — truncated header, CRC mismatch, foreign
    /// codec tag, garbage payload, length mismatch — is
    /// [`Error::Corruption`], so a bad block surfaces as a per-slot
    /// corruption error and never a torn batch.
    pub fn decode_frame(&self, frame: &[u8]) -> Result<Vec<u8>> {
        if frame.len() < FRAME_HEADER_LEN {
            return Err(Error::Corruption("sstable block frame truncated".into()));
        }
        let tag = frame[0];
        let ulen = u32::from_le_bytes(frame[1..5].try_into().unwrap()) as usize;
        let stored_crc = u32::from_le_bytes(frame[5..9].try_into().unwrap());
        let payload = &frame[FRAME_HEADER_LEN..];
        if crc32(payload) != stored_crc {
            return Err(Error::Corruption("sstable block frame crc mismatch".into()));
        }
        if tag == FRAME_TAG_STORED {
            if payload.len() != ulen {
                return Err(Error::Corruption(
                    "stored block frame length mismatch".into(),
                ));
            }
            return Ok(payload.to_vec());
        }
        match &self.compressor {
            Some(c) if tag == self.codec.tag() => {
                let raw = c
                    .decompress(payload)
                    .map_err(|e| Error::Corruption(format!("block frame payload: {e}")))?;
                if raw.len() != ulen {
                    return Err(Error::Corruption(format!(
                        "block frame decompressed to {} bytes, header says {ulen}",
                        raw.len()
                    )));
                }
                Ok(raw)
            }
            _ => Err(Error::Corruption(format!(
                "block frame codec tag {tag} does not match table codec {}",
                self.codec.name()
            ))),
        }
    }
}

fn push_frame(out: &mut Vec<u8>, tag: u8, uncompressed_len: usize, payload: &[u8]) {
    out.push(tag);
    out.extend_from_slice(&(uncompressed_len as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(state: &BlockCodecState, block: &[u8]) {
        let mut out = Vec::new();
        state.encode_frame(block, &mut out);
        assert!(out.len() >= FRAME_HEADER_LEN);
        assert_eq!(state.decode_frame(&out).unwrap(), block);
    }

    /// Samples shaped like flush input: templated values the dict and
    /// PBC codecs can learn from.
    fn value_samples(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                format!(
                    "city\t{i:06}\tSpringfield-{}\tpop={}\tcountry=XX\tzone=UTC+8",
                    i % 50,
                    i * 731
                )
                .into_bytes()
            })
            .collect()
    }

    /// A block-shaped corpus: length-prefixed key/value entries with
    /// shared-prefix keys and templated values, like the SSTable data
    /// block encoding produces.
    fn templated_block(entries: usize, seed: u64) -> Vec<u8> {
        let mut block = Vec::new();
        for i in 0..entries {
            let key = format!("user{:012}", seed + i as u64);
            let val = format!("record|{seed}|idx={i}|status=ok|padding=xxxxxxxxxxxxxxxx");
            block.push(0u8);
            block.extend_from_slice(&[key.len() as u8, val.len() as u8]);
            block.extend_from_slice(key.as_bytes());
            block.extend_from_slice(val.as_bytes());
        }
        block
    }

    fn all_states() -> Vec<BlockCodecState> {
        let samples = value_samples(64);
        BlockCodec::ALL
            .iter()
            .map(|&c| BlockCodecState::train(c, &samples))
            .collect()
    }

    #[test]
    fn tags_and_names_roundtrip() {
        for codec in BlockCodec::ALL {
            assert_eq!(BlockCodec::from_tag(codec.tag()), Some(codec));
            assert_eq!(BlockCodec::parse(codec.name()), Some(codec));
        }
        assert_eq!(BlockCodec::from_tag(9), None);
        assert_eq!(BlockCodec::parse("zstd"), None);
    }

    #[test]
    fn empty_block_roundtrips_every_codec() {
        for state in all_states() {
            roundtrip(&state, b"");
        }
    }

    #[test]
    fn compressible_block_shrinks_under_lz() {
        let state = BlockCodecState::train(BlockCodec::Lz, &[]);
        let block = templated_block(40, 7);
        let mut out = Vec::new();
        let compressed = state.encode_frame(&block, &mut out);
        assert!(compressed, "templated block should compress");
        assert!(out.len() < block.len() + FRAME_HEADER_LEN);
        assert_eq!(state.decode_frame(&out).unwrap(), block);
    }

    #[test]
    fn incompressible_block_stores_raw() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let block: Vec<u8> = (0..2048).map(|_| rng.gen()).collect();
        for state in all_states() {
            let mut out = Vec::new();
            let compressed = state.encode_frame(&block, &mut out);
            if state.codec() != BlockCodec::None {
                assert!(!compressed, "random bytes must not 'compress'");
            }
            assert_eq!(out[0], FRAME_TAG_STORED);
            assert_eq!(out.len(), block.len() + FRAME_HEADER_LEN);
            assert_eq!(state.decode_frame(&out).unwrap(), block);
        }
    }

    #[test]
    fn reader_state_rebuilt_from_dict_payload_decodes_writer_frames() {
        let samples = value_samples(128);
        let block = templated_block(60, 42);
        for codec in BlockCodec::ALL {
            let writer = BlockCodecState::train(codec, &samples);
            let mut frame = Vec::new();
            writer.encode_frame(&block, &mut frame);
            let reader = BlockCodecState::from_dict_payload(codec, writer.dict_payload()).unwrap();
            assert_eq!(
                reader.decode_frame(&frame).unwrap(),
                block,
                "codec {} frames must decode from stored state alone",
                codec.name()
            );
        }
    }

    #[test]
    fn dict_training_is_deterministic_for_fixed_input() {
        let samples = value_samples(256);
        for codec in [BlockCodec::Dict, BlockCodec::Pbc] {
            let a = BlockCodecState::train(codec, &samples);
            let b = BlockCodecState::train(codec, &samples);
            assert_eq!(
                a.dict_payload(),
                b.dict_payload(),
                "{} training must be deterministic",
                codec.name()
            );
            let block = templated_block(30, 9);
            let (mut fa, mut fb) = (Vec::new(), Vec::new());
            a.encode_frame(&block, &mut fa);
            b.encode_frame(&block, &mut fb);
            assert_eq!(fa, fb, "{} frames must be deterministic", codec.name());
        }
    }

    #[test]
    fn corrupted_frames_are_corruption_errors_never_panics() {
        let block = templated_block(40, 11);
        for state in all_states() {
            let mut frame = Vec::new();
            state.encode_frame(&block, &mut frame);
            // Truncations, including below the header.
            for cut in [0, 1, 4, FRAME_HEADER_LEN - 1, frame.len() - 1] {
                assert!(
                    matches!(state.decode_frame(&frame[..cut]), Err(Error::Corruption(_))),
                    "truncation to {cut} must be Corruption ({})",
                    state.codec().name()
                );
            }
            // Any single flipped byte: either caught (Corruption) — a
            // header/CRC flip always is — or it decodes to the original.
            for i in 0..frame.len() {
                let mut bad = frame.clone();
                bad[i] ^= 0xff;
                match state.decode_frame(&bad) {
                    Err(Error::Corruption(_)) => {}
                    Err(e) => panic!("non-corruption error {e} ({})", state.codec().name()),
                    Ok(got) => assert_eq!(got, block),
                }
                if (5..9).contains(&i) {
                    assert!(
                        state.decode_frame(&bad).is_err(),
                        "CRC byte flip must always be caught"
                    );
                }
            }
        }
    }

    #[test]
    fn foreign_codec_tag_rejected() {
        let lz = BlockCodecState::train(BlockCodec::Lz, &[]);
        let none = BlockCodecState::default();
        let mut frame = Vec::new();
        lz.encode_frame(&templated_block(40, 2), &mut frame);
        assert_eq!(frame[0], BlockCodec::Lz.tag());
        // A None table handed an Lz frame must refuse, not misparse.
        assert!(matches!(
            none.decode_frame(&frame),
            Err(Error::Corruption(_))
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Shared-prefix keys: `prefix:NNNN` entries, the common SSTable
        /// key shape.
        #[test]
        fn prop_roundtrip_shared_prefix_blocks(
            n in 0usize..120,
            prefix in "[a-z]{1,12}",
        ) {
            let mut block = Vec::new();
            for i in 0..n {
                block.extend_from_slice(format!("{prefix}:{i:08}=v{i};").as_bytes());
            }
            for state in all_states() {
                roundtrip(&state, &block);
            }
        }

        /// Runs of identical values (tombstone runs, constant columns).
        #[test]
        fn prop_roundtrip_identical_value_runs(
            byte in any::<u8>(),
            run in 0usize..4096,
        ) {
            let block = vec![byte; run];
            for state in all_states() {
                roundtrip(&state, &block);
            }
        }

        /// Incompressible random bytes, up to max block size.
        #[test]
        fn prop_roundtrip_random_blocks(
            block in proptest::collection::vec(any::<u8>(), 0..4096),
        ) {
            for state in all_states() {
                roundtrip(&state, &block);
            }
        }

        /// Max-size blocks (a full block_size worth of mixed content).
        #[test]
        fn prop_roundtrip_max_size_blocks(seed in any::<u64>()) {
            let mut block = templated_block(80, seed);
            block.truncate(4096);
            while block.len() < 4096 {
                block.push((seed as u8).wrapping_add(block.len() as u8));
            }
            for state in all_states() {
                roundtrip(&state, &block);
            }
        }
    }
}
