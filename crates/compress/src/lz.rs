//! `tzstd`: an LZ77 hash-chain compressor with levels and dictionaries.
//!
//! Stand-in for Zstandard (see the crate docs for the substitution
//! rationale). The wire format is a token stream:
//!
//! ```text
//! record := ( literal_run match )* literal_run end
//! literal_run := varint(len) byte*
//! match := varint(len - MIN_MATCH + 1)  varint(distance)   // len >= MIN_MATCH
//! end := varint(0)
//! ```
//!
//! A trained dictionary acts as virtual history preceding the input:
//! match distances may reach past the start of the record into the
//! dictionary, which is what makes small templated records compress well.
//! The dictionary is indexed once at construction, so per-record
//! compression does no dictionary-sized work.

use crate::Compressor;
use std::collections::HashMap;
use std::sync::Arc;
use tb_common::{Error, Result};

/// Minimum match length worth encoding.
const MIN_MATCH: usize = 4;
/// Maximum match length (keeps varints short; matches may be split).
const MAX_MATCH: usize = 1 << 16;
/// Max candidate positions stored per 4-gram in the dictionary index.
const DICT_POSTINGS_CAP: usize = 16;

/// Compression level, mirroring zstd's level semantics: negative levels
/// trade ratio for speed, higher positive levels search harder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TzstdLevel(pub i32);

impl Default for TzstdLevel {
    fn default() -> Self {
        TzstdLevel(1)
    }
}

#[derive(Debug, Clone, Copy)]
struct LevelParams {
    /// Max hash-chain candidates examined per position.
    chain_len: usize,
    /// Max dictionary candidates examined per position.
    dict_probe: usize,
    /// Greedy-vs-lazy parsing: lazy re-checks the next position before
    /// committing to a match.
    lazy: bool,
    /// Acceleration: after this many consecutive literal misses, start
    /// skipping positions (fast negative levels).
    skip_trigger: u32,
}

impl TzstdLevel {
    fn params(self) -> LevelParams {
        match self.0 {
            i32::MIN..=-21 => LevelParams {
                chain_len: 1,
                dict_probe: 1,
                lazy: false,
                skip_trigger: 4,
            },
            -20..=-1 => LevelParams {
                chain_len: 2,
                dict_probe: 2,
                lazy: false,
                skip_trigger: 6,
            },
            0..=3 => LevelParams {
                chain_len: 8,
                dict_probe: 4,
                lazy: false,
                skip_trigger: u32::MAX,
            },
            4..=12 => LevelParams {
                chain_len: 32,
                dict_probe: 8,
                lazy: true,
                skip_trigger: u32::MAX,
            },
            13..=18 => LevelParams {
                chain_len: 64,
                dict_probe: 12,
                lazy: true,
                skip_trigger: u32::MAX,
            },
            _ => LevelParams {
                chain_len: 256,
                dict_probe: 16,
                lazy: true,
                skip_trigger: u32::MAX,
            },
        }
    }
}

/// Pre-indexed dictionary shared across compressor instances.
pub struct TrainedDict {
    bytes: Vec<u8>,
    /// 4-gram hash → positions in `bytes` (most recent first, capped).
    index: HashMap<u32, Vec<u32>>,
}

impl TrainedDict {
    pub fn new(bytes: Vec<u8>) -> Self {
        let mut index: HashMap<u32, Vec<u32>> = HashMap::new();
        if bytes.len() >= MIN_MATCH {
            for i in 0..=(bytes.len() - MIN_MATCH) {
                let h = gram_hash(&bytes[i..i + 4]);
                let posts = index.entry(h).or_default();
                if posts.len() < DICT_POSTINGS_CAP {
                    posts.push(i as u32);
                }
            }
        }
        Self { bytes, index }
    }

    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

#[inline]
fn gram_hash(b: &[u8]) -> u32 {
    let w = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    w.wrapping_mul(0x9e37_79b1)
}

/// The tzstd compressor: a level plus an optional trained dictionary.
pub struct Tzstd {
    level: TzstdLevel,
    dict: Option<Arc<TrainedDict>>,
}

impl Tzstd {
    /// Dictionary-less compressor (the paper's "Zstd-b").
    pub fn new(level: TzstdLevel) -> Self {
        Self { level, dict: None }
    }

    /// Dictionary-trained compressor (the paper's "Zstd-d").
    pub fn with_dict(level: TzstdLevel, dict: Arc<TrainedDict>) -> Self {
        Self {
            level,
            dict: Some(dict),
        }
    }

    pub fn level(&self) -> TzstdLevel {
        self.level
    }

    pub fn dictionary(&self) -> Option<&Arc<TrainedDict>> {
        self.dict.as_ref()
    }

    /// Longest match for `input[i..]` among dictionary candidates.
    /// Returns `(length, distance)` in combined-history coordinates.
    fn best_dict_match(&self, input: &[u8], i: usize, probe: usize) -> Option<(usize, usize)> {
        let dict = self.dict.as_ref()?;
        if input.len() - i < MIN_MATCH {
            return None;
        }
        let h = gram_hash(&input[i..i + 4]);
        let posts = dict.index.get(&h)?;
        let dbytes = &dict.bytes;
        let dlen = dbytes.len();
        let mut best: Option<(usize, usize)> = None;
        for &dj in posts.iter().take(probe) {
            let dj = dj as usize;
            // Match may run off the end of the dictionary and continue at
            // the start of the input (history is dict ++ input).
            let mut l = 0usize;
            while i + l < input.len() && l < MAX_MATCH {
                let src = dj + l;
                let b = if src < dlen {
                    dbytes[src]
                } else {
                    let k = src - dlen;
                    if k >= i {
                        break; // would read unproduced output
                    }
                    input[k]
                };
                if b != input[i + l] {
                    break;
                }
                l += 1;
            }
            if l >= MIN_MATCH && best.map(|(bl, _)| l > bl).unwrap_or(true) {
                let dist = (i + dlen) - dj;
                best = Some((l, dist));
            }
        }
        best
    }
}

impl Tzstd {
    /// Raw LZ token stream (no framing, no entropy stage).
    fn lz_compress(&self, input: &[u8]) -> Vec<u8> {
        let p = self.level.params();
        let n = input.len();
        let mut out = Vec::with_capacity(n / 2 + 16);

        // Local hash chains over the input itself.
        let table_bits = usize::BITS - n.next_power_of_two().leading_zeros();
        let table_size = (1usize << table_bits.clamp(8, 16)).max(256);
        let mask = (table_size - 1) as u32;
        let mut head = vec![u32::MAX; table_size];
        let mut prev = vec![u32::MAX; n];

        let mut lit_start = 0usize;
        let mut i = 0usize;
        let mut misses = 0u32;

        let find_best = |head: &[u32], prev: &[u32], i: usize| -> Option<(usize, usize)> {
            if n - i < MIN_MATCH {
                return None;
            }
            let h = (gram_hash(&input[i..i + 4]) & mask) as usize;
            let mut cand = head[h];
            let mut best: Option<(usize, usize)> = None;
            let mut steps = 0usize;
            while cand != u32::MAX && steps < p.chain_len {
                let j = cand as usize;
                debug_assert!(j < i);
                let mut l = 0usize;
                while i + l < n && l < MAX_MATCH && input[j + l] == input[i + l] {
                    l += 1;
                }
                if l >= MIN_MATCH && best.map(|(bl, _)| l > bl).unwrap_or(true) {
                    best = Some((l, i - j));
                }
                cand = prev[j];
                steps += 1;
            }
            // Dictionary candidates compete with in-record candidates.
            if let Some((dl, dd)) = self.best_dict_match(input, i, p.dict_probe) {
                if best.map(|(bl, _)| dl > bl).unwrap_or(true) {
                    best = Some((dl, dd));
                }
            }
            best
        };

        let insert = |head: &mut [u32], prev: &mut [u32], pos: usize| {
            if n - pos >= MIN_MATCH {
                let h = (gram_hash(&input[pos..pos + 4]) & mask) as usize;
                prev[pos] = head[h];
                head[h] = pos as u32;
            }
        };

        while i < n {
            let m = find_best(&head, &prev, i);
            match m {
                Some((len0, dist0)) => {
                    insert(&mut head, &mut prev, i);
                    let (mut len, mut dist) = (len0, dist0);
                    if p.lazy && i + 1 < n {
                        // Peek one position ahead; prefer a strictly
                        // longer match (one literal byte is the price).
                        if let Some((l1, d1)) = find_best(&head, &prev, i + 1) {
                            if l1 > len + 1 {
                                i += 1;
                                insert(&mut head, &mut prev, i);
                                len = l1;
                                dist = d1;
                            }
                        }
                    }
                    // Flush pending literals, then the match.
                    write_varint(&mut out, (i - lit_start) as u64);
                    out.extend_from_slice(&input[lit_start..i]);
                    write_varint(&mut out, (len - MIN_MATCH + 1) as u64);
                    write_varint(&mut out, dist as u64);
                    // Index the covered positions (sparsely for speed).
                    let stride = if len > 64 { 8 } else { 1 };
                    let mut pos = i + 1;
                    while pos < i + len && pos < n {
                        if (pos - i).is_multiple_of(stride) {
                            insert(&mut head, &mut prev, pos);
                        }
                        pos += 1;
                    }
                    i += len;
                    lit_start = i;
                    misses = 0;
                }
                None => {
                    insert(&mut head, &mut prev, i);
                    misses += 1;
                    // Acceleration for fast levels: skip ahead on repeated misses.
                    let step = if misses > p.skip_trigger {
                        1 + ((misses - p.skip_trigger) / 4) as usize
                    } else {
                        1
                    };
                    i += step;
                }
            }
        }
        // Trailing literals + end marker.
        write_varint(&mut out, (n - lit_start) as u64);
        out.extend_from_slice(&input[lit_start..n]);
        write_varint(&mut out, 0);
        out
    }

    /// Decodes a raw LZ token stream.
    fn lz_decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
        let dict_bytes: &[u8] = self
            .dict
            .as_ref()
            .map(|d| d.bytes.as_slice())
            .unwrap_or(&[]);
        let dlen = dict_bytes.len();
        let mut out: Vec<u8> = Vec::with_capacity(input.len() * 3);
        let mut pos = 0usize;
        loop {
            let lit_len = read_varint(input, &mut pos)? as usize;
            if pos + lit_len > input.len() {
                return Err(Error::Corruption("literal run overflows buffer".into()));
            }
            out.extend_from_slice(&input[pos..pos + lit_len]);
            pos += lit_len;
            if pos >= input.len() {
                // Stream must end with the 0 end-marker; tolerate exactly-consumed
                // buffers only when the marker was the last byte read.
                return Err(Error::Corruption("missing end marker".into()));
            }
            let len_code = read_varint(input, &mut pos)? as usize;
            if len_code == 0 {
                if pos != input.len() {
                    return Err(Error::Corruption(
                        "trailing garbage after end marker".into(),
                    ));
                }
                return Ok(out);
            }
            let mlen = len_code + MIN_MATCH - 1;
            let dist = read_varint(input, &mut pos)? as usize;
            if dist == 0 || dist > out.len() + dlen {
                return Err(Error::Corruption(format!(
                    "bad match distance {dist} at output {}",
                    out.len()
                )));
            }
            if dist <= out.len() {
                // Entirely within produced output (may overlap itself).
                let start = out.len() - dist;
                for k in 0..mlen {
                    let b = out[start + k];
                    out.push(b);
                }
            } else {
                // Starts in the dictionary; may cross into produced output.
                // Copy from the combined history (dict ++ out), whose window
                // grows as bytes are appended — overlap is fine.
                let start = dlen + out.len() - dist;
                for k in 0..mlen {
                    let src = start + k;
                    let b = if src < dlen {
                        dict_bytes[src]
                    } else {
                        out[src - dlen]
                    };
                    out.push(b);
                }
            }
        }
    }
}

/// Frame modes: how the payload after the mode byte is encoded.
const MODE_STORED: u8 = 0;
const MODE_LZ: u8 = 1;
const MODE_LZ_RC: u8 = 2;

impl Compressor for Tzstd {
    /// Framed pipeline: LZ parse, then the adaptive range coder when it
    /// pays, with a stored fallback so output never exceeds input + 1.
    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let lz = self.lz_compress(input);
        let rc = crate::rangecoder::rc_encode(&lz);
        let mut rc_framed_len = 1 + rc.len();
        let mut lz_len_varint = Vec::new();
        write_varint(&mut lz_len_varint, lz.len() as u64);
        rc_framed_len += lz_len_varint.len();

        if rc_framed_len < lz.len() + 1 && rc_framed_len < input.len() + 1 {
            let mut out = Vec::with_capacity(rc_framed_len);
            out.push(MODE_LZ_RC);
            out.extend_from_slice(&lz_len_varint);
            out.extend_from_slice(&rc);
            out
        } else if lz.len() < input.len() {
            let mut out = Vec::with_capacity(lz.len() + 1);
            out.push(MODE_LZ);
            out.extend_from_slice(&lz);
            out
        } else {
            let mut out = Vec::with_capacity(input.len() + 1);
            out.push(MODE_STORED);
            out.extend_from_slice(input);
            out
        }
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
        let (&mode, rest) = input
            .split_first()
            .ok_or_else(|| Error::Corruption("empty tzstd frame".into()))?;
        match mode {
            MODE_STORED => Ok(rest.to_vec()),
            MODE_LZ => self.lz_decompress(rest),
            MODE_LZ_RC => {
                let mut pos = 0usize;
                let lz_len = read_varint(rest, &mut pos)? as usize;
                if lz_len > rest.len().saturating_mul(512) + (1 << 20) {
                    return Err(Error::Corruption("implausible LZ length".into()));
                }
                let lz = crate::rangecoder::rc_decode(&rest[pos..], lz_len)?;
                self.lz_decompress(&lz)
            }
            other => Err(Error::Corruption(format!("bad tzstd frame mode {other}"))),
        }
    }

    fn name(&self) -> &'static str {
        if self.dict.is_some() {
            "tzstd-d"
        } else {
            "tzstd"
        }
    }
}

/// LEB128 varint encode.
pub(crate) fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// LEB128 varint decode.
pub(crate) fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf
            .get(*pos)
            .ok_or_else(|| Error::Corruption("varint truncated".into()))?;
        *pos += 1;
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(Error::Corruption("varint too long".into()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(c: &Tzstd, data: &[u8]) {
        let z = c.compress(data);
        let back = c.decompress(&z).expect("decompress");
        assert_eq!(back, data, "roundtrip failed for {} bytes", data.len());
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            let mut buf = vec![];
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn empty_input() {
        roundtrip(&Tzstd::new(TzstdLevel(1)), b"");
    }

    #[test]
    fn short_input() {
        roundtrip(&Tzstd::new(TzstdLevel(1)), b"abc");
    }

    #[test]
    fn repetitive_input_compresses() {
        let c = Tzstd::new(TzstdLevel(1));
        let data = b"abcabcabcabcabcabcabcabcabcabcabcabc".to_vec();
        let z = c.compress(&data);
        assert!(z.len() < data.len(), "{} !< {}", z.len(), data.len());
        roundtrip(&c, &data);
    }

    #[test]
    fn overlapping_match_roundtrips() {
        // "aaaa..." forces dist=1, len>dist overlapping copies.
        let c = Tzstd::new(TzstdLevel(1));
        roundtrip(&c, &vec![b'a'; 1000]);
    }

    #[test]
    fn incompressible_input_roundtrips() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let data: Vec<u8> = (0..10_000).map(|_| rng.gen()).collect();
        for lvl in [-50, -10, 1, 15, 22] {
            roundtrip(&Tzstd::new(TzstdLevel(lvl)), &data);
        }
    }

    #[test]
    fn higher_level_not_worse_on_text() {
        let text: Vec<u8> = std::iter::repeat_n(
            &b"the quick brown fox jumps over the lazy dog and then the dog chases the fox "[..],
            50,
        )
        .flatten()
        .copied()
        .collect();
        let fast = Tzstd::new(TzstdLevel(-10)).compress(&text).len();
        let slow = Tzstd::new(TzstdLevel(22)).compress(&text).len();
        // The adaptive entropy stage adds a little noise; allow it,
        // but a higher level must never be much worse.
        assert!(
            slow <= fast + fast / 10 + 4,
            "level 22 ({slow}) much worse than -10 ({fast})"
        );
    }

    #[test]
    fn dictionary_improves_small_records() {
        let dict = Arc::new(TrainedDict::new(
            b"{\"uid\":\"0000000000000000\",\"sess\":\"\",\"dev\":\"android\",\"ts\":1700000000}"
                .to_vec(),
        ));
        let record =
            b"{\"uid\":\"ab34cd9821fe4411\",\"sess\":\"x\",\"dev\":\"android\",\"ts\":1712345678}";
        let plain = Tzstd::new(TzstdLevel(1)).compress(record).len();
        let with_dict = Tzstd::with_dict(TzstdLevel(1), dict.clone())
            .compress(record)
            .len();
        assert!(
            with_dict < plain,
            "dict ({with_dict}) should beat plain ({plain})"
        );
        roundtrip(&Tzstd::with_dict(TzstdLevel(1), dict), record);
    }

    #[test]
    fn dict_boundary_crossing_match() {
        // Dictionary ends with a prefix of the record so a match can start
        // in the dictionary and continue into produced output.
        let dict = Arc::new(TrainedDict::new(b"prefix-common-".to_vec()));
        let c = Tzstd::with_dict(TzstdLevel(22), dict);
        roundtrip(&c, b"prefix-common-prefix-common-prefix-common-tail");
    }

    #[test]
    fn wrong_dict_fails_or_differs() {
        let d1 = Arc::new(TrainedDict::new(b"AAAABBBBCCCCDDDD".to_vec()));
        let c1 = Tzstd::with_dict(TzstdLevel(1), d1);
        let data = b"AAAABBBBCCCCDDDDxyz";
        let z = c1.compress(data);
        let c2 = Tzstd::new(TzstdLevel(1));
        // Decompressing without the dictionary must not silently succeed
        // with the right data.
        if let Ok(got) = c2.decompress(&z) {
            assert_ne!(got, data)
        }
    }

    #[test]
    fn corrupted_stream_is_an_error_not_a_panic() {
        let c = Tzstd::new(TzstdLevel(1));
        let z = c.compress(b"hello hello hello hello");
        for i in 0..z.len() {
            let mut bad = z.clone();
            bad[i] ^= 0xff;
            let _ = c.decompress(&bad); // must not panic
        }
        assert!(c.decompress(&[]).is_err());
        assert!(c.decompress(&[0x80]).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_roundtrip_any_bytes(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
            roundtrip(&Tzstd::new(TzstdLevel(1)), &data);
        }

        #[test]
        fn prop_roundtrip_fast_level(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
            roundtrip(&Tzstd::new(TzstdLevel(-50)), &data);
        }

        #[test]
        fn prop_roundtrip_with_dict(
            data in proptest::collection::vec(any::<u8>(), 0..800),
            dict in proptest::collection::vec(any::<u8>(), 0..800),
        ) {
            let d = Arc::new(TrainedDict::new(dict));
            roundtrip(&Tzstd::with_dict(TzstdLevel(15), d), &data);
        }

        #[test]
        fn prop_compressible_data_shrinks(seed in 0u8..=255) {
            let unit = [seed, seed.wrapping_add(1), seed.wrapping_add(2), b'-'];
            let data: Vec<u8> = unit.iter().cycle().take(400).copied().collect();
            let c = Tzstd::new(TzstdLevel(1));
            prop_assert!(c.compress(&data).len() < data.len());
        }
    }
}
