//! Adaptive order-0 range coder — tzstd's entropy stage.
//!
//! Real Zstandard entropy-codes its LZ token streams with FSE/Huffman.
//! A table-based header is too expensive for 100-byte records, so tzstd
//! uses an *adaptive* byte-wise range coder instead (the classic
//! Subbotin carryless design): encoder and decoder grow identical
//! frequency tables as they go, so no table is transmitted at all.
//! Compression on short machine-generated records (hex ids, digits,
//! repeated field names) is where this earns its keep.

use tb_common::{Error, Result};

const TOP: u32 = 1 << 24;
const BOT: u32 = 1 << 16;
/// Halve all frequencies when the total reaches this; must stay well
/// below BOT so `range / total` never hits zero.
const MAX_TOTAL: u32 = 1 << 14;
/// Adaptation increment per observed symbol.
const INC: u16 = 24;

struct Model {
    freq: [u16; 256],
    total: u32,
}

impl Model {
    fn new() -> Self {
        Self {
            freq: [1; 256],
            total: 256,
        }
    }

    /// Cumulative frequency below `sym`.
    fn cum(&self, sym: usize) -> u32 {
        self.freq[..sym].iter().map(|&f| f as u32).sum()
    }

    fn update(&mut self, sym: usize) {
        self.freq[sym] += INC;
        self.total += INC as u32;
        if self.total >= MAX_TOTAL {
            self.total = 0;
            for f in &mut self.freq {
                *f = (*f / 2).max(1);
                self.total += *f as u32;
            }
        }
    }

    /// Finds the symbol whose cumulative interval contains `target`,
    /// returning `(sym, cum_below, freq)`.
    fn find(&self, target: u32) -> (usize, u32, u32) {
        let mut cum = 0u32;
        for (sym, &f) in self.freq.iter().enumerate() {
            let f = f as u32;
            if target < cum + f {
                return (sym, cum, f);
            }
            cum += f;
        }
        // target beyond total can only happen on corrupt input; pin to
        // the last symbol.
        let f = self.freq[255] as u32;
        (255, cum - f, f)
    }
}

/// Range-encodes `input` (Subbotin carryless, 32-bit).
pub fn rc_encode(input: &[u8]) -> Vec<u8> {
    let mut model = Model::new();
    let mut low: u32 = 0;
    let mut range: u32 = u32::MAX;
    let mut out = Vec::with_capacity(input.len() / 2 + 8);

    for &b in input {
        let sym = b as usize;
        let cum = model.cum(sym);
        let freq = model.freq[sym] as u32;
        let total = model.total;

        range /= total;
        low = low.wrapping_add(cum.wrapping_mul(range));
        range = range.wrapping_mul(freq);

        loop {
            if (low ^ low.wrapping_add(range)) < TOP {
                // Top byte settled; emit it.
            } else if range < BOT {
                // Interval straddles a boundary but is tiny: truncate it
                // so no future addition can carry into emitted bytes.
                range = low.wrapping_neg() & (BOT - 1);
            } else {
                break;
            }
            out.push((low >> 24) as u8);
            low <<= 8;
            range <<= 8;
        }
        model.update(sym);
    }
    for _ in 0..4 {
        out.push((low >> 24) as u8);
        low <<= 8;
    }
    out
}

/// Decodes `count` bytes from a [`rc_encode`] stream.
pub fn rc_decode(input: &[u8], count: usize) -> Result<Vec<u8>> {
    let mut model = Model::new();
    let mut low: u32 = 0;
    let mut range: u32 = u32::MAX;
    let mut pos = 0usize;
    let mut code: u32 = 0;
    let pull = |pos: &mut usize| -> u8 {
        let b = input.get(*pos).copied().unwrap_or(0);
        *pos += 1;
        b
    };
    for _ in 0..4 {
        code = (code << 8) | pull(&mut pos) as u32;
    }

    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let total = model.total;
        range /= total;
        let target = code.wrapping_sub(low) / range;
        if target >= total {
            return Err(Error::Corruption("range coder target out of bounds".into()));
        }
        let (sym, cum, freq) = model.find(target);

        low = low.wrapping_add(cum.wrapping_mul(range));
        range = range.wrapping_mul(freq);

        loop {
            if (low ^ low.wrapping_add(range)) < TOP {
            } else if range < BOT {
                range = low.wrapping_neg() & (BOT - 1);
            } else {
                break;
            }
            code = (code << 8) | pull(&mut pos) as u32;
            low <<= 8;
            range <<= 8;
        }
        model.update(sym);
        out.push(sym as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(data: &[u8]) {
        let enc = rc_encode(data);
        let dec = rc_decode(&enc, data.len()).expect("decode");
        assert_eq!(dec, data, "roundtrip failed for {} bytes", data.len());
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(&[0u8]);
        roundtrip(&[255u8; 3]);
    }

    #[test]
    fn skewed_alphabet_compresses() {
        // Hex-ish content: a 16-symbol alphabet should approach 4 bits
        // per byte once the model adapts.
        let data: Vec<u8> = (0..2000u32)
            .map(|i| b"0123456789abcdef"[(i.wrapping_mul(2654435761) >> 13) as usize % 16])
            .collect();
        let enc = rc_encode(&data);
        assert!(
            (enc.len() as f64) < data.len() as f64 * 0.75,
            "hex data should compress: {} -> {}",
            data.len(),
            enc.len()
        );
        roundtrip(&data);
    }

    #[test]
    fn uniform_random_does_not_explode() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let data: Vec<u8> = (0..4000).map(|_| rng.gen()).collect();
        let enc = rc_encode(&data);
        // Adaptive order-0 pays a few percent on truly uniform input;
        // the tzstd frame's stored mode shields users from it.
        assert!(
            enc.len() <= data.len() + data.len() / 12,
            "{} vs {}",
            enc.len(),
            data.len()
        );
        roundtrip(&data);
    }

    #[test]
    fn repeated_bytes_compress_hard() {
        let data = vec![b'z'; 4000];
        let enc = rc_encode(&data);
        assert!(
            enc.len() < 400,
            "constant input should crush: {}",
            enc.len()
        );
        roundtrip(&data);
    }

    #[test]
    fn corrupt_stream_is_error_or_garbage_not_panic() {
        let data = b"some reasonably long input with structure 1234567890";
        let enc = rc_encode(data);
        for i in 0..enc.len() {
            let mut bad = enc.clone();
            bad[i] ^= 0x55;
            let _ = rc_decode(&bad, data.len()); // must not panic
        }
        let _ = rc_decode(&[], 10);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn prop_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..3000)) {
            roundtrip(&data);
        }

        #[test]
        fn prop_roundtrip_texty(s in "[a-z0-9|:=/ ]{0,1500}") {
            roundtrip(s.as_bytes());
        }
    }
}
