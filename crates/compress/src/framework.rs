//! The pre-trained-compression production framework (§4.2, Figure 5).
//!
//! * [`PretrainedCompression`] — sampling + training + hot-swappable
//!   compressor, the unit TierBase instances embed.
//! * [`CompressionMonitor`] — tracks compression ratio and pattern-miss
//!   rate; fires a retrain trigger when either degrades past its
//!   threshold (the paper's monitoring service).
//! * [`CompressorRecommender`] — the Insight-service component that
//!   evaluates candidate compressors on a sample and recommends one.

use crate::dict::train_dictionary;
use crate::lz::{Tzstd, TzstdLevel};
use crate::pbc::{Pbc, PbcConfig};
use crate::{measure_ratio, Compressor, RawCompressor};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Monitor thresholds.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Retrain when the observed ratio exceeds baseline × this factor
    /// (ratio is compressed/original — growth means degradation).
    pub ratio_degradation_factor: f64,
    /// Retrain when PBC's unmatched-record rate exceeds this.
    pub max_unmatched_rate: f64,
    /// Minimum records observed before triggers are considered.
    pub min_observations: u64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            ratio_degradation_factor: 1.2,
            max_unmatched_rate: 0.15,
            min_observations: 256,
        }
    }
}

/// Running compression-efficiency statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompressionStats {
    pub records: u64,
    pub original_bytes: u64,
    pub compressed_bytes: u64,
}

impl CompressionStats {
    /// Observed ratio (compressed/original); 1.0 when nothing recorded.
    pub fn ratio(&self) -> f64 {
        if self.original_bytes == 0 {
            1.0
        } else {
            self.compressed_bytes as f64 / self.original_bytes as f64
        }
    }
}

/// Tracks live compression efficiency and decides when to retrain.
pub struct CompressionMonitor {
    config: MonitorConfig,
    /// Ratio measured right after (re)training; the degradation baseline.
    baseline_ratio: RwLock<f64>,
    records: AtomicU64,
    original: AtomicU64,
    compressed: AtomicU64,
}

impl CompressionMonitor {
    pub fn new(config: MonitorConfig, baseline_ratio: f64) -> Self {
        Self {
            config,
            baseline_ratio: RwLock::new(baseline_ratio),
            records: AtomicU64::new(0),
            original: AtomicU64::new(0),
            compressed: AtomicU64::new(0),
        }
    }

    /// Records one compressed record's sizes.
    pub fn observe(&self, original: usize, compressed: usize) {
        self.records.fetch_add(1, Ordering::Relaxed);
        self.original.fetch_add(original as u64, Ordering::Relaxed);
        self.compressed
            .fetch_add(compressed as u64, Ordering::Relaxed);
    }

    pub fn stats(&self) -> CompressionStats {
        CompressionStats {
            records: self.records.load(Ordering::Relaxed),
            original_bytes: self.original.load(Ordering::Relaxed),
            compressed_bytes: self.compressed.load(Ordering::Relaxed),
        }
    }

    /// True when ratio degradation or pattern misses warrant retraining.
    /// `unmatched_rate` comes from [`Pbc::unmatched_rate`] (0 for non-PBC).
    pub fn should_retrain(&self, unmatched_rate: f64) -> bool {
        let s = self.stats();
        if s.records < self.config.min_observations {
            return false;
        }
        if unmatched_rate > self.config.max_unmatched_rate {
            return true;
        }
        s.ratio() > *self.baseline_ratio.read() * self.config.ratio_degradation_factor
    }

    /// Resets counters and re-baselines after retraining.
    pub fn rebaseline(&self, new_baseline: f64) {
        *self.baseline_ratio.write() = new_baseline;
        self.records.store(0, Ordering::Relaxed);
        self.original.store(0, Ordering::Relaxed);
        self.compressed.store(0, Ordering::Relaxed);
    }
}

/// Which compressor the recommender selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressorChoice {
    Raw,
    Tzstd,
    TzstdDict,
    Pbc,
}

/// The Insight-service compressor recommender: benchmarks candidates on a
/// sample and picks by ratio subject to a SET-throughput floor.
pub struct CompressorRecommender {
    /// Reject candidates whose compression throughput falls below this
    /// fraction of raw memcpy throughput (performance-requirement knob).
    pub min_speed_fraction: f64,
}

impl Default for CompressorRecommender {
    fn default() -> Self {
        Self {
            min_speed_fraction: 0.0, // by default pick purely on ratio
        }
    }
}

/// One evaluated candidate.
#[derive(Debug, Clone)]
pub struct CandidateReport {
    pub choice: CompressorChoice,
    pub ratio: f64,
    /// Compression throughput relative to raw copy (1.0 = memcpy speed).
    pub speed_fraction: f64,
}

impl CompressorRecommender {
    /// Evaluates Raw, Tzstd, Tzstd+dict and PBC on the samples and
    /// returns per-candidate reports plus the recommendation.
    pub fn recommend(&self, samples: &[Vec<u8>]) -> (CompressorChoice, Vec<CandidateReport>) {
        let half = samples.len() / 2;
        let (train, test) = samples.split_at(half.max(1).min(samples.len()));
        let test = if test.is_empty() { train } else { test };

        let raw = RawCompressor;
        let tz = Tzstd::new(TzstdLevel(1));
        let tzd = Tzstd::with_dict(TzstdLevel(1), train_dictionary(train, 4096));
        let pbc = Pbc::train(train, &PbcConfig::default());

        let raw_speed = throughput(&raw, test);
        let report = |choice, c: &dyn Compressor| CandidateReport {
            choice,
            ratio: measure_ratio(c, test),
            speed_fraction: throughput(c, test) / raw_speed.max(1e-9),
        };
        let reports = vec![
            report(CompressorChoice::Raw, &raw),
            report(CompressorChoice::Tzstd, &tz),
            report(CompressorChoice::TzstdDict, &tzd),
            report(CompressorChoice::Pbc, &pbc),
        ];

        let best = reports
            .iter()
            .filter(|r| {
                r.choice == CompressorChoice::Raw || r.speed_fraction >= self.min_speed_fraction
            })
            .min_by(|a, b| a.ratio.partial_cmp(&b.ratio).expect("ratio is finite"))
            .map(|r| r.choice)
            .unwrap_or(CompressorChoice::Raw);
        (best, reports)
    }
}

fn throughput(c: &dyn Compressor, samples: &[Vec<u8>]) -> f64 {
    let bytes: usize = samples.iter().map(|s| s.len()).sum();
    if bytes == 0 {
        return 1.0;
    }
    let start = Instant::now();
    for s in samples {
        std::hint::black_box(c.compress(s));
    }
    bytes as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

/// A trained, hot-swappable compression unit: choice + compressor +
/// monitor, with a retrain path.
pub struct PretrainedCompression {
    choice: CompressorChoice,
    compressor: RwLock<Built>,
    monitor: CompressionMonitor,
    pbc_config: PbcConfig,
    dict_budget: usize,
    level: TzstdLevel,
}

/// A built compressor, kept concretely for PBC so its live match
/// statistics stay reachable.
#[derive(Clone)]
enum Built {
    Generic(Arc<dyn Compressor>),
    Pbc(Arc<Pbc>),
}

impl Built {
    fn as_compressor(&self) -> &dyn Compressor {
        match self {
            Built::Generic(c) => c.as_ref(),
            Built::Pbc(p) => p.as_ref(),
        }
    }
}

impl PretrainedCompression {
    /// Trains the chosen compressor kind on `samples`.
    pub fn train(choice: CompressorChoice, samples: &[Vec<u8>], level: TzstdLevel) -> Self {
        let pbc_config = PbcConfig {
            fallback_level: level,
            ..PbcConfig::default()
        };
        let dict_budget = 4096;
        let compressor = build(choice, samples, level, &pbc_config, dict_budget);
        let baseline = measure_ratio(compressor.as_compressor(), samples);
        Self {
            choice,
            compressor: RwLock::new(compressor),
            monitor: CompressionMonitor::new(MonitorConfig::default(), baseline),
            pbc_config,
            dict_budget,
            level,
        }
    }

    pub fn choice(&self) -> CompressorChoice {
        self.choice
    }

    pub fn monitor(&self) -> &CompressionMonitor {
        &self.monitor
    }

    /// Compresses and feeds the monitor.
    pub fn compress(&self, input: &[u8]) -> Vec<u8> {
        let out = self.compressor.read().as_compressor().compress(input);
        self.monitor.observe(input.len(), out.len());
        out
    }

    pub fn decompress(&self, input: &[u8]) -> tb_common::Result<Vec<u8>> {
        self.compressor.read().as_compressor().decompress(input)
    }

    /// Current PBC pattern-miss rate (0 for non-PBC choices).
    pub fn unmatched_rate(&self) -> f64 {
        match &*self.compressor.read() {
            Built::Pbc(p) => p.unmatched_rate(),
            Built::Generic(_) => 0.0,
        }
    }

    /// True when the monitor's degradation triggers have fired.
    pub fn should_retrain(&self) -> bool {
        self.monitor.should_retrain(self.unmatched_rate())
    }

    /// Re-samples and retrains the same compressor kind, re-baselining
    /// the monitor (the §4.2 re-train path).
    pub fn retrain(&self, samples: &[Vec<u8>]) {
        let compressor = build(
            self.choice,
            samples,
            self.level,
            &self.pbc_config,
            self.dict_budget,
        );
        let baseline = measure_ratio(compressor.as_compressor(), samples);
        *self.compressor.write() = compressor;
        self.monitor.rebaseline(baseline);
    }
}

fn build(
    choice: CompressorChoice,
    samples: &[Vec<u8>],
    level: TzstdLevel,
    pbc_config: &PbcConfig,
    dict_budget: usize,
) -> Built {
    match choice {
        CompressorChoice::Raw => Built::Generic(Arc::new(RawCompressor)),
        CompressorChoice::Tzstd => Built::Generic(Arc::new(Tzstd::new(level))),
        CompressorChoice::TzstdDict => Built::Generic(Arc::new(Tzstd::with_dict(
            level,
            train_dictionary(samples, dict_budget),
        ))),
        CompressorChoice::Pbc => Built::Pbc(Arc::new(Pbc::train(samples, pbc_config))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn templated(n: usize, salt: u64) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                format!(
                    "EVT|user={:016x}|act=click|page=/home|ts={}|END",
                    (i as u64).wrapping_mul(salt | 1),
                    1_700_000_000 + i
                )
                .into_bytes()
            })
            .collect()
    }

    #[test]
    fn monitor_requires_min_observations() {
        let m = CompressionMonitor::new(MonitorConfig::default(), 0.5);
        m.observe(100, 99);
        assert!(!m.should_retrain(1.0), "too few observations to trigger");
    }

    #[test]
    fn monitor_triggers_on_ratio_degradation() {
        let cfg = MonitorConfig {
            min_observations: 10,
            ..MonitorConfig::default()
        };
        let m = CompressionMonitor::new(cfg, 0.5);
        for _ in 0..20 {
            m.observe(100, 90); // ratio 0.9 > 0.5 * 1.2
        }
        assert!(m.should_retrain(0.0));
    }

    #[test]
    fn monitor_triggers_on_unmatched_rate() {
        let cfg = MonitorConfig {
            min_observations: 1,
            ..MonitorConfig::default()
        };
        let m = CompressionMonitor::new(cfg, 0.5);
        m.observe(100, 40); // healthy ratio
        assert!(!m.should_retrain(0.05));
        assert!(m.should_retrain(0.5));
    }

    #[test]
    fn monitor_rebaseline_resets() {
        let cfg = MonitorConfig {
            min_observations: 1,
            ..MonitorConfig::default()
        };
        let m = CompressionMonitor::new(cfg, 0.5);
        for _ in 0..5 {
            m.observe(100, 95);
        }
        assert!(m.should_retrain(0.0));
        m.rebaseline(0.95);
        assert_eq!(m.stats().records, 0);
        assert!(!m.should_retrain(0.0));
    }

    #[test]
    fn recommender_prefers_trained_compressors_on_templated_data() {
        let samples = templated(120, 0x9e3779b9);
        let (choice, reports) = CompressorRecommender::default().recommend(&samples);
        assert!(
            matches!(choice, CompressorChoice::Pbc | CompressorChoice::TzstdDict),
            "expected a pre-trained choice, got {choice:?}: {reports:?}"
        );
        // Raw must report ratio 1.0.
        let raw = reports
            .iter()
            .find(|r| r.choice == CompressorChoice::Raw)
            .unwrap();
        assert_eq!(raw.ratio, 1.0);
    }

    #[test]
    fn pretrained_unit_roundtrips_and_monitors() {
        let samples = templated(80, 0x1234_5678);
        let unit =
            PretrainedCompression::train(CompressorChoice::TzstdDict, &samples, TzstdLevel(1));
        let rec = &samples[40];
        let z = unit.compress(rec);
        assert_eq!(&unit.decompress(&z).unwrap(), rec);
        assert!(z.len() < rec.len());
        let s = unit.monitor().stats();
        assert_eq!(s.records, 1);
        assert!(s.ratio() < 1.0);
    }

    #[test]
    fn retrain_swaps_compressor_and_rebaselines() {
        let old = templated(60, 0x1111);
        let unit = PretrainedCompression::train(CompressorChoice::TzstdDict, &old, TzstdLevel(1));
        for rec in &old {
            unit.compress(rec);
        }
        let before = unit.monitor().stats();
        assert!(before.records > 0);

        // Shifted data distribution; retrain on it.
        let new: Vec<Vec<u8>> = (0..60)
            .map(|i| format!("LOG|{i:08}|level=WARN|svc=pay|trace={i:024x}").into_bytes())
            .collect();
        unit.retrain(&new);
        assert_eq!(unit.monitor().stats().records, 0);
        let z = unit.compress(&new[10]);
        assert_eq!(&unit.decompress(&z).unwrap(), &new[10]);
        assert!(z.len() < new[10].len());
    }

    #[test]
    fn pretrained_raw_choice_is_identity() {
        let unit = PretrainedCompression::train(CompressorChoice::Raw, &[], TzstdLevel(1));
        let z = unit.compress(b"abc");
        assert_eq!(z, b"abc");
        assert_eq!(unit.choice(), CompressorChoice::Raw);
    }
}
