//! Baseline comparator engines (§6.1).
//!
//! Simplified in-process reimplementations of the systems the paper
//! evaluates against. Each captures its subject's *architectural
//! signature* — the property that determines where it lands on the
//! cost plane — rather than vendor code:
//!
//! | Engine | Signature | Cost-plane effect |
//! |---|---|---|
//! | [`RedisLike`] | single-threaded event loop (one global serialization point), rich-object overhead, optional AOF | low PC at 1 core, higher SC |
//! | [`MemcachedLike`] | multi-threaded sharded slab cache | scales with cores, slab rounding wastes some memory but per-entry overhead is small |
//! | [`DragonflyLike`] | shared-nothing per-core shards reached by message passing | high parallel throughput, per-op messaging cost |
//! | [`CassandraLike`] / [`HBaseLike`] | LSM on disk with JVM-ish per-op CPU overhead | low SC (disk is cheap), high PC |
//!
//! All implement [`KvEngine`], so the same replay/cost harness drives
//! every system in Figures 7 and 10–12.

pub mod cassandra_like;
pub mod dragonfly_like;
pub mod memcached_like;
pub mod redis_like;

pub use cassandra_like::{CassandraLike, HBaseLike};
pub use dragonfly_like::DragonflyLike;
pub use memcached_like::MemcachedLike;
pub use redis_like::RedisLike;

use std::time::{Duration, Instant};

/// Busy-wait for `us` microseconds — models fixed per-op CPU overhead
/// (JVM dispatch, protocol parsing) that wall-clock throughput must pay.
pub(crate) fn burn_cpu_us(us: u64) {
    if us == 0 {
        return;
    }
    let deadline = Instant::now() + Duration::from_micros(us);
    while Instant::now() < deadline {
        std::hint::spin_loop();
    }
}
