//! Memcached-like baseline: multi-threaded sharded slab cache.
//!
//! Signature properties: (1) lock striping over many shards, so
//! concurrent clients scale across cores; (2) slab allocation — values
//! round up to power-of-two size classes, wasting some memory inside
//! the slab but keeping per-entry header overhead small (~48 bytes);
//! (3) strict LRU per shard with a hard byte budget, no persistence.

use crate::burn_cpu_us;
use parking_lot::Mutex;
use tb_cache::LruShard;
use tb_common::{fx_hash, Error, Key, KvEngine, Result, Value};
use tb_pmem::Medium;

/// Modeled per-entry header (item header + hash chain pointer).
/// `LruShard` already charges 64 bytes/entry, close enough to
/// memcached's ~48-56; slab rounding is applied to the value size.
fn slab_rounded(len: usize) -> usize {
    // Size classes: 64, 128, 256, ... (growth factor 2 for simplicity;
    // memcached's default is 1.25).
    let mut class = 64usize;
    while class < len {
        class *= 2;
    }
    class
}

/// Pads a value to its slab class, prefixed with the true length.
fn encode_slab(value: &Value) -> Value {
    let class = slab_rounded(value.len() + 4);
    let mut buf = Vec::with_capacity(class);
    buf.extend_from_slice(&(value.len() as u32).to_le_bytes());
    buf.extend_from_slice(value.as_slice());
    buf.resize(class, 0);
    Value::from(buf)
}

/// Strips slab padding from a stored buffer.
fn decode_slab(stored: &Value) -> Value {
    let bytes = stored.as_slice();
    let orig_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    Value::copy_from(&bytes[4..4 + orig_len])
}

/// Multi-threaded slab cache.
pub struct MemcachedLike {
    shards: Vec<Mutex<LruShard>>,
}

impl MemcachedLike {
    /// Builds a cache with the given total budget.
    pub fn new(capacity_bytes: usize, shards: usize) -> Self {
        let per = (capacity_bytes / shards.max(1)).max(1024);
        Self {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(LruShard::new(per)))
                .collect(),
        }
    }

    fn shard(&self, key: &Key) -> &Mutex<LruShard> {
        &self.shards[(fx_hash(key.as_slice()) as usize) % self.shards.len()]
    }
}

/// Per-command CPU: memcached pays more per command in single-thread
/// mode (its threading machinery is engineered for multi-thread), which
/// is the Figure 7(a) ordering the paper reports.
const OP_COST_US: u64 = 6;

impl KvEngine for MemcachedLike {
    fn get(&self, key: &Key) -> Result<Option<Value>> {
        burn_cpu_us(OP_COST_US);
        // Stored values carry slab padding; strip it on read.
        Ok(self
            .shard(key)
            .lock()
            .get(key, 0)
            .map(|e| decode_slab(&e.value)))
    }

    fn put(&self, key: Key, value: Value) -> Result<()> {
        burn_cpu_us(OP_COST_US);
        // Represent slab rounding physically: pad the stored buffer to
        // its size class so `resident_bytes` reflects slab waste.
        let stored = encode_slab(&value);
        // Cache semantics: eviction is expected, never an error.
        let _ = self
            .shard(&key)
            .lock()
            .insert(key, stored, false, Medium::Dram);
        Ok(())
    }

    fn cas(&self, key: Key, expected: Option<&Value>, new: Value) -> Result<()> {
        burn_cpu_us(OP_COST_US);
        // Atomic within the key's shard: read-compare-write under one
        // striped-lock acquisition (memcached's `cas` command).
        let mut shard = self.shard(&key).lock();
        let current = shard.get(&key, 0).map(|e| decode_slab(&e.value));
        let matches = match (current.as_ref(), expected) {
            (Some(c), Some(e)) => c == e,
            (None, None) => true,
            _ => false,
        };
        if !matches {
            return Err(Error::CasMismatch);
        }
        let stored = encode_slab(&new);
        let _ = shard.insert(key, stored, false, Medium::Dram);
        Ok(())
    }

    fn delete(&self, key: &Key) -> Result<()> {
        self.shard(key).lock().remove(key);
        Ok(())
    }

    fn scan(&self, start: &Key, end: Option<&Key>, limit: usize) -> Result<Vec<(Key, Value)>> {
        // Memcached has no range primitive: a scan walks every shard's
        // hash table (striped locks taken one at a time), merges, and
        // sorts client-side. Stored values carry slab padding.
        burn_cpu_us(OP_COST_US);
        let mut rows = Vec::new();
        for shard in &self.shards {
            rows.extend(
                shard
                    .lock()
                    .scan_range(start.as_slice(), end.map(Key::as_slice), 0)
                    .into_iter()
                    .map(|(k, e)| (k, decode_slab(&e.value))),
            );
        }
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows.truncate(limit);
        Ok(rows)
    }

    fn resident_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().used_bytes() as u64)
            .sum()
    }

    fn label(&self) -> String {
        "memcached-like".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_classes_round_up() {
        assert_eq!(slab_rounded(1), 64);
        assert_eq!(slab_rounded(64), 64);
        assert_eq!(slab_rounded(65), 128);
        assert_eq!(slab_rounded(1000), 1024);
    }

    #[test]
    fn roundtrip_strips_padding() {
        let m = MemcachedLike::new(1 << 20, 4);
        let key = Key::from("k");
        m.put(key.clone(), Value::from("exact-value")).unwrap();
        assert_eq!(m.get(&key).unwrap(), Some(Value::from("exact-value")));
        m.delete(&key).unwrap();
        assert_eq!(m.get(&key).unwrap(), None);
    }

    #[test]
    fn resident_includes_slab_waste() {
        let m = MemcachedLike::new(1 << 20, 1);
        m.put(Key::from("k"), Value::from(vec![b'x'; 65])).unwrap();
        // 65+4 → 128-byte class (+ key + 64B header).
        assert!(m.resident_bytes() >= 128 + 1 + 64);
    }

    #[test]
    fn bounded_by_capacity() {
        let m = MemcachedLike::new(64 << 10, 4);
        for i in 0..5000 {
            m.put(Key::from(format!("k{i}")), Value::from(vec![0u8; 100]))
                .unwrap();
        }
        assert!(m.resident_bytes() <= 64 << 10);
    }
}
