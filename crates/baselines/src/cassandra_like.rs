//! Cassandra- and HBase-like baselines: LSM trees on disk with
//! JVM-class per-operation CPU overhead.
//!
//! Signature properties: data lives on cheap disk (low `SC` — resident
//! bytes are charged at a disk-vs-DRAM cost factor), while each request
//! pays a fixed CPU toll for protocol/JVM work on top of the LSM's own
//! I/O (high `PC`). That combination puts both systems in the
//! bottom-right of the Figure 11/12 cost planes, exactly where the
//! paper draws them. The two differ in tuning: the HBase-like engine
//! uses larger blocks and a bigger memstore (region-server style),
//! trading read latency for write throughput.

use crate::burn_cpu_us;
use std::path::Path;
use tb_common::{Key, KvEngine, Result, Value};
use tb_lsm::{LsmConfig, LsmDb};

/// Disk $/GB relative to DRAM (cloud SSD vs memory, order 1:20).
const DISK_COST_FACTOR: f64 = 0.05;

/// Fixed CPU cost per op, microseconds (JVM dispatch, SEDA stages).
const CASSANDRA_OP_US: u64 = 12;
const HBASE_OP_US: u64 = 15;

/// Shared implementation for the two LSM-backed comparators.
pub struct JvmLsmEngine {
    db: LsmDb,
    op_cost_us: u64,
    name: &'static str,
}

impl JvmLsmEngine {
    fn open(_dir: &Path, op_cost_us: u64, name: &'static str, config: LsmConfig) -> Result<Self> {
        Ok(Self {
            db: LsmDb::open(config)?,
            op_cost_us,
            name,
        })
    }

    /// The wrapped LSM (test access).
    pub fn db(&self) -> &LsmDb {
        &self.db
    }
}

impl KvEngine for JvmLsmEngine {
    fn get(&self, key: &Key) -> Result<Option<Value>> {
        burn_cpu_us(self.op_cost_us);
        self.db.get(key)
    }

    fn put(&self, key: Key, value: Value) -> Result<()> {
        burn_cpu_us(self.op_cost_us);
        self.db.put(key, value)
    }

    fn delete(&self, key: &Key) -> Result<()> {
        burn_cpu_us(self.op_cost_us);
        self.db.delete(key.clone())
    }

    fn cas(&self, key: Key, expected: Option<&Value>, new: Value) -> Result<()> {
        burn_cpu_us(self.op_cost_us);
        // Atomic: the LSM runs the read-compare-write under one write
        // lock (lightweight transactions, Cassandra-style).
        self.db.cas(key, expected, new)
    }

    fn scan(&self, start: &Key, end: Option<&Key>, limit: usize) -> Result<Vec<(Key, Value)>> {
        // Native LSM range scan (token-range read / HBase Scan); the
        // JVM toll is charged once per request, not per row.
        burn_cpu_us(self.op_cost_us);
        self.db.scan(start, end, limit)
    }

    fn resident_bytes(&self) -> u64 {
        // Disk bytes charged at the disk cost factor: the cost model
        // compares engines on DRAM-equivalent dollars.
        (self.db.disk_bytes() as f64 * DISK_COST_FACTOR) as u64
    }

    fn label(&self) -> String {
        self.name.into()
    }

    fn sync(&self) -> Result<()> {
        KvEngine::sync(&self.db)
    }
}

/// Cassandra-like comparator.
pub struct CassandraLike;

impl CassandraLike {
    pub fn open(dir: &Path) -> Result<JvmLsmEngine> {
        let config = LsmConfig::new(dir.join("cassandra"));
        JvmLsmEngine::open(dir, CASSANDRA_OP_US, "cassandra-like", config)
    }
}

/// HBase-like comparator (bigger blocks, bigger memstore).
pub struct HBaseLike;

impl HBaseLike {
    pub fn open(dir: &Path) -> Result<JvmLsmEngine> {
        let mut config = LsmConfig::new(dir.join("hbase"));
        config.memtable_bytes = 16 << 20;
        config.sst.block_size = 64 << 10;
        JvmLsmEngine::open(dir, HBASE_OP_US, "hbase-like", config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tb-jvm-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn cassandra_like_roundtrip() {
        let e = CassandraLike::open(&tmpdir("cas")).unwrap();
        e.put(Key::from("k"), Value::from("v")).unwrap();
        assert_eq!(e.get(&Key::from("k")).unwrap(), Some(Value::from("v")));
        assert_eq!(e.label(), "cassandra-like");
    }

    #[test]
    fn disk_cost_factor_discounts_space() {
        let e = HBaseLike::open(&tmpdir("hb")).unwrap();
        for i in 0..500 {
            e.put(Key::from(format!("k{i}")), Value::from(vec![b'x'; 200]))
                .unwrap();
        }
        e.sync().unwrap();
        let disk = e.db().disk_bytes();
        let charged = e.resident_bytes();
        assert!(
            charged < disk / 10,
            "disk must be charged cheap: {charged} vs {disk}"
        );
    }

    #[test]
    fn op_overhead_slows_throughput() {
        use std::time::Instant;
        let e = CassandraLike::open(&tmpdir("slow")).unwrap();
        let t0 = Instant::now();
        for i in 0..100 {
            e.put(Key::from(format!("k{i}")), Value::from("v")).unwrap();
        }
        // 100 ops × 12µs ≥ 1.2ms of injected CPU cost alone.
        assert!(t0.elapsed().as_micros() >= 1200);
    }
}
