//! Dragonfly-like baseline: shared-nothing per-core shards.
//!
//! Signature properties: each shard is owned by exactly one worker
//! thread (no locks on the data path) and requests reach their shard by
//! message passing. Parallel throughput scales with shard count, but
//! every operation pays a cross-thread hop — which is why Dragonfly's
//! single-instance *performance cost* in Figure 10 sits above the
//! single-threaded stores while its parallel throughput in Figure 7(c)
//! is high.

use crossbeam::channel::{bounded, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use tb_common::hash::FxBuildHasher;
use tb_common::{fx_hash, Error, Key, KvEngine, Result, Value};

enum Request {
    Get(Key, Sender<Option<Value>>),
    Put(Key, Value, Sender<Option<Value>>),
    Delete(Key, Sender<Option<Value>>),
    /// Compare-and-set; atomic because the shard owner serializes it
    /// with every other operation on its keys.
    Cas(Key, Option<Value>, Value, Sender<Result<()>>),
    /// Range scan of one shard's keys (`start <= key < end`); the
    /// hash-sharded client fans the request out to every shard and
    /// merge-sorts the replies.
    Scan(Key, Option<Key>, usize, Sender<Vec<(Key, Value)>>),
    Stop,
}

thread_local! {
    /// Per-client reusable reply channel: the hot path allocates no
    /// channels (one pair per client thread, like a real connection's
    /// response slot).
    static REPLY: (Sender<Option<Value>>, crossbeam::channel::Receiver<Option<Value>>) =
        bounded(1);
}

/// Per-entry overhead: compact dash-table entry (~40 bytes).
const ENTRY_OVERHEAD: u64 = 40;

/// Shared-nothing multi-threaded store.
pub struct DragonflyLike {
    senders: Vec<Sender<Request>>,
    workers: Vec<JoinHandle<()>>,
    bytes: Arc<AtomicU64>,
}

impl DragonflyLike {
    /// Spawns one owner thread per shard.
    pub fn new(shards: usize) -> Self {
        let bytes = Arc::new(AtomicU64::new(0));
        let mut senders = Vec::new();
        let mut workers = Vec::new();
        for _ in 0..shards.max(1) {
            let (tx, rx) = bounded::<Request>(4096);
            let bytes = bytes.clone();
            workers.push(std::thread::spawn(move || {
                let mut map: HashMap<Key, Value, FxBuildHasher> = HashMap::default();
                while let Ok(req) = rx.recv() {
                    match req {
                        Request::Get(key, reply) => {
                            let _ = reply.send(map.get(&key).cloned());
                        }
                        Request::Put(key, value, reply) => {
                            let klen = key.len() as u64;
                            let vlen = value.len() as u64;
                            match map.insert(key, value) {
                                // Replacement: only the value delta moves.
                                Some(old) => {
                                    bytes.fetch_sub(old.len() as u64, Ordering::Relaxed);
                                    bytes.fetch_add(vlen, Ordering::Relaxed);
                                }
                                None => {
                                    bytes
                                        .fetch_add(klen + vlen + ENTRY_OVERHEAD, Ordering::Relaxed);
                                }
                            }
                            let _ = reply.send(None);
                        }
                        Request::Delete(key, reply) => {
                            if let Some(old) = map.remove(&key) {
                                bytes.fetch_sub(
                                    key.len() as u64 + old.len() as u64 + ENTRY_OVERHEAD,
                                    Ordering::Relaxed,
                                );
                            }
                            let _ = reply.send(None);
                        }
                        Request::Cas(key, expected, new, reply) => {
                            let matches = match (map.get(&key), expected.as_ref()) {
                                (Some(c), Some(e)) => c == e,
                                (None, None) => true,
                                _ => false,
                            };
                            let result = if matches {
                                let klen = key.len() as u64;
                                let vlen = new.len() as u64;
                                match map.insert(key, new) {
                                    Some(old) => {
                                        bytes.fetch_sub(old.len() as u64, Ordering::Relaxed);
                                        bytes.fetch_add(vlen, Ordering::Relaxed);
                                    }
                                    None => {
                                        bytes.fetch_add(
                                            klen + vlen + ENTRY_OVERHEAD,
                                            Ordering::Relaxed,
                                        );
                                    }
                                }
                                Ok(())
                            } else {
                                Err(Error::CasMismatch)
                            };
                            let _ = reply.send(result);
                        }
                        Request::Scan(start, end, limit, reply) => {
                            // Dash-table shard: unordered walk, local
                            // sort, local limit (the global limit is
                            // re-applied after the client's merge).
                            let mut rows: Vec<(Key, Value)> = map
                                .iter()
                                .filter(|(k, _)| {
                                    **k >= start && end.as_ref().is_none_or(|e| *k < e)
                                })
                                .map(|(k, v)| (k.clone(), v.clone()))
                                .collect();
                            rows.sort_by(|a, b| a.0.cmp(&b.0));
                            rows.truncate(limit);
                            let _ = reply.send(rows);
                        }
                        Request::Stop => break,
                    }
                }
            }));
            senders.push(tx);
        }
        Self {
            senders,
            workers,
            bytes,
        }
    }

    fn shard(&self, key: &Key) -> &Sender<Request> {
        &self.senders[(fx_hash(key.as_slice()) as usize) % self.senders.len()]
    }
}

impl DragonflyLike {
    fn roundtrip(
        &self,
        key_shard: &Key,
        make: impl FnOnce(Sender<Option<Value>>) -> Request,
    ) -> Result<Option<Value>> {
        REPLY.with(|(tx, rx)| {
            self.shard(key_shard)
                .send(make(tx.clone()))
                .map_err(|_| Error::Unavailable("shard worker gone".into()))?;
            // Spin briefly before parking: shard owners answer in
            // sub-microsecond time, so parking the client thread would
            // dominate the round-trip (fibers spin in the real system).
            for _ in 0..2000 {
                match rx.try_recv() {
                    Ok(v) => return Ok(v),
                    Err(_) => std::hint::spin_loop(),
                }
            }
            rx.recv()
                .map_err(|_| Error::Unavailable("shard worker gone".into()))
        })
    }
}

impl KvEngine for DragonflyLike {
    fn get(&self, key: &Key) -> Result<Option<Value>> {
        self.roundtrip(key, |tx| Request::Get(key.clone(), tx))
    }

    fn put(&self, key: Key, value: Value) -> Result<()> {
        let shard_key = key.clone();
        self.roundtrip(&shard_key, |tx| Request::Put(key, value, tx))?;
        Ok(())
    }

    fn delete(&self, key: &Key) -> Result<()> {
        self.roundtrip(key, |tx| Request::Delete(key.clone(), tx))?;
        Ok(())
    }

    fn cas(&self, key: Key, expected: Option<&Value>, new: Value) -> Result<()> {
        // CAS is rare enough that a fresh reply channel (instead of the
        // thread-local value slot) is fine.
        let (tx, rx) = bounded::<Result<()>>(1);
        self.shard(&key)
            .send(Request::Cas(key.clone(), expected.cloned(), new, tx))
            .map_err(|_| Error::Unavailable("shard worker gone".into()))?;
        rx.recv()
            .map_err(|_| Error::Unavailable("shard worker gone".into()))?
    }

    fn scan(&self, start: &Key, end: Option<&Key>, limit: usize) -> Result<Vec<(Key, Value)>> {
        // Hash sharding scatters every key range across all shards:
        // fan the scan out to each owner thread, then merge the sorted
        // replies and re-apply the limit. Fresh reply channels — scans
        // are rare and the thread-local slot is sized for point ops.
        let mut pending = Vec::with_capacity(self.senders.len());
        for sender in &self.senders {
            let (tx, rx) = bounded::<Vec<(Key, Value)>>(1);
            sender
                .send(Request::Scan(start.clone(), end.cloned(), limit, tx))
                .map_err(|_| Error::Unavailable("shard worker gone".into()))?;
            pending.push(rx);
        }
        let mut rows = Vec::new();
        for rx in pending {
            rows.extend(
                rx.recv()
                    .map_err(|_| Error::Unavailable("shard worker gone".into()))?,
            );
        }
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows.truncate(limit);
        Ok(rows)
    }

    fn resident_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    fn label(&self) -> String {
        "dragonfly-like".into()
    }
}

impl Drop for DragonflyLike {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Request::Stop);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_across_shards() {
        let d = DragonflyLike::new(4);
        for i in 0..200 {
            d.put(Key::from(format!("k{i}")), Value::from(format!("v{i}")))
                .unwrap();
        }
        for i in 0..200 {
            assert_eq!(
                d.get(&Key::from(format!("k{i}"))).unwrap(),
                Some(Value::from(format!("v{i}")))
            );
        }
        d.delete(&Key::from("k0")).unwrap();
        assert_eq!(d.get(&Key::from("k0")).unwrap(), None);
    }

    #[test]
    fn byte_accounting() {
        let d = DragonflyLike::new(2);
        d.put(Key::from("k"), Value::from("value")).unwrap();
        assert_eq!(d.resident_bytes(), 1 + 5 + 40);
        d.put(Key::from("k"), Value::from("v")).unwrap();
        assert_eq!(d.resident_bytes(), 1 + 1 + 40);
        d.delete(&Key::from("k")).unwrap();
        assert_eq!(d.resident_bytes(), 0);
    }

    #[test]
    fn parallel_clients_scale() {
        use std::sync::Arc;
        let d = Arc::new(DragonflyLike::new(4));
        let mut handles = vec![];
        for t in 0..4 {
            let d = d.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    d.put(Key::from(format!("t{t}-k{i}")), Value::from("v"))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            d.get(&Key::from("t3-k499")).unwrap(),
            Some(Value::from("v"))
        );
    }
}
