//! Redis-like baseline: one event-loop thread, rich object headers,
//! optional append-only-file persistence.
//!
//! The signature property is the *single serialization point*: every
//! command runs under one global lock, exactly like commands queue
//! behind Redis's event loop. Per-entry memory overhead models Redis's
//! `robj`/dict-entry/SDS headers (~90 bytes per key-value pair). AOF
//! mode logs every write before applying it, doubling as the
//! "Redis-AOF" comparator of Figure 11 (replica cost is applied by the
//! harness, as in the paper).

use crate::burn_cpu_us;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::Path;
use tb_common::hash::FxBuildHasher;
use tb_common::{Key, KvEngine, Result, Value};
use tb_lsm::wal::{SyncPolicy, Wal};

/// Modeled per-entry header overhead (dictEntry + robj + SDS headers).
const ENTRY_OVERHEAD: u64 = 90;

/// Modeled per-command CPU: RESP parsing, dispatch, robj handling.
/// Calibrated so the simulated event loop lands near real Redis's
/// ~150-250k commands/s/core.
const OP_COST_US: u64 = 2;

struct State {
    map: HashMap<Key, Value, FxBuildHasher>,
    bytes: u64,
    aof: Option<Wal>,
    /// Local frame sequence: the AOF has no LSN concept, so records
    /// carry a counter purely to satisfy the WAL framing.
    aof_seq: u64,
}

impl State {
    fn log_aof(&mut self, rec: &[u8]) -> Result<()> {
        if let Some(aof) = self.aof.as_mut() {
            self.aof_seq += 1;
            aof.append(self.aof_seq, rec)?;
        }
        Ok(())
    }
}

/// Single-threaded in-memory store with optional AOF.
pub struct RedisLike {
    state: Mutex<State>,
    aof_enabled: bool,
}

impl RedisLike {
    /// Pure cache mode (the "Redis" rows of Figures 7 and 10).
    pub fn new() -> Self {
        Self {
            state: Mutex::new(State {
                map: HashMap::default(),
                bytes: 0,
                aof: None,
                aof_seq: 0,
            }),
            aof_enabled: false,
        }
    }

    /// AOF-persistent mode (the "Redis-AOF" rows of Figure 11).
    /// Replays any existing log on open.
    pub fn with_aof(dir: &Path) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("redis.aof");
        let mut map: HashMap<Key, Value, FxBuildHasher> = HashMap::default();
        let mut aof_seq = 0;
        for (lsn, rec) in Wal::replay(&path)? {
            apply_aof(&mut map, &rec)?;
            aof_seq = aof_seq.max(lsn);
        }
        let bytes = map
            .iter()
            .map(|(k, v)| k.len() as u64 + v.len() as u64 + ENTRY_OVERHEAD)
            .sum();
        Ok(Self {
            state: Mutex::new(State {
                map,
                bytes,
                aof: Some(Wal::open(&path, SyncPolicy::OsBuffer)?),
                aof_seq,
            }),
            aof_enabled: true,
        })
    }
}

impl Default for RedisLike {
    fn default() -> Self {
        Self::new()
    }
}

fn encode_aof(key: &Key, value: Option<&Value>) -> Vec<u8> {
    let mut out = Vec::with_capacity(key.len() + 16);
    match value {
        Some(v) => {
            out.push(0);
            out.extend_from_slice(&(key.len() as u32).to_le_bytes());
            out.extend_from_slice(key.as_slice());
            out.extend_from_slice(v.as_slice());
        }
        None => {
            out.push(1);
            out.extend_from_slice(&(key.len() as u32).to_le_bytes());
            out.extend_from_slice(key.as_slice());
        }
    }
    out
}

fn apply_aof(map: &mut HashMap<Key, Value, FxBuildHasher>, rec: &[u8]) -> Result<()> {
    use tb_common::Error;
    if rec.len() < 5 {
        return Err(Error::Corruption("short AOF record".into()));
    }
    let flag = rec[0];
    let klen = u32::from_le_bytes(rec[1..5].try_into().unwrap()) as usize;
    if 5 + klen > rec.len() {
        return Err(Error::Corruption("AOF key overflow".into()));
    }
    let key = Key::copy_from(&rec[5..5 + klen]);
    match flag {
        0 => {
            map.insert(key, Value::copy_from(&rec[5 + klen..]));
            Ok(())
        }
        1 => {
            map.remove(&key);
            Ok(())
        }
        other => Err(Error::Corruption(format!("bad AOF flag {other}"))),
    }
}

impl KvEngine for RedisLike {
    fn get(&self, key: &Key) -> Result<Option<Value>> {
        // One global lock = the event-loop serialization point; the
        // burn models command parsing and dispatch.
        let s = self.state.lock();
        burn_cpu_us(OP_COST_US);
        Ok(s.map.get(key).cloned())
    }

    fn put(&self, key: Key, value: Value) -> Result<()> {
        let mut s = self.state.lock();
        burn_cpu_us(OP_COST_US);
        s.log_aof(&encode_aof(&key, Some(&value)))?;
        let klen = key.len() as u64;
        let new_vlen = value.len() as u64;
        match s.map.insert(key, value) {
            // Replacement: key and header were already counted.
            Some(old) => s.bytes = s.bytes - old.len() as u64 + new_vlen,
            None => s.bytes += klen + new_vlen + ENTRY_OVERHEAD,
        }
        Ok(())
    }

    fn delete(&self, key: &Key) -> Result<()> {
        let mut s = self.state.lock();
        s.log_aof(&encode_aof(key, None))?;
        if let Some(old) = s.map.remove(key) {
            s.bytes -= key.len() as u64 + old.len() as u64 + ENTRY_OVERHEAD;
        }
        Ok(())
    }

    fn scan(&self, start: &Key, end: Option<&Key>, limit: usize) -> Result<Vec<(Key, Value)>> {
        // Redis's keyspace is an unordered dict: a range scan is a full
        // enumeration plus a sort, like SCAN + MATCH + client-side
        // ordering. Runs under the event-loop lock like every command.
        let s = self.state.lock();
        burn_cpu_us(OP_COST_US);
        let mut rows: Vec<(Key, Value)> = s
            .map
            .iter()
            .filter(|(k, _)| *k >= start && end.is_none_or(|e| *k < e))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows.truncate(limit);
        Ok(rows)
    }

    fn cas(&self, key: Key, expected: Option<&Value>, new: Value) -> Result<()> {
        // Atomic by construction: the whole read-compare-write runs
        // under the event-loop lock, like a real Redis command.
        let mut s = self.state.lock();
        burn_cpu_us(OP_COST_US);
        let matches = match (s.map.get(&key), expected) {
            (Some(c), Some(e)) => c == e,
            (None, None) => true,
            _ => false,
        };
        if !matches {
            return Err(tb_common::Error::CasMismatch);
        }
        s.log_aof(&encode_aof(&key, Some(&new)))?;
        let klen = key.len() as u64;
        let new_vlen = new.len() as u64;
        match s.map.insert(key, new) {
            Some(old) => s.bytes = s.bytes - old.len() as u64 + new_vlen,
            None => s.bytes += klen + new_vlen + ENTRY_OVERHEAD,
        }
        Ok(())
    }

    fn resident_bytes(&self) -> u64 {
        self.state.lock().bytes
    }

    fn label(&self) -> String {
        if self.aof_enabled {
            "redis-aof".into()
        } else {
            "redis-like".into()
        }
    }

    fn sync(&self) -> Result<()> {
        let mut s = self.state.lock();
        if let Some(aof) = s.aof.as_mut() {
            aof.sync()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tb-redis-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_and_overhead() {
        let r = RedisLike::new();
        r.put(Key::from("k"), Value::from("value")).unwrap();
        assert_eq!(r.get(&Key::from("k")).unwrap(), Some(Value::from("value")));
        // 1 + 5 + 90 overhead.
        assert_eq!(r.resident_bytes(), 96);
        r.put(Key::from("k"), Value::from("vv")).unwrap();
        assert_eq!(r.resident_bytes(), 93);
        r.delete(&Key::from("k")).unwrap();
        assert_eq!(r.resident_bytes(), 0);
    }

    #[test]
    fn aof_recovers_after_restart() {
        let dir = tmpdir("aof");
        {
            let r = RedisLike::with_aof(&dir).unwrap();
            r.put(Key::from("persist"), Value::from("me")).unwrap();
            r.put(Key::from("gone"), Value::from("x")).unwrap();
            r.delete(&Key::from("gone")).unwrap();
            r.sync().unwrap();
        }
        let r = RedisLike::with_aof(&dir).unwrap();
        assert_eq!(
            r.get(&Key::from("persist")).unwrap(),
            Some(Value::from("me"))
        );
        assert_eq!(r.get(&Key::from("gone")).unwrap(), None);
        assert_eq!(r.label(), "redis-aof");
    }
}
