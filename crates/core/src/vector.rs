//! In-memory approximate-nearest-neighbor index (the VSAG role, §3).
//!
//! A compact HNSW (hierarchical navigable small world) graph supporting
//! real-time insertion and deletion. Deletions are tombstoned: the node
//! keeps routing (its edges stay useful) but never appears in results —
//! the standard approach for dynamic HNSW.

use parking_lot::RwLock;
use std::collections::{BinaryHeap, HashSet};

/// HNSW construction/search parameters.
#[derive(Debug, Clone, Copy)]
pub struct HnswConfig {
    /// Max neighbors per node per layer.
    pub m: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Beam width during search.
    pub ef_search: usize,
}

impl Default for HnswConfig {
    fn default() -> Self {
        Self {
            m: 16,
            ef_construction: 100,
            ef_search: 64,
        }
    }
}

struct Node {
    vector: Vec<f32>,
    /// Neighbor lists, one per layer (index 0 = base layer).
    neighbors: Vec<Vec<usize>>,
    deleted: bool,
    /// External identifier.
    id: u64,
}

struct Graph {
    nodes: Vec<Node>,
    entry: Option<usize>,
    max_layer: usize,
    live_count: usize,
}

/// A thread-safe HNSW index over f32 vectors (L2 distance).
pub struct HnswIndex {
    config: HnswConfig,
    dim: usize,
    graph: RwLock<Graph>,
    /// Deterministic level generator state.
    rng_state: RwLock<u64>,
}

fn l2(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Max-heap entry by distance (for result pruning).
#[derive(PartialEq)]
struct Candidate {
    dist: f32,
    idx: usize,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .partial_cmp(&other.dist)
            .expect("distances are finite")
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl HnswIndex {
    pub fn new(dim: usize, config: HnswConfig) -> Self {
        Self {
            config,
            dim,
            graph: RwLock::new(Graph {
                nodes: Vec::new(),
                entry: None,
                max_layer: 0,
                live_count: 0,
            }),
            rng_state: RwLock::new(0x853c_49e6_748f_ea9b),
        }
    }

    /// Number of live (non-deleted) vectors.
    pub fn len(&self) -> usize {
        self.graph.read().live_count
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn random_level(&self) -> usize {
        // xorshift + geometric level distribution with p = 1/e.
        let mut s = self.rng_state.write();
        let mut x = *s;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *s = x;
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        (-(u.max(1e-12)).ln() * 0.36) as usize
    }

    /// Inserts a vector under an external id.
    pub fn insert(&self, id: u64, vector: Vec<f32>) {
        assert_eq!(vector.len(), self.dim, "dimension mismatch");
        let level = self.random_level();
        let mut g = self.graph.write();
        let idx = g.nodes.len();
        g.nodes.push(Node {
            vector,
            neighbors: vec![Vec::new(); level + 1],
            deleted: false,
            id,
        });
        g.live_count += 1;

        let Some(mut cur) = g.entry else {
            g.entry = Some(idx);
            g.max_layer = level;
            return;
        };

        let query = g.nodes[idx].vector.clone();
        // Greedy descent through layers above the new node's level.
        let top = g.max_layer;
        for layer in ((level + 1)..=top).rev() {
            cur = greedy_closest(&g, &query, cur, layer);
        }
        // Connect on each layer from min(level, top) down.
        for layer in (0..=level.min(top)).rev() {
            let found = beam_search(&g, &query, cur, layer, self.config.ef_construction);
            let m = if layer == 0 {
                self.config.m * 2
            } else {
                self.config.m
            };
            let selected: Vec<usize> = found.iter().take(m).map(|c| c.idx).collect();
            for &n in &selected {
                g.nodes[idx].neighbors[layer].push(n);
                g.nodes[n].neighbors[layer].push(idx);
                // Prune over-full neighbor lists.
                if g.nodes[n].neighbors[layer].len() > m * 2 {
                    let nv = g.nodes[n].vector.clone();
                    let mut neigh = std::mem::take(&mut g.nodes[n].neighbors[layer]);
                    neigh.sort_by(|&a, &b| {
                        l2(&g.nodes[a].vector, &nv)
                            .partial_cmp(&l2(&g.nodes[b].vector, &nv))
                            .expect("finite")
                    });
                    neigh.truncate(m);
                    g.nodes[n].neighbors[layer] = neigh;
                }
            }
            if let Some(best) = selected.first() {
                cur = *best;
            }
        }
        if level > g.max_layer {
            g.max_layer = level;
            g.entry = Some(idx);
        }
    }

    /// Tombstones a vector by external id; true when found live.
    pub fn delete(&self, id: u64) -> bool {
        let mut g = self.graph.write();
        for node in g.nodes.iter_mut() {
            if node.id == id && !node.deleted {
                node.deleted = true;
                g.live_count -= 1;
                return true;
            }
        }
        false
    }

    /// Returns the `k` nearest live vectors as `(id, distance²)`.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<(u64, f32)> {
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        let g = self.graph.read();
        let Some(mut cur) = g.entry else {
            return vec![];
        };
        for layer in (1..=g.max_layer).rev() {
            cur = greedy_closest(&g, query, cur, layer);
        }
        let ef = self.config.ef_search.max(k);
        let found = beam_search(&g, query, cur, 0, ef);
        found
            .into_iter()
            .filter(|c| !g.nodes[c.idx].deleted)
            .take(k)
            .map(|c| (g.nodes[c.idx].id, c.dist))
            .collect()
    }
}

fn greedy_closest(g: &Graph, query: &[f32], start: usize, layer: usize) -> usize {
    let mut cur = start;
    let mut cur_dist = l2(&g.nodes[cur].vector, query);
    loop {
        let mut improved = false;
        if layer < g.nodes[cur].neighbors.len() {
            for &n in &g.nodes[cur].neighbors[layer] {
                let d = l2(&g.nodes[n].vector, query);
                if d < cur_dist {
                    cur = n;
                    cur_dist = d;
                    improved = true;
                }
            }
        }
        if !improved {
            return cur;
        }
    }
}

/// Beam search on one layer; returns candidates sorted by distance.
fn beam_search(g: &Graph, query: &[f32], start: usize, layer: usize, ef: usize) -> Vec<Candidate> {
    let mut visited = HashSet::new();
    visited.insert(start);
    let start_dist = l2(&g.nodes[start].vector, query);
    // `results` is a max-heap (worst at top); `frontier` explores closest-first.
    let mut results: BinaryHeap<Candidate> = BinaryHeap::new();
    results.push(Candidate {
        dist: start_dist,
        idx: start,
    });
    let mut frontier: BinaryHeap<std::cmp::Reverse<Candidate>> = BinaryHeap::new();
    frontier.push(std::cmp::Reverse(Candidate {
        dist: start_dist,
        idx: start,
    }));

    while let Some(std::cmp::Reverse(cand)) = frontier.pop() {
        let worst = results.peek().map(|c| c.dist).unwrap_or(f32::INFINITY);
        if cand.dist > worst && results.len() >= ef {
            break;
        }
        if layer < g.nodes[cand.idx].neighbors.len() {
            for &n in &g.nodes[cand.idx].neighbors[layer] {
                if !visited.insert(n) {
                    continue;
                }
                let d = l2(&g.nodes[n].vector, query);
                let worst = results.peek().map(|c| c.dist).unwrap_or(f32::INFINITY);
                if results.len() < ef || d < worst {
                    results.push(Candidate { dist: d, idx: n });
                    if results.len() > ef {
                        results.pop();
                    }
                    frontier.push(std::cmp::Reverse(Candidate { dist: d, idx: n }));
                }
            }
        }
    }
    let mut out: Vec<Candidate> = results.into_vec();
    out.sort_by(|a, b| a.dist.partial_cmp(&b.dist).expect("finite"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect()
    }

    fn brute_force(vectors: &[Vec<f32>], query: &[f32], k: usize) -> Vec<u64> {
        let mut scored: Vec<(u64, f32)> = vectors
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u64, l2(v, query)))
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        scored.into_iter().take(k).map(|(i, _)| i).collect()
    }

    #[test]
    fn empty_index() {
        let idx = HnswIndex::new(8, HnswConfig::default());
        assert!(idx.is_empty());
        assert!(idx.search(&[0.0; 8], 5).is_empty());
    }

    #[test]
    fn exact_match_found() {
        let idx = HnswIndex::new(4, HnswConfig::default());
        let vecs = random_vectors(100, 4, 1);
        for (i, v) in vecs.iter().enumerate() {
            idx.insert(i as u64, v.clone());
        }
        let hits = idx.search(&vecs[42], 1);
        assert_eq!(hits[0].0, 42);
        assert!(hits[0].1 < 1e-9);
    }

    #[test]
    fn recall_against_brute_force() {
        let dim = 16;
        let vecs = random_vectors(1000, dim, 7);
        let idx = HnswIndex::new(dim, HnswConfig::default());
        for (i, v) in vecs.iter().enumerate() {
            idx.insert(i as u64, v.clone());
        }
        let queries = random_vectors(20, dim, 99);
        let mut recall_sum = 0.0;
        for q in &queries {
            let truth: HashSet<u64> = brute_force(&vecs, q, 10).into_iter().collect();
            let got: HashSet<u64> = idx.search(q, 10).into_iter().map(|(i, _)| i).collect();
            recall_sum += truth.intersection(&got).count() as f64 / 10.0;
        }
        let recall = recall_sum / queries.len() as f64;
        assert!(recall > 0.8, "recall@10 too low: {recall}");
    }

    #[test]
    fn deletion_hides_vectors() {
        let idx = HnswIndex::new(4, HnswConfig::default());
        let vecs = random_vectors(50, 4, 3);
        for (i, v) in vecs.iter().enumerate() {
            idx.insert(i as u64, v.clone());
        }
        assert_eq!(idx.len(), 50);
        assert!(idx.delete(10));
        assert!(!idx.delete(10), "double delete");
        assert_eq!(idx.len(), 49);
        let hits = idx.search(&vecs[10], 5);
        assert!(hits.iter().all(|(id, _)| *id != 10), "deleted id surfaced");
    }

    #[test]
    fn results_are_distance_sorted() {
        let idx = HnswIndex::new(8, HnswConfig::default());
        for (i, v) in random_vectors(300, 8, 5).iter().enumerate() {
            idx.insert(i as u64, v.clone());
        }
        let hits = idx.search(&random_vectors(1, 8, 17)[0], 10);
        for w in hits.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(hits.len(), 10);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let idx = HnswIndex::new(4, HnswConfig::default());
        idx.insert(0, vec![0.0; 5]);
    }
}
