//! Online access-interval statistics (§6.5.3).
//!
//! The paper's Case 1 chooses between Raw / PMem / Compression by
//! "collecting the average access interval for a key in the real
//! workload" and comparing it against the Table 3 break-even intervals.
//! This module is that collector: a spatially-sampled map of
//! key → last-access time whose mean re-access interval plugs straight
//! into `tb_costmodel::BreakEvenTable::recommend`.
//!
//! Sampling uses the same fixed-rate spatial hashing as SHARDS: a key
//! is tracked iff its hash falls below the sampling threshold, so *all*
//! accesses to a tracked key are observed and its re-access intervals
//! are exact. The tracked-key population is additionally capped to
//! bound memory on unbounded key spaces.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tb_common::hash::FxBuildHasher;
use tb_common::{fx_hash, Clock, Key};

/// Default spatial sampling rate (1/64 of keys tracked).
pub const DEFAULT_SAMPLING_RATE: f64 = 1.0 / 64.0;

/// Default cap on tracked keys.
pub const DEFAULT_MAX_TRACKED: usize = 65_536;

/// Collects mean key re-access intervals from a live access stream.
pub struct AccessIntervalTracker {
    clock: Arc<dyn Clock>,
    sampling_rate: f64,
    max_tracked: usize,
    last_access: Mutex<HashMap<Key, u64, FxBuildHasher>>,
    interval_sum_nanos: AtomicU64,
    interval_count: AtomicU64,
}

impl AccessIntervalTracker {
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self::with_config(clock, DEFAULT_SAMPLING_RATE, DEFAULT_MAX_TRACKED)
    }

    /// Tracker with an explicit sampling rate (`(0, 1]`) and tracked-key
    /// cap.
    pub fn with_config(clock: Arc<dyn Clock>, sampling_rate: f64, max_tracked: usize) -> Self {
        assert!(
            sampling_rate > 0.0 && sampling_rate <= 1.0,
            "sampling rate must be in (0, 1], got {sampling_rate}"
        );
        Self {
            clock,
            sampling_rate,
            max_tracked,
            last_access: Mutex::new(HashMap::default()),
            interval_sum_nanos: AtomicU64::new(0),
            interval_count: AtomicU64::new(0),
        }
    }

    #[inline]
    fn sampled(&self, key: &Key) -> bool {
        // High bits, independent of the sharding use of fx_hash.
        let u = (fx_hash(key.as_slice()) >> 11) as f64 / (1u64 << 53) as f64;
        u < self.sampling_rate
    }

    /// Observes one access to `key`. Cheap for unsampled keys (one hash).
    pub fn record(&self, key: &Key) {
        if !self.sampled(key) {
            return;
        }
        let now = self.clock.now_nanos();
        let mut map = self.last_access.lock();
        match map.get_mut(key) {
            Some(prev) => {
                let delta = now.saturating_sub(*prev);
                *prev = now;
                drop(map);
                self.interval_sum_nanos.fetch_add(delta, Ordering::Relaxed);
                self.interval_count.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                if map.len() < self.max_tracked {
                    map.insert(key.clone(), now);
                }
            }
        }
    }

    /// Mean re-access interval in seconds, or `None` before any key has
    /// been re-accessed. First accesses (cold misses) do not count — the
    /// paper's statistic is the interval *between* accesses.
    pub fn mean_interval_secs(&self) -> Option<f64> {
        let count = self.interval_count.load(Ordering::Relaxed);
        if count == 0 {
            return None;
        }
        let sum = self.interval_sum_nanos.load(Ordering::Relaxed);
        Some(sum as f64 / count as f64 / 1e9)
    }

    /// Number of distinct keys currently tracked.
    pub fn tracked_keys(&self) -> usize {
        self.last_access.lock().len()
    }

    /// Number of re-access intervals observed.
    pub fn interval_count(&self) -> u64 {
        self.interval_count.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use tb_common::ManualClock;

    fn k(i: usize) -> Key {
        Key::from(format!("key-{i:05}"))
    }

    #[test]
    fn mean_interval_matches_access_pattern() {
        let clock = ManualClock::new();
        let t = AccessIntervalTracker::with_config(clock.clone(), 1.0, 1 << 20);
        // Access the same key every 10 seconds, 5 times.
        for _ in 0..5 {
            t.record(&k(1));
            clock.advance(Duration::from_secs(10));
        }
        let mean = t.mean_interval_secs().unwrap();
        assert!((mean - 10.0).abs() < 1e-9, "mean {mean}");
        assert_eq!(t.interval_count(), 4, "5 accesses = 4 intervals");
    }

    #[test]
    fn no_reaccess_means_no_estimate() {
        let clock = ManualClock::new();
        let t = AccessIntervalTracker::with_config(clock.clone(), 1.0, 1 << 20);
        for i in 0..100 {
            t.record(&k(i));
        }
        assert_eq!(t.mean_interval_secs(), None, "cold misses don't count");
        assert_eq!(t.tracked_keys(), 100);
    }

    #[test]
    fn mixed_hot_cold_averages() {
        let clock = ManualClock::new();
        let t = AccessIntervalTracker::with_config(clock.clone(), 1.0, 1 << 20);
        // Hot key every 1s (x10), cold key every 100s (x2).
        t.record(&k(1));
        t.record(&k(2));
        for _ in 0..10 {
            clock.advance(Duration::from_secs(1));
            t.record(&k(1));
        }
        clock.advance(Duration::from_secs(90));
        t.record(&k(2));
        // 10 intervals of 1s + 1 interval of 100s = 110s / 11.
        let mean = t.mean_interval_secs().unwrap();
        assert!((mean - 10.0).abs() < 1e-9, "mean {mean}");
    }

    #[test]
    fn sampling_tracks_a_fraction() {
        let clock = ManualClock::new();
        let t = AccessIntervalTracker::with_config(clock.clone(), 0.1, 1 << 20);
        for i in 0..10_000 {
            t.record(&k(i));
        }
        let tracked = t.tracked_keys();
        assert!(
            (500..2000).contains(&tracked),
            "~10% of 10k keys expected, got {tracked}"
        );
    }

    #[test]
    fn sampled_estimate_stays_unbiased() {
        // Spatial sampling keeps *all* accesses of tracked keys, so the
        // per-key interval statistics are exact; the mean over a uniform
        // population matches the full-rate tracker.
        let clock = ManualClock::new();
        let full = AccessIntervalTracker::with_config(clock.clone(), 1.0, 1 << 20);
        let sampled = AccessIntervalTracker::with_config(clock.clone(), 0.25, 1 << 20);
        for round in 0..20 {
            for i in 0..500 {
                full.record(&k(i));
                sampled.record(&k(i));
            }
            clock.advance(Duration::from_secs(60));
            let _ = round;
        }
        let f = full.mean_interval_secs().unwrap();
        let s = sampled.mean_interval_secs().unwrap();
        assert!(
            (f - s).abs() / f < 0.05,
            "sampled {s} vs full {f} drifted more than 5%"
        );
    }

    #[test]
    fn tracked_population_is_capped() {
        let clock = ManualClock::new();
        let t = AccessIntervalTracker::with_config(clock.clone(), 1.0, 100);
        for i in 0..10_000 {
            t.record(&k(i));
        }
        assert_eq!(t.tracked_keys(), 100);
        // Capped keys still produce intervals.
        clock.advance(Duration::from_secs(5));
        for i in 0..100 {
            t.record(&k(i));
        }
        assert!(t.interval_count() >= 100);
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn zero_rate_rejected() {
        let clock = ManualClock::new();
        let _ = AccessIntervalTracker::with_config(clock, 0.0, 10);
    }
}
