//! TierBase — a workload-driven, cost-optimized key-value store.
//!
//! Reproduction of *"TierBase: A Workload-Driven Cost-Optimized
//! Key-Value Store"* (Shen et al., ICDE 2025). The store combines:
//!
//! * a **cache tier** of sharded in-memory hash tables (DRAM and/or
//!   simulated PMem) with LRU eviction and optional replication,
//! * a **storage tier** (a disaggregated LSM engine) synchronized by
//!   **write-through** or **write-back** policies (§4.1),
//! * **persistence modes** for cache-resident deployments: WAL on disk
//!   or WAL on a persistent-memory ring buffer (§4.3),
//! * **pre-trained compression** (dictionary LZ or pattern-based PBC)
//!   of values (§4.2),
//! * **elastic threading** between single- and multi-thread modes
//!   (§4.4),
//! * Redis-style data types, CAS, wide-column access and vector search
//!   on top of the byte-string core (§3).
//!
//! ```no_run
//! use tierbase_core::{TierBase, TierBaseConfig, SyncPolicy};
//! use tb_common::{Key, Value, KvEngine};
//!
//! let tb = TierBase::open(
//!     TierBaseConfig::builder("/tmp/tierbase-demo")
//!         .cache_capacity(64 << 20)
//!         .policy(SyncPolicy::WriteThrough)
//!         .build(),
//! ).unwrap();
//! tb.put(Key::from("user:1"), Value::from("alice")).unwrap();
//! assert_eq!(tb.get(&Key::from("user:1")).unwrap(), Some(Value::from("alice")));
//! ```

pub mod config;
pub mod insight;
pub mod interval;
pub mod store;
pub mod types;
pub mod vector;
pub mod wide;

pub use config::{
    CompressionChoice, PersistenceMode, PmemTuning, SyncPolicy, TierBaseConfig,
    TierBaseConfigBuilder, WriteBackTuning,
};
pub use insight::{Action, Insight, InsightSnapshot, Suggestion};
pub use interval::AccessIntervalTracker;
pub use store::{TierBase, TierBaseStats};
pub use types::{DataTypes, ListEnd};
pub use vector::{HnswConfig, HnswIndex};
pub use wide::WideColumn;
