//! The tiered store: cache tier + storage tier + synchronization
//! policies + persistence + compression + elastic threading.

use crate::config::{CompressionChoice, PersistenceMode, SyncPolicy, TierBaseConfig};
use crate::interval::AccessIntervalTracker;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tb_cache::{CacheConfig, Lookup, ReplicatedCache};
use tb_common::{
    deadline_after, is_expired, read_varint, write_varint, Error, Key, KvEngine, Result, TtlState,
    Value,
};
use tb_compress::{CompressorChoice, PretrainedCompression, TzstdLevel};
use tb_elastic::ElasticGate;
use tb_lsm::{DisaggregatedStore, LsmConfig, LsmDb, NetworkModel};
use tb_pmem::{
    DramOnly, LatencyModel, PersistentRingBuffer, PmemDevice, RingConfig, SplitPlacement,
};

use tb_pmem::placement::PlacementPolicy;

/// Envelope flag bit: payload compressed by the trained compressor.
/// (A zero flags byte — the legacy `ENV_RAW` tag — still decodes.)
const ENV_COMPRESSED: u8 = 0b01;
/// Envelope flag bit: a varint expiry deadline (absolute clock
/// nanoseconds) precedes the payload.
const ENV_HAS_EXPIRY: u8 = 0b10;

/// Parses an envelope header: `(compressed, expires_at, payload offset)`.
fn parse_envelope(stored: &[u8]) -> Result<(bool, Option<u64>, usize)> {
    let (&flags, rest) = stored
        .split_first()
        .ok_or_else(|| Error::Corruption("empty stored value".into()))?;
    if flags & !(ENV_COMPRESSED | ENV_HAS_EXPIRY) != 0 {
        return Err(Error::Corruption(format!("bad value envelope {flags}")));
    }
    let compressed = flags & ENV_COMPRESSED != 0;
    if flags & ENV_HAS_EXPIRY != 0 {
        let mut pos = 0usize;
        let deadline = read_varint(rest, &mut pos)?;
        Ok((compressed, Some(deadline), 1 + pos))
    } else {
        Ok((compressed, None, 1))
    }
}

/// Reads just the expiry deadline from an envelope (cache re-population
/// and WAL replay need it without decompressing the payload).
fn envelope_expiry(stored: &Value) -> Option<u64> {
    parse_envelope(stored.as_slice())
        .map(|(_, exp, _)| exp)
        .unwrap_or(None)
}

/// Number of values sampled before compression auto-trains.
const AUTO_TRAIN_SAMPLES: usize = 256;

/// Operational counters.
#[derive(Debug, Default)]
pub struct TierBaseStats {
    pub puts: AtomicU64,
    pub gets: AtomicU64,
    pub deletes: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub storage_fetches: AtomicU64,
    pub dirty_flushes: AtomicU64,
    pub flushed_entries: AtomicU64,
    pub write_through_failures: AtomicU64,
    /// Keys lazily or actively reclaimed because their TTL passed.
    pub expired: AtomicU64,
}

impl TierBaseStats {
    /// Observed cache miss ratio (the `MR` of Eq. 3).
    pub fn miss_ratio(&self) -> f64 {
        let h = self.cache_hits.load(Ordering::Relaxed);
        let m = self.cache_misses.load(Ordering::Relaxed);
        if h + m == 0 {
            0.0
        } else {
            m as f64 / (h + m) as f64
        }
    }
}

struct Compression {
    unit: PretrainedCompression,
}

struct Inner {
    config: TierBaseConfig,
    cache: ReplicatedCache,
    storage: Option<DisaggregatedStore>,
    wal: Option<Mutex<tb_lsm::wal::Wal>>,
    /// Frame sequence for the cache WAL: the cache log is positional,
    /// so records carry a local counter to satisfy the LSN framing.
    wal_seq: AtomicU64,
    ring: Option<PersistentRingBuffer>,
    compression: Mutex<Option<Compression>>,
    train_samples: Mutex<Vec<Vec<u8>>>,
    ops_since_flush: AtomicU64,
    cas_lock: Mutex<()>,
    /// Fail the next N storage writes (failure-injection hook).
    inject_storage_failures: AtomicU64,
    /// §6.5.3 statistic: sampled mean key re-access interval, compared
    /// against Table 3 break-even intervals to pick a configuration.
    intervals: AccessIntervalTracker,
    pub stats: Arc<TierBaseStats>,
    _obs: tb_obs::SourceGuard,
}

/// The TierBase store.
pub struct TierBase {
    inner: Arc<Inner>,
    /// The container's CPU allocation: 1 permit in single-thread mode,
    /// N in multi-thread, 1..N under elastic control (§4.4).
    gate: Arc<ElasticGate>,
}

impl TierBase {
    /// Opens a store, running recovery appropriate to its configuration.
    pub fn open(config: TierBaseConfig) -> Result<Self> {
        std::fs::create_dir_all(&config.dir)?;

        let placement: Arc<dyn PlacementPolicy> = match &config.pmem {
            Some(t) => Arc::new(SplitPlacement {
                value_threshold: t.value_threshold,
            }),
            None => Arc::new(DramOnly),
        };
        let cache = ReplicatedCache::with_mode(
            CacheConfig {
                capacity_bytes: config.cache_capacity,
                shards: config.cache_shards,
                placement,
                // PMem-resident values pay Optane-like access latency.
                pmem_latency: config.pmem.map(|_| LatencyModel::optane()),
                clock: config.clock.clone(),
            },
            config.replicas,
            config.replication_mode,
        );

        let storage = if config.needs_storage_tier() {
            let db = Arc::new(LsmDb::open(LsmConfig::new(config.dir.join("storage")))?);
            let net = NetworkModel {
                rtt_us: config.storage_rtt_us,
                per_kib_us: if config.storage_rtt_us > 0 { 2 } else { 0 },
            };
            Some(DisaggregatedStore::new(db, net))
        } else {
            None
        };

        // Warm restart: restore the cache tier from the last snapshot
        // before any WAL replay (the WAL holds the newer writes).
        let snapshot_path = config.dir.join("cache.rdb");
        if snapshot_path.exists() {
            tb_cache::load_snapshot(cache.primary(), &snapshot_path)?;
        }

        let mut wal = None;
        let mut wal_seq = 0u64;
        let mut ring = None;
        match config.persistence {
            PersistenceMode::None => {}
            PersistenceMode::Wal => {
                let path = config.dir.join("cache.wal");
                // Replay persisted cache contents.
                for (lsn, rec) in tb_lsm::wal::Wal::replay(&path)? {
                    apply_log_record(&cache, &rec)?;
                    wal_seq = wal_seq.max(lsn);
                }
                wal = Some(Mutex::new(tb_lsm::wal::Wal::open(
                    &path,
                    tb_lsm::wal::SyncPolicy::OsBuffer,
                )?));
            }
            PersistenceMode::WalPmem => {
                let path = config.dir.join("cache.pmem");
                let device = if path.exists() {
                    Arc::new(PmemDevice::open(&path, LatencyModel::optane())?)
                } else {
                    Arc::new(PmemDevice::create(
                        &path,
                        config.pmem_ring_bytes,
                        LatencyModel::optane(),
                    )?)
                };
                let rb = if path.exists() {
                    PersistentRingBuffer::recover(device, RingConfig::default()).or_else(|_| {
                        // Fresh device: format it.
                        let d = Arc::new(PmemDevice::create(
                            &config.dir.join("cache.pmem"),
                            config.pmem_ring_bytes,
                            LatencyModel::optane(),
                        )?);
                        PersistentRingBuffer::create(d, RingConfig::default())
                    })?
                } else {
                    PersistentRingBuffer::create(device, RingConfig::default())?
                };
                for rec in rb.peek_all()? {
                    apply_log_record(&cache, &rec)?;
                }
                ring = Some(rb);
            }
        }

        // Threading model: operations execute in the caller's thread
        // but must hold one of the gate's permits — 1 permit is the
        // single-threaded event loop, N permits the multi-thread mode,
        // and elastic mode moves the permit count with load.
        let gate = ElasticGate::for_mode(config.threading, Default::default());
        let intervals = AccessIntervalTracker::new(config.clock.clone());

        let stats = Arc::new(TierBaseStats::default());
        let obs = {
            let stats = stats.clone();
            tb_obs::global().register_source(move |b| {
                let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
                b.counter("core_puts", c(&stats.puts));
                b.counter("core_gets", c(&stats.gets));
                b.counter("core_deletes", c(&stats.deletes));
                b.counter("core_cache_hits", c(&stats.cache_hits));
                b.counter("core_cache_misses", c(&stats.cache_misses));
                b.counter("core_storage_fetches", c(&stats.storage_fetches));
                b.counter("core_dirty_flushes", c(&stats.dirty_flushes));
                b.counter("core_flushed_entries", c(&stats.flushed_entries));
                b.counter(
                    "core_write_through_failures",
                    c(&stats.write_through_failures),
                );
                b.counter("core_expired", c(&stats.expired));
            })
        };
        Ok(Self {
            inner: Arc::new(Inner {
                config,
                cache,
                storage,
                wal,
                wal_seq: AtomicU64::new(wal_seq),
                ring,
                compression: Mutex::new(None),
                train_samples: Mutex::new(Vec::new()),
                ops_since_flush: AtomicU64::new(0),
                cas_lock: Mutex::new(()),
                inject_storage_failures: AtomicU64::new(0),
                intervals,
                stats,
                _obs: obs,
            }),
            gate,
        })
    }

    /// Store-wide counters.
    pub fn stats(&self) -> &TierBaseStats {
        &self.inner.stats
    }

    /// The store's configuration.
    pub fn config(&self) -> &TierBaseConfig {
        &self.inner.config
    }

    /// Pre-trains the configured compressor on sample values (the §4.2
    /// offline pre-training phase). No-op for `CompressionChoice::None`.
    pub fn train_compression(&self, samples: &[Vec<u8>]) {
        self.inner.train_compression(samples);
    }

    /// Retrains compression on fresh samples (monitor-triggered).
    pub fn retrain_compression(&self, samples: &[Vec<u8>]) {
        let guard = self.inner.compression.lock();
        if let Some(c) = guard.as_ref() {
            c.unit.retrain(samples);
        }
    }

    /// True when the compression monitor advises retraining.
    pub fn compression_should_retrain(&self) -> bool {
        self.inner
            .compression
            .lock()
            .as_ref()
            .map(|c| c.unit.should_retrain())
            .unwrap_or(false)
    }

    /// Fails the next `n` storage-tier writes (failure injection).
    pub fn inject_storage_write_failures(&self, n: u64) {
        self.inner
            .inject_storage_failures
            .store(n, Ordering::SeqCst);
    }

    /// Flushes write-back dirty data to the storage tier now.
    pub fn flush_dirty(&self) -> Result<usize> {
        self.inner.flush_dirty()
    }

    /// Writes queued but not yet replicated cache writes (only nonzero
    /// under [`tb_cache::ReplicationMode::Async`]).
    pub fn replication_lag(&self) -> usize {
        self.inner.cache.replication_lag()
    }

    /// Applies queued async replication to the replicas (the background
    /// replication thread's work, driven explicitly for determinism).
    pub fn drain_replication(&self) -> Result<usize> {
        self.inner.cache.drain_replication(usize::MAX)
    }

    /// Writes a point-in-time snapshot of the cache tier (Redis RDB
    /// analog) to `<dir>/cache.rdb`. [`open`](Self::open) restores it
    /// automatically for a warm restart. Returns the entry count.
    pub fn save_cache_snapshot(&self) -> Result<usize> {
        let path = self.inner.config.dir.join("cache.rdb");
        tb_cache::write_snapshot(self.inner.cache.primary(), &path)
    }

    /// Inserts a value that expires `ttl` from now (Redis `SETEX`). The
    /// deadline travels in the value envelope, so both tiers and the
    /// persistence log agree on when the key dies.
    pub fn put_with_ttl(&self, key: Key, value: Value, ttl: Duration) -> Result<()> {
        self.dispatch(move |inner| {
            let deadline = deadline_after(inner.config.clock.now_nanos(), ttl);
            inner.do_put_with_expiry(key, value, Some(deadline))
        })
    }

    /// Sets a TTL on an existing key (Redis `EXPIRE`). Returns `false`
    /// when the key does not exist.
    pub fn expire(&self, key: &Key, ttl: Duration) -> Result<bool> {
        let key = key.clone();
        self.dispatch(move |inner| inner.do_set_ttl(&key, Some(ttl)))
    }

    /// Removes a key's TTL (Redis `PERSIST`). Returns `false` when the
    /// key does not exist.
    pub fn persist(&self, key: &Key) -> Result<bool> {
        let key = key.clone();
        self.dispatch(move |inner| inner.do_set_ttl(&key, None))
    }

    /// The key's TTL (Redis `TTL`): missing, no expiry, or remaining
    /// lifetime.
    pub fn ttl(&self, key: &Key) -> Result<TtlState> {
        let key = key.clone();
        self.dispatch(move |inner| inner.do_ttl(&key))
    }

    /// Ordered scan of live keys starting with `prefix`, merged across
    /// both tiers: the storage tier provides the base set (one remote
    /// round-trip) and live cache entries shadow it, so unflushed
    /// write-back data is visible. Read-only — no recency updates and
    /// no lazy reclamation. Like Redis's lazy expiry, a key whose
    /// freshest (dirty, unflushed) version has expired may transiently
    /// reappear from its older storage copy until a read or sweep
    /// reclaims it.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Key, Value)>> {
        let prefix = prefix.to_vec();
        self.dispatch(move |inner| inner.do_scan_prefix(&prefix))
    }

    /// Ordered range scan of live keys (`start <= key < end`,
    /// `end = None` = unbounded above, at most `limit` rows), merged
    /// across both tiers with the same semantics as
    /// [`TierBase::scan_prefix`]: the storage tier provides the base
    /// set (one remote round-trip through the engine's batched scan)
    /// and live cache entries shadow it. TTL-expired versions are
    /// masked in both tiers. Cost is proportional to the key range, not
    /// to `limit` — the cache merge needs the full range before
    /// truncating.
    pub fn scan_range(
        &self,
        start: &Key,
        end: Option<&Key>,
        limit: usize,
    ) -> Result<Vec<(Key, Value)>> {
        let start = start.clone();
        let end = end.cloned();
        self.dispatch(move |inner| inner.do_scan_range(&start, end.as_ref(), limit))
    }

    /// Active expiration pass (Redis's periodic expire cycle): reclaims
    /// every expired cache entry and propagates the deletes to the
    /// storage tier and persistence log. Returns the number of keys
    /// reclaimed.
    pub fn sweep_expired(&self) -> Result<usize> {
        self.dispatch(move |inner| inner.do_sweep_expired())
    }

    /// Bytes of not-yet-synchronized dirty data.
    pub fn dirty_bytes(&self) -> u64 {
        self.inner.cache.primary().dirty_bytes()
    }

    /// The concurrency gate (permit count, boost/shrink statistics).
    pub fn gate(&self) -> &Arc<ElasticGate> {
        &self.gate
    }

    /// The §6.5.3 statistic: sampled mean key re-access interval in
    /// seconds (`None` until some key has been re-accessed). Compare
    /// against `tb_costmodel::BreakEvenTable` break-even intervals to
    /// choose between Raw / PMem / compression configurations.
    pub fn mean_access_interval_secs(&self) -> Option<f64> {
        self.inner.intervals.mean_interval_secs()
    }

    /// The underlying access-interval tracker (diagnostics).
    pub fn access_intervals(&self) -> &AccessIntervalTracker {
        &self.inner.intervals
    }

    fn dispatch<T: Send + 'static>(&self, f: impl FnOnce(&Inner) -> T + Send + 'static) -> T {
        self.gate.run(|| f(&self.inner))
    }
}

impl KvEngine for TierBase {
    fn get(&self, key: &Key) -> Result<Option<Value>> {
        let key = key.clone();
        self.dispatch(move |inner| inner.do_get(&key))
    }

    fn put(&self, key: Key, value: Value) -> Result<()> {
        self.dispatch(move |inner| inner.do_put(key, value))
    }

    fn delete(&self, key: &Key) -> Result<()> {
        let key = key.clone();
        self.dispatch(move |inner| inner.do_delete(&key))
    }

    fn resident_bytes(&self) -> u64 {
        self.inner.resident_bytes()
    }

    fn label(&self) -> String {
        let i = &self.inner;
        let mut parts = vec!["tierbase".to_string()];
        parts.push(
            match i.config.policy {
                SyncPolicy::InMemory => "mem",
                SyncPolicy::WriteThrough => "wt",
                SyncPolicy::WriteBack => "wb",
            }
            .into(),
        );
        match i.config.persistence {
            PersistenceMode::Wal => parts.push("wal".into()),
            PersistenceMode::WalPmem => parts.push("wal-pmem".into()),
            PersistenceMode::None => {}
        }
        match i.config.compression {
            CompressionChoice::Tzstd => parts.push("tzstd".into()),
            CompressionChoice::TzstdDict => parts.push("tzstd-d".into()),
            CompressionChoice::Pbc => parts.push("pbc".into()),
            CompressionChoice::None => {}
        }
        if i.config.pmem.is_some() {
            parts.push("pmem".into());
        }
        parts.join("-")
    }

    fn sync(&self) -> Result<()> {
        let inner = self.inner.clone();
        self.dispatch(move |_| inner.do_sync())
    }

    fn multi_get(&self, keys: &[Key]) -> Result<Vec<Option<Value>>> {
        let keys = keys.to_vec();
        self.dispatch(move |inner| inner.do_multi_get(&keys))
    }

    fn multi_put(&self, pairs: Vec<(Key, Value)>) -> Result<()> {
        self.dispatch(move |inner| inner.do_multi_put(pairs))
    }

    fn scan(&self, start: &Key, end: Option<&Key>, limit: usize) -> Result<Vec<(Key, Value)>> {
        TierBase::scan_range(self, start, end, limit)
    }

    fn cas(&self, key: Key, expected: Option<&Value>, new: Value) -> Result<()> {
        let expected = expected.cloned();
        self.dispatch(move |inner| {
            let _guard = inner.cas_lock.lock();
            let current = inner.do_get(&key)?;
            let matches = match (&current, &expected) {
                (Some(c), Some(e)) => c == e,
                (None, None) => true,
                _ => false,
            };
            if matches {
                inner.do_put(key, new)
            } else {
                Err(Error::CasMismatch)
            }
        })
    }
}

impl Inner {
    // ----- value envelope ------------------------------------------------

    fn seal_envelope(payload: &[u8], compressed: bool, expires_at: Option<u64>) -> Value {
        let mut out = Vec::with_capacity(payload.len() + 11);
        let mut flags = 0u8;
        if compressed {
            flags |= ENV_COMPRESSED;
        }
        if expires_at.is_some() {
            flags |= ENV_HAS_EXPIRY;
        }
        out.push(flags);
        if let Some(deadline) = expires_at {
            write_varint(&mut out, deadline);
        }
        out.extend_from_slice(payload);
        Value::from(out)
    }

    fn encode_value(&self, value: &Value, expires_at: Option<u64>) -> Value {
        if self.config.compression == CompressionChoice::None {
            return Self::seal_envelope(value.as_slice(), false, expires_at);
        }
        // Auto-train once enough samples accumulate.
        {
            let guard = self.compression.lock();
            if guard.is_none() {
                drop(guard);
                let mut samples = self.train_samples.lock();
                samples.push(value.as_slice().to_vec());
                if samples.len() >= AUTO_TRAIN_SAMPLES {
                    let taken = std::mem::take(&mut *samples);
                    drop(samples);
                    self.train_compression(&taken);
                } else {
                    return Self::seal_envelope(value.as_slice(), false, expires_at);
                }
            }
        }
        let guard = self.compression.lock();
        let unit = &guard.as_ref().expect("trained above").unit;
        let compressed = unit.compress(value.as_slice());
        if compressed.len() + 1 < value.len() {
            Self::seal_envelope(&compressed, true, expires_at)
        } else {
            Self::seal_envelope(value.as_slice(), false, expires_at)
        }
    }

    /// Decodes an envelope into `(value, expires_at)`.
    fn decode_envelope(&self, stored: &Value) -> Result<(Value, Option<u64>)> {
        let (compressed, expires_at, off) = parse_envelope(stored.as_slice())?;
        if compressed {
            let guard = self.compression.lock();
            let unit = &guard
                .as_ref()
                .ok_or_else(|| Error::Corruption("compressed value but no trained model".into()))?
                .unit;
            Ok((
                Value::from(unit.decompress(&stored.as_slice()[off..])?),
                expires_at,
            ))
        } else {
            // Zero-copy: the stored Bytes minus the envelope header.
            Ok((Value::from_bytes(stored.0.slice(off..)), expires_at))
        }
    }

    fn decode_value(&self, stored: &Value) -> Result<Value> {
        self.decode_envelope(stored).map(|(v, _)| v)
    }

    fn train_compression(&self, samples: &[Vec<u8>]) {
        let choice = match self.config.compression {
            CompressionChoice::None => return,
            CompressionChoice::Tzstd => CompressorChoice::Tzstd,
            CompressionChoice::TzstdDict => CompressorChoice::TzstdDict,
            CompressionChoice::Pbc => CompressorChoice::Pbc,
        };
        let unit = PretrainedCompression::train(choice, samples, TzstdLevel(1));
        *self.compression.lock() = Some(Compression { unit });
    }

    // ----- core operations ------------------------------------------------

    fn do_get(&self, key: &Key) -> Result<Option<Value>> {
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        self.intervals.record(key);
        match self.cache.primary().lookup(key) {
            Lookup::Live(stored) => {
                self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                Ok(Some(self.decode_value(&stored)?))
            }
            Lookup::Expired => {
                // The freshest version of the key has expired; the
                // storage copy is stale by definition, so remove both
                // and report the key gone.
                self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
                self.reclaim_expired(key)?;
                Ok(None)
            }
            Lookup::Absent => {
                self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
                let Some(storage) = &self.storage else {
                    return Ok(None);
                };
                self.stats.storage_fetches.fetch_add(1, Ordering::Relaxed);
                match storage.get(key)? {
                    Some(stored) => {
                        let (value, expires_at) = self.decode_envelope(&stored)?;
                        if is_expired(expires_at, self.config.clock.now_nanos()) {
                            self.reclaim_expired(key)?;
                            return Ok(None);
                        }
                        // Populate the cache (clean — storage already
                        // has it), carrying the expiry deadline.
                        let _ = self
                            .cache
                            .insert_full(key.clone(), stored, false, expires_at);
                        Ok(Some(value))
                    }
                    None => Ok(None),
                }
            }
        }
    }

    /// Lazy TTL reclamation: drops the key from both tiers and the
    /// persistence log.
    fn reclaim_expired(&self, key: &Key) -> Result<()> {
        self.stats.expired.fetch_add(1, Ordering::Relaxed);
        self.log_persistence(key, None)?;
        if let Some(storage) = &self.storage {
            storage.delete(key)?;
        }
        self.cache.remove(key);
        Ok(())
    }

    /// Rewrites a live key with a new expiry deadline (`EXPIRE` /
    /// `PERSIST`). Returns `false` when the key does not exist.
    fn do_set_ttl(&self, key: &Key, ttl: Option<Duration>) -> Result<bool> {
        let Some(value) = self.do_get(key)? else {
            return Ok(false);
        };
        let deadline = ttl.map(|t| deadline_after(self.config.clock.now_nanos(), t));
        self.do_put_with_expiry(key.clone(), value, deadline)?;
        Ok(true)
    }

    fn do_ttl(&self, key: &Key) -> Result<TtlState> {
        let now = self.config.clock.now_nanos();
        match self.cache.primary().lookup(key) {
            Lookup::Live(stored) => {
                let (_, _, _) = parse_envelope(stored.as_slice())?;
                Ok(TtlState::from_deadline(envelope_expiry(&stored), now))
            }
            Lookup::Expired => {
                self.reclaim_expired(key)?;
                Ok(TtlState::Missing)
            }
            Lookup::Absent => {
                let Some(storage) = &self.storage else {
                    return Ok(TtlState::Missing);
                };
                match storage.get(key)? {
                    Some(stored) => {
                        let deadline = envelope_expiry(&stored);
                        if is_expired(deadline, now) {
                            self.reclaim_expired(key)?;
                            Ok(TtlState::Missing)
                        } else {
                            Ok(TtlState::from_deadline(deadline, now))
                        }
                    }
                    None => Ok(TtlState::Missing),
                }
            }
        }
    }

    /// Batched read with deferred cache-fetching (§4.1.2): cache hits
    /// answer immediately; all misses are accumulated into a single
    /// storage-tier `batch_get`, paying one round-trip instead of one
    /// per missing key.
    fn do_multi_get(&self, keys: &[Key]) -> Result<Vec<Option<Value>>> {
        self.stats
            .gets
            .fetch_add(keys.len() as u64, Ordering::Relaxed);
        let mut out: Vec<Option<Value>> = vec![None; keys.len()];
        let mut missing: Vec<(usize, Key)> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            match self.cache.primary().lookup(key) {
                Lookup::Live(stored) => {
                    self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                    out[i] = Some(self.decode_value(&stored)?);
                }
                Lookup::Expired => {
                    self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
                    self.reclaim_expired(key)?;
                }
                Lookup::Absent => {
                    self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
                    missing.push((i, key.clone()));
                }
            }
        }
        let Some(storage) = &self.storage else {
            return Ok(out);
        };
        if missing.is_empty() {
            return Ok(out);
        }
        self.stats
            .storage_fetches
            .fetch_add(missing.len() as u64, Ordering::Relaxed);
        let fetch_keys: Vec<Key> = missing.iter().map(|(_, k)| k.clone()).collect();
        let fetched = storage.batch_get(&fetch_keys)?;
        let now = self.config.clock.now_nanos();
        for ((i, key), stored) in missing.into_iter().zip(fetched) {
            let Some(stored) = stored else { continue };
            let (value, expires_at) = self.decode_envelope(&stored)?;
            if is_expired(expires_at, now) {
                self.reclaim_expired(&key)?;
                continue;
            }
            let _ = self.cache.insert_full(key, stored, false, expires_at);
            out[i] = Some(value);
        }
        Ok(out)
    }

    /// Batched write. Under write-through the whole batch becomes one
    /// storage round-trip (then populates the cache); the other
    /// policies take the ordinary per-key path, which write-back
    /// already batches at flush time.
    fn do_multi_put(&self, pairs: Vec<(Key, Value)>) -> Result<()> {
        if self.config.policy != SyncPolicy::WriteThrough {
            for (k, v) in pairs {
                self.do_put(k, v)?;
            }
            return Ok(());
        }
        self.stats
            .puts
            .fetch_add(pairs.len() as u64, Ordering::Relaxed);
        let encoded: Vec<(Key, Value)> = pairs
            .into_iter()
            .map(|(k, v)| (k, self.encode_value(&v, None)))
            .collect();
        let storage = self
            .storage
            .as_ref()
            .ok_or_else(|| Error::Internal("no storage tier".into()))?;
        if self.take_injected_failure() {
            // Mirror the single-key write-through contract: invalidate
            // every key in the failed batch so reads refetch from
            // storage.
            for (k, _) in &encoded {
                self.cache.remove(k);
            }
            self.stats
                .write_through_failures
                .fetch_add(1, Ordering::Relaxed);
            return Err(Error::StorageWriteFailed("injected batch failure".into()));
        }
        match storage.batch_put(encoded.clone()) {
            Ok(()) => {
                for (k, stored) in encoded {
                    self.cache.insert(k, stored, false)?;
                }
                Ok(())
            }
            Err(e) => {
                for (k, _) in &encoded {
                    self.cache.remove(k);
                }
                self.stats
                    .write_through_failures
                    .fetch_add(1, Ordering::Relaxed);
                Err(Error::StorageWriteFailed(e.to_string()))
            }
        }
    }

    fn do_scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Key, Value)>> {
        let now = self.config.clock.now_nanos();
        let mut merged: std::collections::BTreeMap<Key, Value> = std::collections::BTreeMap::new();
        if let Some(storage) = &self.storage {
            for (key, stored) in storage.scan_prefix(prefix)? {
                let (value, expires_at) = self.decode_envelope(&stored)?;
                if !is_expired(expires_at, now) {
                    merged.insert(key, value);
                }
            }
        }
        // Cache entries are at least as fresh as storage (strictly
        // fresher under write-back), so they win the merge.
        for (key, entry) in self.cache.primary().scan_prefix(prefix) {
            let (value, expires_at) = self.decode_envelope(&entry.value)?;
            if !is_expired(expires_at, now) {
                merged.insert(key, value);
            }
        }
        Ok(merged.into_iter().collect())
    }

    fn do_scan_range(
        &self,
        start: &Key,
        end: Option<&Key>,
        limit: usize,
    ) -> Result<Vec<(Key, Value)>> {
        let now = self.config.clock.now_nanos();
        let mut merged: std::collections::BTreeMap<Key, Value> = std::collections::BTreeMap::new();
        if let Some(storage) = &self.storage {
            // Unbounded fetch: cache shadowing and TTL masking can both
            // shrink the storage rows, so a storage-side `limit` could
            // starve the merge of rows the caller is owed.
            for (key, stored) in storage.scan(start, end, usize::MAX)? {
                let (value, expires_at) = self.decode_envelope(&stored)?;
                if !is_expired(expires_at, now) {
                    merged.insert(key, value);
                }
            }
        }
        // Cache entries are at least as fresh as storage (strictly
        // fresher under write-back), so they win the merge.
        for (key, entry) in self
            .cache
            .primary()
            .scan_range(start.as_slice(), end.map(Key::as_slice))
        {
            let (value, expires_at) = self.decode_envelope(&entry.value)?;
            if !is_expired(expires_at, now) {
                merged.insert(key, value);
            }
        }
        Ok(merged.into_iter().take(limit).collect())
    }

    fn do_sweep_expired(&self) -> Result<usize> {
        let keys = self.cache.sweep_expired();
        for key in &keys {
            self.log_persistence(key, None)?;
            if let Some(storage) = &self.storage {
                storage.delete(key)?;
            }
        }
        self.stats
            .expired
            .fetch_add(keys.len() as u64, Ordering::Relaxed);
        Ok(keys.len())
    }

    fn do_put(&self, key: Key, value: Value) -> Result<()> {
        self.do_put_with_expiry(key, value, None)
    }

    fn do_put_with_expiry(&self, key: Key, value: Value, expires_at: Option<u64>) -> Result<()> {
        self.stats.puts.fetch_add(1, Ordering::Relaxed);
        self.intervals.record(&key);
        let stored = self.encode_value(&value, expires_at);
        match self.config.policy {
            SyncPolicy::InMemory => {
                self.log_persistence(&key, Some(&stored))?;
                self.cache.insert_full(key, stored, false, expires_at)?;
                Ok(())
            }
            SyncPolicy::WriteThrough => {
                // Synchronous storage write first; only then the cache.
                match self.storage_put(key.clone(), stored.clone()) {
                    Ok(()) => {
                        self.cache.insert_full(key, stored, false, expires_at)?;
                        Ok(())
                    }
                    Err(e) => {
                        // Invalidate so reads refetch the authoritative
                        // value from storage (§4.1.1).
                        self.cache.remove(&key);
                        self.stats
                            .write_through_failures
                            .fetch_add(1, Ordering::Relaxed);
                        Err(Error::StorageWriteFailed(e.to_string()))
                    }
                }
            }
            SyncPolicy::WriteBack => {
                match self
                    .cache
                    .insert_full(key.clone(), stored.clone(), true, expires_at)
                {
                    Ok(()) => {}
                    Err(Error::Backpressure { .. }) => {
                        // Reclaim by flushing dirty data, then retry once.
                        self.flush_dirty()?;
                        self.cache.insert_full(key, stored, true, expires_at)?;
                    }
                    Err(e) => return Err(e),
                }
                let ops = self.ops_since_flush.fetch_add(1, Ordering::Relaxed) + 1;
                let wb = &self.config.write_back;
                if ops >= wb.flush_every_ops
                    || self.cache.primary().dirty_bytes() > wb.max_dirty_bytes
                {
                    self.flush_dirty()?;
                }
                Ok(())
            }
        }
    }

    fn do_delete(&self, key: &Key) -> Result<()> {
        self.stats.deletes.fetch_add(1, Ordering::Relaxed);
        self.log_persistence(key, None)?;
        if let Some(storage) = &self.storage {
            // Deletes synchronize eagerly under both tiered policies
            // (the evaluated workloads are read/update-dominated).
            storage.delete(key)?;
        }
        self.cache.remove(key);
        Ok(())
    }

    fn do_sync(&self) -> Result<()> {
        if self.storage.is_some() {
            self.flush_dirty()?;
        }
        if let Some(wal) = &self.wal {
            wal.lock().sync()?;
        }
        if let Some(storage) = &self.storage {
            KvEngine::sync(storage)?;
        }
        Ok(())
    }

    fn storage_put(&self, key: Key, stored: Value) -> Result<()> {
        let storage = self
            .storage
            .as_ref()
            .ok_or_else(|| Error::Internal("no storage tier".into()))?;
        if self.take_injected_failure() {
            return Err(Error::FaultInjected("storage write failed".into()));
        }
        storage.put(key, stored)
    }

    fn take_injected_failure(&self) -> bool {
        loop {
            let n = self.inject_storage_failures.load(Ordering::SeqCst);
            if n == 0 {
                return false;
            }
            if self
                .inject_storage_failures
                .compare_exchange(n, n - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return true;
            }
        }
    }

    fn flush_dirty(&self) -> Result<usize> {
        let Some(storage) = &self.storage else {
            return Ok(0);
        };
        let dirty = self.cache.primary().dirty_entries();
        if dirty.is_empty() {
            self.ops_since_flush.store(0, Ordering::Relaxed);
            return Ok(0);
        }
        let total = dirty.len();
        for chunk in dirty.chunks(self.config.write_back.batch_size) {
            if self.take_injected_failure() {
                return Err(Error::StorageWriteFailed(
                    "injected failure during dirty flush".into(),
                ));
            }
            storage.batch_put(chunk.to_vec())?;
            for (k, _) in chunk {
                self.cache.mark_clean(k);
            }
        }
        self.stats.dirty_flushes.fetch_add(1, Ordering::Relaxed);
        self.stats
            .flushed_entries
            .fetch_add(total as u64, Ordering::Relaxed);
        self.ops_since_flush.store(0, Ordering::Relaxed);
        Ok(total)
    }

    fn log_persistence(&self, key: &Key, stored: Option<&Value>) -> Result<()> {
        if self.wal.is_none() && self.ring.is_none() {
            return Ok(());
        }
        let rec = encode_log_record(key, stored);
        if let Some(wal) = &self.wal {
            let lsn = self.wal_seq.fetch_add(1, Ordering::Relaxed) + 1;
            wal.lock().append(lsn, &rec)?;
        }
        if let Some(ring) = &self.ring {
            match ring.append(&rec) {
                Ok(()) => {}
                Err(Error::Backpressure { .. }) => {
                    // Ring full: batch-drain to the "cloud" WAL file and retry
                    // (the PMem ring is a staging buffer, §4.3).
                    self.drain_ring_to_file()?;
                    ring.append(&rec)?;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn drain_ring_to_file(&self) -> Result<()> {
        let Some(ring) = &self.ring else {
            return Ok(());
        };
        let drained = ring.drain_batch(usize::MAX)?;
        let path = self.config.dir.join("cache.cold.wal");
        let mut wal = tb_lsm::wal::Wal::open(&path, tb_lsm::wal::SyncPolicy::OsBuffer)?;
        for rec in drained {
            let lsn = self.wal_seq.fetch_add(1, Ordering::Relaxed) + 1;
            wal.append(lsn, &rec)?;
        }
        wal.sync()?;
        Ok(())
    }

    fn resident_bytes(&self) -> u64 {
        // The cache tier is the expensive resource. PMem bytes count at
        // their discounted factor; replication multiplies the footprint.
        let primary = self.cache.primary();
        let (dram, pmem) = primary.bytes_by_medium();
        let factor = self.config.pmem.map(|t| t.cost_factor).unwrap_or(1.0);
        let per_copy = dram + (pmem as f64 * factor) as u64;
        per_copy * (1 + self.cache.live_replicas() as u64)
    }
}

fn encode_log_record(key: &Key, stored: Option<&Value>) -> Vec<u8> {
    let mut out = Vec::with_capacity(key.len() + 16);
    match stored {
        Some(v) => {
            out.push(0);
            write_varint(&mut out, key.len() as u64);
            out.extend_from_slice(key.as_slice());
            out.extend_from_slice(v.as_slice());
        }
        None => {
            out.push(1);
            write_varint(&mut out, key.len() as u64);
            out.extend_from_slice(key.as_slice());
        }
    }
    out
}

fn apply_log_record(cache: &ReplicatedCache, rec: &[u8]) -> Result<()> {
    let (&flag, rest) = rec
        .split_first()
        .ok_or_else(|| Error::Corruption("empty cache log record".into()))?;
    let mut pos = 0usize;
    let klen = read_varint(rest, &mut pos)? as usize;
    if pos + klen > rest.len() {
        return Err(Error::Corruption("cache log key overflow".into()));
    }
    let key = Key::copy_from(&rest[pos..pos + klen]);
    match flag {
        0 => {
            let value = Value::copy_from(&rest[pos + klen..]);
            let expires_at = envelope_expiry(&value);
            cache.insert_full(key, value, false, expires_at)?;
            Ok(())
        }
        1 => {
            cache.remove(&key);
            Ok(())
        }
        other => Err(Error::Corruption(format!("bad cache log flag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PmemTuning, WriteBackTuning};

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tb-core-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn k(i: usize) -> Key {
        Key::from(format!("key-{i:05}"))
    }

    fn v(i: usize) -> Value {
        Value::from(format!("value-{i}-{}", "d".repeat(i % 90)))
    }

    #[test]
    fn in_memory_roundtrip() {
        let tb = TierBase::open(TierBaseConfig::builder(tmpdir("mem")).build()).unwrap();
        tb.put(k(1), v(1)).unwrap();
        assert_eq!(tb.get(&k(1)).unwrap(), Some(v(1)));
        tb.delete(&k(1)).unwrap();
        assert_eq!(tb.get(&k(1)).unwrap(), None);
        assert_eq!(tb.label(), "tierbase-mem");
    }

    #[test]
    fn write_through_persists_to_storage() {
        let dir = tmpdir("wt");
        let tb = TierBase::open(
            TierBaseConfig::builder(&dir)
                .policy(SyncPolicy::WriteThrough)
                .build(),
        )
        .unwrap();
        for i in 0..200 {
            tb.put(k(i), v(i)).unwrap();
        }
        tb.sync().unwrap();
        drop(tb);
        // Reopen: storage tier has everything; cache starts cold.
        let tb = TierBase::open(
            TierBaseConfig::builder(&dir)
                .policy(SyncPolicy::WriteThrough)
                .build(),
        )
        .unwrap();
        for i in 0..200 {
            assert_eq!(tb.get(&k(i)).unwrap(), Some(v(i)), "key {i}");
        }
        // Second read hits cache.
        let misses_before = tb.stats().cache_misses.load(Ordering::Relaxed);
        tb.get(&k(0)).unwrap();
        assert_eq!(
            tb.stats().cache_misses.load(Ordering::Relaxed),
            misses_before
        );
    }

    #[test]
    fn write_through_failure_invalidates_cache() {
        let dir = tmpdir("wtfail");
        let tb = TierBase::open(
            TierBaseConfig::builder(&dir)
                .policy(SyncPolicy::WriteThrough)
                .build(),
        )
        .unwrap();
        tb.put(k(1), v(1)).unwrap();
        tb.inject_storage_write_failures(1);
        let err = tb.put(k(1), Value::from("rejected")).unwrap_err();
        assert!(matches!(err, Error::StorageWriteFailed(_)));
        // The cache entry was invalidated; the next read refetches the
        // authoritative (old) value from storage.
        assert_eq!(tb.get(&k(1)).unwrap(), Some(v(1)));
        assert_eq!(tb.stats().write_through_failures.load(Ordering::Relaxed), 1);
        assert!(tb.stats().storage_fetches.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn write_back_defers_and_batches() {
        let dir = tmpdir("wb");
        let tb = TierBase::open(
            TierBaseConfig::builder(&dir)
                .policy(SyncPolicy::WriteBack)
                .write_back(WriteBackTuning {
                    max_dirty_bytes: u64::MAX,
                    flush_every_ops: u64::MAX, // manual flush only
                    batch_size: 64,
                })
                .build(),
        )
        .unwrap();
        for i in 0..100 {
            tb.put(k(i), v(i)).unwrap();
        }
        assert!(tb.dirty_bytes() > 0, "writes should be dirty in cache");
        let flushed = tb.flush_dirty().unwrap();
        assert_eq!(flushed, 100);
        assert_eq!(tb.dirty_bytes(), 0);
        // Storage saw batched calls, far fewer than 100.
        let calls = tb
            .inner
            .storage
            .as_ref()
            .unwrap()
            .stats
            .calls
            .load(Ordering::Relaxed);
        assert!(calls <= 3, "expected batched flush, got {calls} calls");
    }

    #[test]
    fn write_back_update_merging() {
        let dir = tmpdir("wbmerge");
        let tb = TierBase::open(
            TierBaseConfig::builder(&dir)
                .policy(SyncPolicy::WriteBack)
                .write_back(WriteBackTuning {
                    max_dirty_bytes: u64::MAX,
                    flush_every_ops: u64::MAX,
                    batch_size: 64,
                })
                .build(),
        )
        .unwrap();
        // 50 updates to the same key merge into one dirty entry.
        for i in 0..50 {
            tb.put(k(7), v(i)).unwrap();
        }
        let flushed = tb.flush_dirty().unwrap();
        assert_eq!(flushed, 1, "same-key updates must merge");
        assert_eq!(tb.get(&k(7)).unwrap(), Some(v(49)));
    }

    #[test]
    fn write_back_data_survives_via_storage() {
        let dir = tmpdir("wbdur");
        {
            let tb = TierBase::open(
                TierBaseConfig::builder(&dir)
                    .policy(SyncPolicy::WriteBack)
                    .build(),
            )
            .unwrap();
            for i in 0..100 {
                tb.put(k(i), v(i)).unwrap();
            }
            tb.sync().unwrap(); // flush dirty + storage sync
        }
        let tb = TierBase::open(
            TierBaseConfig::builder(&dir)
                .policy(SyncPolicy::WriteBack)
                .build(),
        )
        .unwrap();
        for i in 0..100 {
            assert_eq!(tb.get(&k(i)).unwrap(), Some(v(i)));
        }
    }

    #[test]
    fn wal_persistence_recovers_cache() {
        let dir = tmpdir("wal");
        {
            let tb = TierBase::open(
                TierBaseConfig::builder(&dir)
                    .persistence(PersistenceMode::Wal)
                    .build(),
            )
            .unwrap();
            tb.put(k(1), v(1)).unwrap();
            tb.put(k(2), v(2)).unwrap();
            tb.delete(&k(1)).unwrap();
            tb.sync().unwrap();
        }
        let tb = TierBase::open(
            TierBaseConfig::builder(&dir)
                .persistence(PersistenceMode::Wal)
                .build(),
        )
        .unwrap();
        assert_eq!(tb.get(&k(1)).unwrap(), None);
        assert_eq!(tb.get(&k(2)).unwrap(), Some(v(2)));
        assert_eq!(tb.label(), "tierbase-mem-wal");
    }

    #[test]
    fn wal_pmem_persistence_recovers_cache() {
        let dir = tmpdir("walpmem");
        {
            let tb = TierBase::open(
                TierBaseConfig::builder(&dir)
                    .persistence(PersistenceMode::WalPmem)
                    .pmem_ring_bytes(1 << 20)
                    .build(),
            )
            .unwrap();
            for i in 0..50 {
                tb.put(k(i), v(i)).unwrap();
            }
        }
        let tb = TierBase::open(
            TierBaseConfig::builder(&dir)
                .persistence(PersistenceMode::WalPmem)
                .pmem_ring_bytes(1 << 20)
                .build(),
        )
        .unwrap();
        for i in 0..50 {
            assert_eq!(tb.get(&k(i)).unwrap(), Some(v(i)), "key {i}");
        }
    }

    #[test]
    fn compression_reduces_resident_bytes() {
        let samples: Vec<Vec<u8>> = (0..300)
            .map(|i| {
                format!(
                    "{{\"uid\":\"{i:016x}\",\"dev\":\"android\",\"geo\":\"CN-ZJ\",\"score\":{i}}}"
                )
                .into_bytes()
            })
            .collect();

        let open = |name: &str, comp: CompressionChoice| {
            let tb = TierBase::open(
                TierBaseConfig::builder(tmpdir(name))
                    .compression(comp)
                    .build(),
            )
            .unwrap();
            tb.train_compression(&samples);
            for (i, s) in samples.iter().enumerate() {
                tb.put(k(i), Value::from(s.clone())).unwrap();
            }
            // Round-trip integrity.
            for (i, s) in samples.iter().enumerate() {
                assert_eq!(tb.get(&k(i)).unwrap(), Some(Value::from(s.clone())));
            }
            tb.resident_bytes()
        };

        let raw = open("comp-raw", CompressionChoice::None);
        let pbc = open("comp-pbc", CompressionChoice::Pbc);
        let tzd = open("comp-tzd", CompressionChoice::TzstdDict);
        assert!(pbc < raw, "PBC {pbc} should be below raw {raw}");
        assert!(tzd < raw, "tzstd-d {tzd} should be below raw {raw}");
    }

    #[test]
    fn auto_training_kicks_in() {
        let tb = TierBase::open(
            TierBaseConfig::builder(tmpdir("autotrain"))
                .compression(CompressionChoice::TzstdDict)
                .build(),
        )
        .unwrap();
        // Push enough templated values to trigger auto-training.
        for i in 0..(AUTO_TRAIN_SAMPLES + 50) {
            let val = Value::from(format!(
                "EVT|user={i:016}|act=click|page=/home|ts={}",
                1_700_000_000 + i
            ));
            tb.put(k(i), val).unwrap();
        }
        // All values still read back correctly.
        for i in 0..(AUTO_TRAIN_SAMPLES + 50) {
            let expect = Value::from(format!(
                "EVT|user={i:016}|act=click|page=/home|ts={}",
                1_700_000_000 + i
            ));
            assert_eq!(tb.get(&k(i)).unwrap(), Some(expect));
        }
    }

    #[test]
    fn pmem_discount_lowers_resident_bytes() {
        let build = |name: &str, pmem: Option<PmemTuning>| {
            let mut b = TierBaseConfig::builder(tmpdir(name));
            if let Some(t) = pmem {
                b = b.pmem(t);
            }
            let tb = TierBase::open(b.build()).unwrap();
            for i in 0..200 {
                tb.put(k(i), Value::from(vec![b'x'; 300])).unwrap();
            }
            tb.resident_bytes()
        };
        let dram_only = build("pm-dram", None);
        let with_pmem = build(
            "pm-split",
            Some(PmemTuning {
                value_threshold: 64,
                cost_factor: 0.4,
            }),
        );
        assert!(
            (with_pmem as f64) < dram_only as f64 * 0.7,
            "PMem should discount SC: {with_pmem} vs {dram_only}"
        );
    }

    #[test]
    fn replicas_multiply_resident_bytes() {
        let build = |name: &str, replicas: usize| {
            let tb = TierBase::open(
                TierBaseConfig::builder(tmpdir(name))
                    .replicas(replicas)
                    .build(),
            )
            .unwrap();
            for i in 0..50 {
                tb.put(k(i), v(i)).unwrap();
            }
            tb.resident_bytes()
        };
        let single = build("rep0", 0);
        let dual = build("rep1", 1);
        assert_eq!(dual, single * 2);
    }

    #[test]
    fn cache_snapshot_warm_restart() {
        let dir = tmpdir("rdb");
        {
            let tb = TierBase::open(TierBaseConfig::builder(&dir).build()).unwrap();
            for i in 0..200 {
                tb.put(k(i), v(i)).unwrap();
            }
            assert_eq!(tb.save_cache_snapshot().unwrap(), 200);
        }
        // Reopen: the snapshot warms the cache — no storage tier, yet
        // everything is there.
        let tb = TierBase::open(TierBaseConfig::builder(&dir).build()).unwrap();
        for i in 0..200 {
            assert_eq!(tb.get(&k(i)).unwrap(), Some(v(i)), "key {i}");
        }
        assert_eq!(tb.stats().cache_misses.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn cache_snapshot_with_tiered_store_warms_cache() {
        let dir = tmpdir("rdb-wt");
        {
            let tb = TierBase::open(
                TierBaseConfig::builder(&dir)
                    .policy(SyncPolicy::WriteThrough)
                    .build(),
            )
            .unwrap();
            for i in 0..100 {
                tb.put(k(i), v(i)).unwrap();
            }
            tb.save_cache_snapshot().unwrap();
            tb.sync().unwrap();
        }
        let tb = TierBase::open(
            TierBaseConfig::builder(&dir)
                .policy(SyncPolicy::WriteThrough)
                .build(),
        )
        .unwrap();
        let fetches_before = tb.stats().storage_fetches.load(Ordering::Relaxed);
        for i in 0..100 {
            assert_eq!(tb.get(&k(i)).unwrap(), Some(v(i)));
        }
        assert_eq!(
            tb.stats().storage_fetches.load(Ordering::Relaxed),
            fetches_before,
            "warm cache serves everything without storage fetches"
        );
    }

    #[test]
    fn ttl_in_memory_mode() {
        let clock = tb_common::ManualClock::new();
        let tb = TierBase::open(
            TierBaseConfig::builder(tmpdir("ttl-mem"))
                .clock(clock.clone())
                .build(),
        )
        .unwrap();
        tb.put_with_ttl(k(1), v(1), std::time::Duration::from_secs(30))
            .unwrap();
        tb.put(k(2), v(2)).unwrap();
        assert_eq!(tb.get(&k(1)).unwrap(), Some(v(1)));
        assert!(matches!(tb.ttl(&k(1)).unwrap(), TtlState::Remaining(_)));
        assert_eq!(tb.ttl(&k(2)).unwrap(), TtlState::NoExpiry);
        assert_eq!(tb.ttl(&k(3)).unwrap(), TtlState::Missing);

        clock.advance(std::time::Duration::from_secs(30));
        assert_eq!(tb.get(&k(1)).unwrap(), None);
        assert_eq!(tb.ttl(&k(1)).unwrap(), TtlState::Missing);
        assert_eq!(tb.get(&k(2)).unwrap(), Some(v(2)));
        assert_eq!(tb.stats().expired.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn ttl_expiry_does_not_resurrect_from_storage() {
        // Write-through: the key reaches the storage tier; after the
        // TTL passes the storage copy must not come back on a read.
        let clock = tb_common::ManualClock::new();
        let tb = TierBase::open(
            TierBaseConfig::builder(tmpdir("ttl-wt"))
                .policy(SyncPolicy::WriteThrough)
                .clock(clock.clone())
                .build(),
        )
        .unwrap();
        tb.put_with_ttl(k(1), v(1), std::time::Duration::from_secs(10))
            .unwrap();
        clock.advance(std::time::Duration::from_secs(11));
        assert_eq!(tb.get(&k(1)).unwrap(), None, "expired in cache");
        // Second read exercises the storage path (cache copy gone).
        assert_eq!(tb.get(&k(1)).unwrap(), None, "not resurrected");
    }

    #[test]
    fn ttl_respected_after_cache_eviction() {
        // The deadline travels in the envelope, so even when the cache
        // entry is evicted (not expired) and later refetched from
        // storage, the expiry still applies.
        let clock = tb_common::ManualClock::new();
        let dir = tmpdir("ttl-evict");
        let tb = TierBase::open(
            TierBaseConfig::builder(&dir)
                .policy(SyncPolicy::WriteThrough)
                .cache_capacity(16 << 10)
                .cache_shards(2)
                .clock(clock.clone())
                .build(),
        )
        .unwrap();
        tb.put_with_ttl(k(0), v(0), std::time::Duration::from_secs(60))
            .unwrap();
        // Evict k(0) by flooding the tiny cache.
        for i in 1..500 {
            tb.put(k(i), v(i)).unwrap();
        }
        clock.advance(std::time::Duration::from_secs(30));
        assert_eq!(tb.get(&k(0)).unwrap(), Some(v(0)), "refetched, still live");
        assert!(matches!(tb.ttl(&k(0)).unwrap(), TtlState::Remaining(_)));
        clock.advance(std::time::Duration::from_secs(31));
        assert_eq!(tb.get(&k(0)).unwrap(), None, "expired after refetch");
    }

    #[test]
    fn expire_and_persist_roundtrip() {
        let clock = tb_common::ManualClock::new();
        let tb = TierBase::open(
            TierBaseConfig::builder(tmpdir("ttl-expire"))
                .clock(clock.clone())
                .build(),
        )
        .unwrap();
        tb.put(k(1), v(1)).unwrap();
        assert!(tb.expire(&k(1), std::time::Duration::from_secs(5)).unwrap());
        assert!(!tb.expire(&k(9), std::time::Duration::from_secs(5)).unwrap());
        assert!(tb.persist(&k(1)).unwrap());
        clock.advance(std::time::Duration::from_secs(60));
        assert_eq!(tb.get(&k(1)).unwrap(), Some(v(1)), "persist cleared TTL");
        // Re-arm and let it die.
        assert!(tb.expire(&k(1), std::time::Duration::from_secs(1)).unwrap());
        clock.advance(std::time::Duration::from_secs(2));
        assert!(
            !tb.persist(&k(1)).unwrap(),
            "expired key can't be persisted"
        );
    }

    #[test]
    fn sweep_expired_reclaims_both_tiers() {
        let clock = tb_common::ManualClock::new();
        let tb = TierBase::open(
            TierBaseConfig::builder(tmpdir("ttl-sweep"))
                .policy(SyncPolicy::WriteThrough)
                .clock(clock.clone())
                .build(),
        )
        .unwrap();
        for i in 0..50 {
            tb.put_with_ttl(k(i), v(i), std::time::Duration::from_secs(5))
                .unwrap();
        }
        for i in 50..60 {
            tb.put(k(i), v(i)).unwrap();
        }
        clock.advance(std::time::Duration::from_secs(6));
        let swept = tb.sweep_expired().unwrap();
        assert_eq!(swept, 50);
        assert_eq!(tb.sweep_expired().unwrap(), 0, "idempotent");
        for i in 0..50 {
            assert_eq!(tb.get(&k(i)).unwrap(), None);
        }
        for i in 50..60 {
            assert_eq!(tb.get(&k(i)).unwrap(), Some(v(i)));
        }
    }

    #[test]
    fn ttl_with_compression_envelope() {
        // Expiry deadline and compression share the envelope.
        let clock = tb_common::ManualClock::new();
        let tb = TierBase::open(
            TierBaseConfig::builder(tmpdir("ttl-comp"))
                .compression(CompressionChoice::TzstdDict)
                .clock(clock.clone())
                .build(),
        )
        .unwrap();
        let samples: Vec<Vec<u8>> = (0..300)
            .map(|i| format!("REC|user={i:08}|plan=premium|region=eu").into_bytes())
            .collect();
        tb.train_compression(&samples);
        for (i, s) in samples.iter().enumerate() {
            tb.put_with_ttl(
                k(i),
                Value::from(s.clone()),
                std::time::Duration::from_secs(100 + i as u64),
            )
            .unwrap();
        }
        clock.advance(std::time::Duration::from_secs(50));
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(tb.get(&k(i)).unwrap(), Some(Value::from(s.clone())));
        }
        clock.advance(std::time::Duration::from_secs(150));
        assert_eq!(tb.get(&k(0)).unwrap(), None, "t=200 > 100s TTL");
        assert_eq!(
            tb.get(&k(299)).unwrap(),
            Some(Value::from(samples[299].clone())),
            "t=200 < 399s TTL"
        );
        clock.advance(std::time::Duration::from_secs(300));
        assert_eq!(tb.get(&k(299)).unwrap(), None, "t=500 > 399s TTL");
    }

    #[test]
    fn ttl_survives_wal_recovery() {
        let clock = tb_common::ManualClock::starting_at(0);
        let dir = tmpdir("ttl-wal");
        {
            let tb = TierBase::open(
                TierBaseConfig::builder(&dir)
                    .persistence(PersistenceMode::Wal)
                    .clock(clock.clone())
                    .build(),
            )
            .unwrap();
            tb.put_with_ttl(k(1), v(1), std::time::Duration::from_secs(100))
                .unwrap();
            tb.put(k(2), v(2)).unwrap();
            tb.sync().unwrap();
        }
        // Reopen sharing the same (advanced) clock.
        clock.advance(std::time::Duration::from_secs(150));
        let tb = TierBase::open(
            TierBaseConfig::builder(&dir)
                .persistence(PersistenceMode::Wal)
                .clock(clock.clone())
                .build(),
        )
        .unwrap();
        assert_eq!(tb.get(&k(1)).unwrap(), None, "TTL enforced after replay");
        assert_eq!(tb.get(&k(2)).unwrap(), Some(v(2)));
    }

    #[test]
    fn access_interval_statistic_matches_drive() {
        let clock = tb_common::ManualClock::new();
        let tb = TierBase::open(
            TierBaseConfig::builder(tmpdir("interval"))
                .clock(clock.clone())
                .build(),
        )
        .unwrap();
        for i in 0..500 {
            tb.put(k(i), v(i)).unwrap();
        }
        assert_eq!(tb.mean_access_interval_secs(), None, "no re-access yet");
        // Re-access every key every 20 seconds, 4 rounds.
        for _ in 0..4 {
            clock.advance(std::time::Duration::from_secs(20));
            for i in 0..500 {
                tb.get(&k(i)).unwrap();
            }
        }
        let mean = tb.mean_access_interval_secs().expect("intervals observed");
        assert!(
            (mean - 20.0).abs() < 1.0,
            "driven at 20s intervals, measured {mean}"
        );
        assert!(tb.access_intervals().tracked_keys() > 0);
    }

    #[test]
    fn async_replication_through_store() {
        let tb = TierBase::open(
            TierBaseConfig::builder(tmpdir("async-rep"))
                .replicas(1)
                .replication_mode(tb_cache::ReplicationMode::Async)
                .build(),
        )
        .unwrap();
        for i in 0..20 {
            tb.put(k(i), v(i)).unwrap();
        }
        assert_eq!(tb.replication_lag(), 20);
        assert_eq!(tb.drain_replication().unwrap(), 20);
        assert_eq!(tb.replication_lag(), 0);
        // resident_bytes now counts both copies.
        assert!(tb.resident_bytes() > 0);
    }

    #[test]
    fn quorum_replication_through_store() {
        let tb = TierBase::open(
            TierBaseConfig::builder(tmpdir("quorum-rep"))
                .replicas(2)
                .replication_mode(tb_cache::ReplicationMode::Quorum)
                .build(),
        )
        .unwrap();
        tb.put(k(1), v(1)).unwrap();
        assert_eq!(tb.get(&k(1)).unwrap(), Some(v(1)));
    }

    #[test]
    fn cas_is_atomic_under_contention() {
        let tb = Arc::new(TierBase::open(TierBaseConfig::builder(tmpdir("cas")).build()).unwrap());
        tb.put(Key::from("ctr"), Value::from("0")).unwrap();
        let mut handles = vec![];
        for _ in 0..4 {
            let tb = tb.clone();
            handles.push(std::thread::spawn(move || {
                let mut successes = 0;
                while successes < 50 {
                    let cur = tb.get(&Key::from("ctr")).unwrap().unwrap();
                    let n: u64 = String::from_utf8(cur.as_slice().to_vec())
                        .unwrap()
                        .parse()
                        .unwrap();
                    let next = Value::from((n + 1).to_string());
                    if tb.cas(Key::from("ctr"), Some(&cur), next).is_ok() {
                        successes += 1;
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let final_val = tb.get(&Key::from("ctr")).unwrap().unwrap();
        let n: u64 = String::from_utf8(final_val.as_slice().to_vec())
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(n, 200);
    }

    #[test]
    fn multi_get_batches_storage_fetches() {
        let dir = tmpdir("mget");
        let tb = TierBase::open(
            TierBaseConfig::builder(&dir)
                .policy(SyncPolicy::WriteThrough)
                .build(),
        )
        .unwrap();
        for i in 0..100 {
            tb.put(k(i), v(i)).unwrap();
        }
        drop(tb);
        // Cold cache: every key must come from storage.
        let tb = TierBase::open(
            TierBaseConfig::builder(&dir)
                .policy(SyncPolicy::WriteThrough)
                .build(),
        )
        .unwrap();
        let calls_before = tb
            .inner
            .storage
            .as_ref()
            .unwrap()
            .stats
            .calls
            .load(Ordering::Relaxed);
        let keys: Vec<Key> = (0..100).map(k).collect();
        let got = tb.multi_get(&keys).unwrap();
        for (i, val) in got.iter().enumerate() {
            assert_eq!(val.as_ref(), Some(&v(i)), "key {i}");
        }
        let calls_after = tb
            .inner
            .storage
            .as_ref()
            .unwrap()
            .stats
            .calls
            .load(Ordering::Relaxed);
        assert_eq!(
            calls_after - calls_before,
            1,
            "100 cold misses must collapse into one storage round-trip"
        );
        // Second multi_get is all cache hits: zero further calls.
        let got = tb.multi_get(&keys).unwrap();
        assert!(got.iter().all(|v| v.is_some()));
        assert_eq!(
            tb.inner
                .storage
                .as_ref()
                .unwrap()
                .stats
                .calls
                .load(Ordering::Relaxed),
            calls_after
        );
    }

    #[test]
    fn multi_get_mixes_hits_misses_and_absent() {
        let clock = tb_common::ManualClock::new();
        let dir = tmpdir("mget-mixed");
        let tb = TierBase::open(
            TierBaseConfig::builder(&dir)
                .policy(SyncPolicy::WriteThrough)
                .clock(clock.clone())
                .build(),
        )
        .unwrap();
        tb.put(k(0), v(0)).unwrap(); // cached
        tb.put_with_ttl(k(1), v(1), std::time::Duration::from_secs(1))
            .unwrap(); // will expire
        clock.advance(std::time::Duration::from_secs(2));
        let got = tb.multi_get(&[k(0), k(1), k(2)]).unwrap();
        assert_eq!(got[0], Some(v(0)));
        assert_eq!(got[1], None, "expired key");
        assert_eq!(got[2], None, "never written");
    }

    #[test]
    fn multi_put_write_through_batches_and_fails_atomically() {
        let dir = tmpdir("mput");
        let tb = TierBase::open(
            TierBaseConfig::builder(&dir)
                .policy(SyncPolicy::WriteThrough)
                .build(),
        )
        .unwrap();
        let pairs: Vec<(Key, Value)> = (0..100).map(|i| (k(i), v(i))).collect();
        let calls_before = tb
            .inner
            .storage
            .as_ref()
            .unwrap()
            .stats
            .calls
            .load(Ordering::Relaxed);
        tb.multi_put(pairs).unwrap();
        let calls_after = tb
            .inner
            .storage
            .as_ref()
            .unwrap()
            .stats
            .calls
            .load(Ordering::Relaxed);
        assert_eq!(calls_after - calls_before, 1, "one batched storage write");
        for i in 0..100 {
            assert_eq!(tb.get(&k(i)).unwrap(), Some(v(i)));
        }
        // Injected failure: the batch reports an error and the cache is
        // invalidated for all its keys (reads refetch from storage).
        tb.inject_storage_write_failures(1);
        let pairs: Vec<(Key, Value)> = (0..10).map(|i| (k(i), Value::from("new"))).collect();
        assert!(matches!(
            tb.multi_put(pairs),
            Err(Error::StorageWriteFailed(_))
        ));
        for i in 0..10 {
            assert_eq!(tb.get(&k(i)).unwrap(), Some(v(i)), "old value survives");
        }
    }

    #[test]
    fn multi_put_write_back_stays_deferred() {
        let dir = tmpdir("mput-wb");
        let tb = TierBase::open(
            TierBaseConfig::builder(&dir)
                .policy(SyncPolicy::WriteBack)
                .write_back(WriteBackTuning {
                    max_dirty_bytes: u64::MAX,
                    flush_every_ops: u64::MAX,
                    batch_size: 64,
                })
                .build(),
        )
        .unwrap();
        let pairs: Vec<(Key, Value)> = (0..50).map(|i| (k(i), v(i))).collect();
        tb.multi_put(pairs).unwrap();
        assert!(tb.dirty_bytes() > 0, "write-back keeps the batch dirty");
        assert_eq!(tb.flush_dirty().unwrap(), 50);
    }

    #[test]
    fn scan_prefix_merges_cache_over_storage() {
        let dir = tmpdir("scan-wb");
        let tb = TierBase::open(
            TierBaseConfig::builder(&dir)
                .policy(SyncPolicy::WriteBack)
                .write_back(WriteBackTuning {
                    max_dirty_bytes: u64::MAX,
                    flush_every_ops: u64::MAX,
                    batch_size: 64,
                })
                .build(),
        )
        .unwrap();
        // Base data flushed to storage.
        for i in 0..20 {
            tb.put(Key::from(format!("acct:{i:03}")), v(i)).unwrap();
        }
        tb.flush_dirty().unwrap();
        // Fresh unflushed updates + an unrelated prefix.
        tb.put(Key::from("acct:005"), Value::from("updated"))
            .unwrap();
        tb.put(Key::from("sess:001"), Value::from("x")).unwrap();
        tb.delete(&Key::from("acct:010")).unwrap();

        let rows = tb.scan_prefix(b"acct:").unwrap();
        assert_eq!(rows.len(), 19, "20 minus the delete");
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
        let updated = rows
            .iter()
            .find(|(k, _)| k == &Key::from("acct:005"))
            .unwrap();
        assert_eq!(updated.1, Value::from("updated"), "dirty data visible");
        assert!(!rows.iter().any(|(k, _)| k == &Key::from("acct:010")));
    }

    #[test]
    fn scan_prefix_in_memory_and_expired() {
        let clock = tb_common::ManualClock::new();
        let tb = TierBase::open(
            TierBaseConfig::builder(tmpdir("scan-mem"))
                .clock(clock.clone())
                .build(),
        )
        .unwrap();
        tb.put(Key::from("a:1"), v(1)).unwrap();
        tb.put_with_ttl(Key::from("a:2"), v(2), std::time::Duration::from_secs(5))
            .unwrap();
        tb.put(Key::from("b:1"), v(3)).unwrap();
        assert_eq!(tb.scan_prefix(b"a:").unwrap().len(), 2);
        clock.advance(std::time::Duration::from_secs(6));
        let rows = tb.scan_prefix(b"a:").unwrap();
        assert_eq!(rows.len(), 1, "expired key filtered");
        assert_eq!(rows[0].0, Key::from("a:1"));
        assert_eq!(tb.scan_prefix(b"").unwrap().len(), 2, "full scan");
    }

    #[test]
    fn scan_range_merges_tiers_masks_ttl_and_truncates() {
        let clock = tb_common::ManualClock::new();
        let tb = TierBase::open(
            TierBaseConfig::builder(tmpdir("scan-range"))
                .policy(SyncPolicy::WriteBack)
                .write_back(WriteBackTuning {
                    max_dirty_bytes: u64::MAX,
                    flush_every_ops: u64::MAX,
                    batch_size: 64,
                })
                .clock(clock.clone())
                .build(),
        )
        .unwrap();
        // Base data flushed to storage, then fresh unflushed state on
        // top: an update, a delete, and a short-TTL key.
        for i in 0..20 {
            tb.put(Key::from(format!("r{i:03}")), v(i)).unwrap();
        }
        tb.put_with_ttl(
            Key::from("r007"),
            Value::from("fleeting"),
            std::time::Duration::from_secs(5),
        )
        .unwrap();
        // Flush so storage holds the TTL envelope too: the expiry must
        // be masked by the *storage* side of the merge once it passes.
        tb.flush_dirty().unwrap();
        tb.put(Key::from("r005"), Value::from("updated")).unwrap();
        tb.delete(&Key::from("r010")).unwrap();
        clock.advance(std::time::Duration::from_secs(6));

        // KvEngine::scan and the inherent scan_range agree.
        let rows = KvEngine::scan(
            &tb,
            &Key::from("r003"),
            Some(&Key::from("r015")),
            usize::MAX,
        )
        .unwrap();
        assert_eq!(
            rows,
            tb.scan_range(&Key::from("r003"), Some(&Key::from("r015")), usize::MAX)
                .unwrap()
        );
        // 12 keys in [r003, r015), minus the delete and the expired one.
        assert_eq!(rows.len(), 10, "delete and expired TTL masked: {rows:?}");
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
        assert!(rows
            .iter()
            .all(|(k, _)| k != &Key::from("r010") && k != &Key::from("r007")));
        let updated = rows.iter().find(|(k, _)| k == &Key::from("r005")).unwrap();
        assert_eq!(updated.1, Value::from("updated"), "dirty data visible");
        // Limit truncation in key order; unbounded end reaches the tail.
        let limited = tb.scan_range(&Key::from("r003"), None, 3).unwrap();
        assert_eq!(
            limited.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
            vec![Key::from("r003"), Key::from("r004"), Key::from("r005")]
        );
        let tail = tb.scan_range(&Key::from("r018"), None, usize::MAX).unwrap();
        assert_eq!(tail.len(), 2);
    }

    #[test]
    fn scan_prefix_matches_model_under_random_ops() {
        use proptest::prelude::*;
        use proptest::test_runner::{Config, TestRunner};
        use std::collections::BTreeMap;

        let mut runner = TestRunner::new(Config {
            cases: 16,
            ..Config::default()
        });
        let ops = proptest::collection::vec((0usize..30, 0usize..8, any::<bool>()), 1..120);
        runner
            .run(&ops, |ops| {
                let dir = std::env::temp_dir().join(format!(
                    "tb-scanprop-{}-{}",
                    std::process::id(),
                    rand::random::<u64>()
                ));
                let tb = TierBase::open(
                    TierBaseConfig::builder(&dir)
                        .policy(SyncPolicy::WriteThrough)
                        .build(),
                )
                .unwrap();
                let mut model: BTreeMap<Key, Value> = BTreeMap::new();
                for (i, (ki, pfx, del)) in ops.into_iter().enumerate() {
                    let key = Key::from(format!("p{pfx}:{ki:03}"));
                    if del {
                        tb.delete(&key).unwrap();
                        model.remove(&key);
                    } else {
                        let val = Value::from(format!("v{i}"));
                        tb.put(key.clone(), val.clone()).unwrap();
                        model.insert(key, val);
                    }
                }
                for pfx in 0..8 {
                    let prefix = format!("p{pfx}:");
                    let got = tb.scan_prefix(prefix.as_bytes()).unwrap();
                    let want: Vec<(Key, Value)> = model
                        .iter()
                        .filter(|(k, _)| k.as_slice().starts_with(prefix.as_bytes()))
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    prop_assert_eq!(&got, &want, "prefix {}", prefix);
                }
                let _ = std::fs::remove_dir_all(&dir);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn miss_ratio_tracks_tiering() {
        let dir = tmpdir("mr");
        // Tiny cache forces misses.
        let tb = TierBase::open(
            TierBaseConfig::builder(&dir)
                .policy(SyncPolicy::WriteThrough)
                .cache_capacity(16 << 10)
                .cache_shards(2)
                .build(),
        )
        .unwrap();
        for i in 0..500 {
            tb.put(k(i), v(i)).unwrap();
        }
        for i in 0..500 {
            tb.get(&k(i)).unwrap();
        }
        let mr = tb.stats().miss_ratio();
        assert!(mr > 0.1, "tiny cache must miss: {mr}");
        // Values still correct through the storage tier.
        assert_eq!(tb.get(&k(123)).unwrap(), Some(v(123)));
    }

    #[test]
    fn multi_thread_mode_works() {
        let tb = Arc::new(
            TierBase::open(
                TierBaseConfig::builder(tmpdir("mt"))
                    .threading(tb_elastic::ThreadMode::Multi(4))
                    .build(),
            )
            .unwrap(),
        );
        assert_eq!(tb.gate().current_permits(), 4);
        let mut handles = vec![];
        for t in 0..4 {
            let tb = tb.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    let key = k(t * 1000 + i);
                    tb.put(key.clone(), v(i)).unwrap();
                    assert_eq!(tb.get(&key).unwrap(), Some(v(i)));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
