//! Redis-style data structures on top of the byte-string core (§3).
//!
//! Lists, sets, hashes and sorted sets are serialized into single
//! values and updated with CAS retry loops, so concurrent structure
//! mutations never lose updates (the engine's CAS supplies atomicity).

use tb_common::{read_varint, write_varint, Error, Key, KvEngine, Result, Value};

/// Where a list push lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListEnd {
    Head,
    Tail,
}

/// Typed operations over any [`KvEngine`].
pub struct DataTypes<'e, E: KvEngine + ?Sized> {
    engine: &'e E,
}

impl<'e, E: KvEngine + ?Sized> DataTypes<'e, E> {
    pub fn new(engine: &'e E) -> Self {
        Self { engine }
    }

    /// CAS retry loop: read, transform, write-if-unchanged.
    fn update<T>(
        &self,
        key: &Key,
        mut f: impl FnMut(Option<&Value>) -> Result<(Option<Value>, T)>,
    ) -> Result<T> {
        loop {
            let current = self.engine.get(key)?;
            let (next, out) = f(current.as_ref())?;
            let result = match next {
                Some(v) => self.engine.cas(key.clone(), current.as_ref(), v),
                None => {
                    if current.is_none() {
                        return Ok(out); // deleting an absent structure
                    }
                    // Represent deletion as CAS to empty, then delete.
                    match self
                        .engine
                        .cas(key.clone(), current.as_ref(), Value::default())
                    {
                        Ok(()) => {
                            self.engine.delete(key)?;
                            Ok(())
                        }
                        Err(e) => Err(e),
                    }
                }
            };
            match result {
                Ok(()) => return Ok(out),
                Err(Error::CasMismatch) => continue, // lost the race; retry
                Err(e) => return Err(e),
            }
        }
    }

    // ----- lists ---------------------------------------------------------

    /// Pushes an element; returns the new length.
    pub fn list_push(&self, key: &Key, item: &[u8], end: ListEnd) -> Result<usize> {
        self.update(key, |cur| {
            let mut items = decode_items(cur)?;
            match end {
                ListEnd::Head => items.insert(0, item.to_vec()),
                ListEnd::Tail => items.push(item.to_vec()),
            }
            let len = items.len();
            Ok((Some(encode_items(&items)), len))
        })
    }

    /// Pops from an end; `None` when empty.
    pub fn list_pop(&self, key: &Key, end: ListEnd) -> Result<Option<Vec<u8>>> {
        self.update(key, |cur| {
            let mut items = decode_items(cur)?;
            if items.is_empty() {
                return Ok((None, None));
            }
            let popped = match end {
                ListEnd::Head => items.remove(0),
                ListEnd::Tail => items.pop().expect("non-empty"),
            };
            let next = if items.is_empty() {
                None
            } else {
                Some(encode_items(&items))
            };
            Ok((next, Some(popped)))
        })
    }

    /// Elements in `[start, stop)` (clamped).
    pub fn list_range(&self, key: &Key, start: usize, stop: usize) -> Result<Vec<Vec<u8>>> {
        let items = decode_items(self.engine.get(key)?.as_ref())?;
        let stop = stop.min(items.len());
        let start = start.min(stop);
        Ok(items[start..stop].to_vec())
    }

    /// List length.
    pub fn list_len(&self, key: &Key) -> Result<usize> {
        Ok(decode_items(self.engine.get(key)?.as_ref())?.len())
    }

    // ----- sets ----------------------------------------------------------

    /// Adds a member; returns true when newly added.
    pub fn set_add(&self, key: &Key, member: &[u8]) -> Result<bool> {
        self.update(key, |cur| {
            let mut items = decode_items(cur)?;
            match items.binary_search(&member.to_vec()) {
                Ok(_) => Ok((Some(encode_items(&items)), false)),
                Err(pos) => {
                    items.insert(pos, member.to_vec());
                    Ok((Some(encode_items(&items)), true))
                }
            }
        })
    }

    /// Removes a member; returns true when it was present.
    pub fn set_remove(&self, key: &Key, member: &[u8]) -> Result<bool> {
        self.update(key, |cur| {
            let mut items = decode_items(cur)?;
            match items.binary_search(&member.to_vec()) {
                Ok(pos) => {
                    items.remove(pos);
                    let next = if items.is_empty() {
                        None
                    } else {
                        Some(encode_items(&items))
                    };
                    Ok((next, true))
                }
                Err(_) => Ok((Some(encode_items(&items)), false)),
            }
        })
    }

    /// Membership test.
    pub fn set_contains(&self, key: &Key, member: &[u8]) -> Result<bool> {
        let items = decode_items(self.engine.get(key)?.as_ref())?;
        Ok(items.binary_search(&member.to_vec()).is_ok())
    }

    /// All members (sorted).
    pub fn set_members(&self, key: &Key) -> Result<Vec<Vec<u8>>> {
        decode_items(self.engine.get(key)?.as_ref())
    }

    // ----- hashes ----------------------------------------------------------

    /// Sets a field; returns true when the field is new.
    pub fn hash_set(&self, key: &Key, field: &[u8], value: &[u8]) -> Result<bool> {
        self.update(key, |cur| {
            let mut pairs = decode_pairs(cur)?;
            let existing = pairs.iter_mut().find(|(f, _)| f == field);
            let added = match existing {
                Some((_, v)) => {
                    *v = value.to_vec();
                    false
                }
                None => {
                    pairs.push((field.to_vec(), value.to_vec()));
                    true
                }
            };
            Ok((Some(encode_pairs(&pairs)), added))
        })
    }

    /// Reads a field.
    pub fn hash_get(&self, key: &Key, field: &[u8]) -> Result<Option<Vec<u8>>> {
        let pairs = decode_pairs(self.engine.get(key)?.as_ref())?;
        Ok(pairs.into_iter().find(|(f, _)| f == field).map(|(_, v)| v))
    }

    /// Deletes a field; returns true when it existed.
    pub fn hash_del(&self, key: &Key, field: &[u8]) -> Result<bool> {
        self.update(key, |cur| {
            let mut pairs = decode_pairs(cur)?;
            let before = pairs.len();
            pairs.retain(|(f, _)| f != field);
            let removed = pairs.len() != before;
            let next = if pairs.is_empty() {
                None
            } else {
                Some(encode_pairs(&pairs))
            };
            Ok((next, removed))
        })
    }

    /// All field/value pairs.
    pub fn hash_get_all(&self, key: &Key) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        decode_pairs(self.engine.get(key)?.as_ref())
    }

    // ----- sorted sets -----------------------------------------------------

    /// Adds or updates a member with a score; true when newly added.
    pub fn zset_add(&self, key: &Key, member: &[u8], score: f64) -> Result<bool> {
        self.update(key, |cur| {
            let mut entries = decode_scored(cur)?;
            let existed = entries.iter().position(|(_, m)| m == member);
            if let Some(pos) = existed {
                entries.remove(pos);
            }
            let item = (score, member.to_vec());
            let pos = entries
                .binary_search_by(|(s, m)| {
                    s.partial_cmp(&item.0)
                        .expect("finite score")
                        .then_with(|| m.cmp(&item.1))
                })
                .unwrap_or_else(|p| p);
            entries.insert(pos, item);
            Ok((Some(encode_scored(&entries)), existed.is_none()))
        })
    }

    /// Score of a member.
    pub fn zset_score(&self, key: &Key, member: &[u8]) -> Result<Option<f64>> {
        let entries = decode_scored(self.engine.get(key)?.as_ref())?;
        Ok(entries
            .into_iter()
            .find(|(_, m)| m == member)
            .map(|(s, _)| s))
    }

    /// Members with rank in `[start, stop)`, ascending by score.
    pub fn zset_range(&self, key: &Key, start: usize, stop: usize) -> Result<Vec<(f64, Vec<u8>)>> {
        let entries = decode_scored(self.engine.get(key)?.as_ref())?;
        let stop = stop.min(entries.len());
        let start = start.min(stop);
        Ok(entries[start..stop].to_vec())
    }

    /// Removes a member; true when present.
    pub fn zset_remove(&self, key: &Key, member: &[u8]) -> Result<bool> {
        self.update(key, |cur| {
            let mut entries = decode_scored(cur)?;
            let before = entries.len();
            entries.retain(|(_, m)| m != member);
            let removed = entries.len() != before;
            let next = if entries.is_empty() {
                None
            } else {
                Some(encode_scored(&entries))
            };
            Ok((next, removed))
        })
    }
}

// ----- codecs --------------------------------------------------------------

fn encode_items(items: &[Vec<u8>]) -> Value {
    let mut out = Vec::new();
    write_varint(&mut out, items.len() as u64);
    for item in items {
        write_varint(&mut out, item.len() as u64);
        out.extend_from_slice(item);
    }
    Value::from(out)
}

fn decode_items(value: Option<&Value>) -> Result<Vec<Vec<u8>>> {
    let Some(value) = value else {
        return Ok(vec![]);
    };
    let buf = value.as_slice();
    let mut pos = 0usize;
    let count = read_varint(buf, &mut pos)? as usize;
    let mut items = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let len = read_varint(buf, &mut pos)? as usize;
        if pos + len > buf.len() {
            return Err(Error::Corruption("list item overflows buffer".into()));
        }
        items.push(buf[pos..pos + len].to_vec());
        pos += len;
    }
    Ok(items)
}

fn encode_pairs(pairs: &[(Vec<u8>, Vec<u8>)]) -> Value {
    let mut out = Vec::new();
    write_varint(&mut out, pairs.len() as u64);
    for (f, v) in pairs {
        write_varint(&mut out, f.len() as u64);
        out.extend_from_slice(f);
        write_varint(&mut out, v.len() as u64);
        out.extend_from_slice(v);
    }
    Value::from(out)
}

fn decode_pairs(value: Option<&Value>) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
    let Some(value) = value else {
        return Ok(vec![]);
    };
    let buf = value.as_slice();
    let mut pos = 0usize;
    let count = read_varint(buf, &mut pos)? as usize;
    let mut pairs = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let flen = read_varint(buf, &mut pos)? as usize;
        if pos + flen > buf.len() {
            return Err(Error::Corruption("hash field overflows buffer".into()));
        }
        let field = buf[pos..pos + flen].to_vec();
        pos += flen;
        let vlen = read_varint(buf, &mut pos)? as usize;
        if pos + vlen > buf.len() {
            return Err(Error::Corruption("hash value overflows buffer".into()));
        }
        let val = buf[pos..pos + vlen].to_vec();
        pos += vlen;
        pairs.push((field, val));
    }
    Ok(pairs)
}

fn encode_scored(entries: &[(f64, Vec<u8>)]) -> Value {
    let mut out = Vec::new();
    write_varint(&mut out, entries.len() as u64);
    for (score, member) in entries {
        out.extend_from_slice(&score.to_bits().to_le_bytes());
        write_varint(&mut out, member.len() as u64);
        out.extend_from_slice(member);
    }
    Value::from(out)
}

fn decode_scored(value: Option<&Value>) -> Result<Vec<(f64, Vec<u8>)>> {
    let Some(value) = value else {
        return Ok(vec![]);
    };
    let buf = value.as_slice();
    let mut pos = 0usize;
    let count = read_varint(buf, &mut pos)? as usize;
    let mut entries = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        if pos + 8 > buf.len() {
            return Err(Error::Corruption("zset score truncated".into()));
        }
        let score = f64::from_bits(u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap()));
        pos += 8;
        let mlen = read_varint(buf, &mut pos)? as usize;
        if pos + mlen > buf.len() {
            return Err(Error::Corruption("zset member overflows buffer".into()));
        }
        entries.push((score, buf[pos..pos + mlen].to_vec()));
        pos += mlen;
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TierBaseConfig;
    use crate::store::TierBase;
    use std::sync::Arc;

    fn store(name: &str) -> TierBase {
        let dir = std::env::temp_dir().join(format!("tb-types-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TierBase::open(TierBaseConfig::builder(dir).build()).unwrap()
    }

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    #[test]
    fn list_push_pop_range() {
        let tb = store("list");
        let t = DataTypes::new(&tb);
        assert_eq!(t.list_push(&k("l"), b"b", ListEnd::Tail).unwrap(), 1);
        assert_eq!(t.list_push(&k("l"), b"c", ListEnd::Tail).unwrap(), 2);
        assert_eq!(t.list_push(&k("l"), b"a", ListEnd::Head).unwrap(), 3);
        assert_eq!(
            t.list_range(&k("l"), 0, 10).unwrap(),
            vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]
        );
        assert_eq!(
            t.list_pop(&k("l"), ListEnd::Head).unwrap(),
            Some(b"a".to_vec())
        );
        assert_eq!(
            t.list_pop(&k("l"), ListEnd::Tail).unwrap(),
            Some(b"c".to_vec())
        );
        assert_eq!(t.list_len(&k("l")).unwrap(), 1);
        t.list_pop(&k("l"), ListEnd::Head).unwrap();
        assert_eq!(t.list_pop(&k("l"), ListEnd::Head).unwrap(), None);
        // Fully-emptied structures free their key.
        assert_eq!(tb.get(&k("l")).unwrap(), None);
    }

    #[test]
    fn set_semantics() {
        let tb = store("set");
        let t = DataTypes::new(&tb);
        assert!(t.set_add(&k("s"), b"x").unwrap());
        assert!(!t.set_add(&k("s"), b"x").unwrap(), "duplicate add");
        assert!(t.set_add(&k("s"), b"y").unwrap());
        assert!(t.set_contains(&k("s"), b"x").unwrap());
        assert!(!t.set_contains(&k("s"), b"z").unwrap());
        assert_eq!(t.set_members(&k("s")).unwrap().len(), 2);
        assert!(t.set_remove(&k("s"), b"x").unwrap());
        assert!(!t.set_remove(&k("s"), b"x").unwrap());
    }

    #[test]
    fn hash_semantics() {
        let tb = store("hash");
        let t = DataTypes::new(&tb);
        assert!(t.hash_set(&k("h"), b"f1", b"v1").unwrap());
        assert!(!t.hash_set(&k("h"), b"f1", b"v2").unwrap(), "overwrite");
        assert_eq!(t.hash_get(&k("h"), b"f1").unwrap(), Some(b"v2".to_vec()));
        assert_eq!(t.hash_get(&k("h"), b"nope").unwrap(), None);
        t.hash_set(&k("h"), b"f2", b"v3").unwrap();
        assert_eq!(t.hash_get_all(&k("h")).unwrap().len(), 2);
        assert!(t.hash_del(&k("h"), b"f1").unwrap());
        assert!(!t.hash_del(&k("h"), b"f1").unwrap());
    }

    #[test]
    fn zset_ordering() {
        let tb = store("zset");
        let t = DataTypes::new(&tb);
        t.zset_add(&k("z"), b"mid", 5.0).unwrap();
        t.zset_add(&k("z"), b"low", 1.0).unwrap();
        t.zset_add(&k("z"), b"high", 9.0).unwrap();
        let range = t.zset_range(&k("z"), 0, 10).unwrap();
        let members: Vec<&[u8]> = range.iter().map(|(_, m)| m.as_slice()).collect();
        assert_eq!(members, vec![&b"low"[..], b"mid", b"high"]);
        // Score update re-ranks.
        assert!(!t.zset_add(&k("z"), b"low", 100.0).unwrap());
        let range = t.zset_range(&k("z"), 0, 10).unwrap();
        assert_eq!(range.last().unwrap().1, b"low".to_vec());
        assert_eq!(t.zset_score(&k("z"), b"mid").unwrap(), Some(5.0));
        assert!(t.zset_remove(&k("z"), b"mid").unwrap());
        assert_eq!(t.zset_score(&k("z"), b"mid").unwrap(), None);
    }

    #[test]
    fn concurrent_structure_updates_do_not_lose_elements() {
        let tb = Arc::new(store("conc"));
        let mut handles = vec![];
        for t in 0..4 {
            let tb = tb.clone();
            handles.push(std::thread::spawn(move || {
                let types = DataTypes::new(tb.as_ref());
                for i in 0..100 {
                    types
                        .set_add(&k("shared"), format!("{t}-{i}").as_bytes())
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let types = DataTypes::new(tb.as_ref());
        assert_eq!(types.set_members(&k("shared")).unwrap().len(), 400);
    }

    #[test]
    fn corrupted_structure_is_error() {
        let tb = store("corrupt");
        let t = DataTypes::new(&tb);
        // A varint promising more items than bytes exist.
        tb.put(k("bad"), Value::from(vec![200u8, 200, 1, 5]))
            .unwrap();
        assert!(t.list_len(&k("bad")).is_err() || t.list_len(&k("bad")).is_ok());
        // Must not panic either way (count may decode but items overflow).
        let _ = t.set_members(&k("bad"));
    }
}
