//! Wide-column access (§3): rows of named columns over the key-value
//! core. A row is stored as one hash-typed value; cells address
//! `(row, column)` pairs. The row key carries a Redis-style hash tag so
//! all of a row's operations land on one cluster slot.

use crate::types::DataTypes;
use tb_common::{Key, KvEngine, Result};

/// Wide-column view over any engine.
pub struct WideColumn<'e, E: KvEngine + ?Sized> {
    types: DataTypes<'e, E>,
    table: String,
}

impl<'e, E: KvEngine + ?Sized> WideColumn<'e, E> {
    /// A named table within the keyspace.
    pub fn new(engine: &'e E, table: impl Into<String>) -> Self {
        Self {
            types: DataTypes::new(engine),
            table: table.into(),
        }
    }

    fn row_key(&self, row: &[u8]) -> Key {
        let mut k = Vec::with_capacity(self.table.len() + row.len() + 8);
        k.extend_from_slice(b"wc:");
        k.extend_from_slice(self.table.as_bytes());
        k.extend_from_slice(b":{");
        k.extend_from_slice(row);
        k.push(b'}');
        Key::from(k)
    }

    /// Writes one cell; true when the column is new for this row.
    pub fn put_cell(&self, row: &[u8], column: &[u8], value: &[u8]) -> Result<bool> {
        self.types.hash_set(&self.row_key(row), column, value)
    }

    /// Reads one cell.
    pub fn get_cell(&self, row: &[u8], column: &[u8]) -> Result<Option<Vec<u8>>> {
        self.types.hash_get(&self.row_key(row), column)
    }

    /// Deletes one cell; true when it existed.
    pub fn delete_cell(&self, row: &[u8], column: &[u8]) -> Result<bool> {
        self.types.hash_del(&self.row_key(row), column)
    }

    /// Reads an entire row as (column, value) pairs.
    pub fn get_row(&self, row: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.types.hash_get_all(&self.row_key(row))
    }

    /// Writes many cells of one row.
    pub fn put_row(&self, row: &[u8], cells: &[(&[u8], &[u8])]) -> Result<()> {
        for (col, val) in cells {
            self.put_cell(row, col, val)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TierBaseConfig;
    use crate::store::TierBase;
    use tb_common::slot_for_key;

    fn store(name: &str) -> TierBase {
        let dir = std::env::temp_dir().join(format!("tb-wide-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TierBase::open(TierBaseConfig::builder(dir).build()).unwrap()
    }

    #[test]
    fn cell_roundtrip() {
        let tb = store("cell");
        let wc = WideColumn::new(&tb, "users");
        assert!(wc.put_cell(b"u1", b"name", b"alice").unwrap());
        assert!(!wc.put_cell(b"u1", b"name", b"bob").unwrap());
        assert_eq!(wc.get_cell(b"u1", b"name").unwrap(), Some(b"bob".to_vec()));
        assert_eq!(wc.get_cell(b"u1", b"age").unwrap(), None);
        assert_eq!(wc.get_cell(b"u2", b"name").unwrap(), None);
    }

    #[test]
    fn row_operations() {
        let tb = store("row");
        let wc = WideColumn::new(&tb, "orders");
        wc.put_row(
            b"o-42",
            &[
                (b"amount".as_slice(), b"100".as_slice()),
                (b"cur", b"CNY"),
                (b"status", b"OK"),
            ],
        )
        .unwrap();
        let row = wc.get_row(b"o-42").unwrap();
        assert_eq!(row.len(), 3);
        assert!(wc.delete_cell(b"o-42", b"status").unwrap());
        assert_eq!(wc.get_row(b"o-42").unwrap().len(), 2);
    }

    #[test]
    fn tables_are_isolated() {
        let tb = store("iso");
        let a = WideColumn::new(&tb, "a");
        let b = WideColumn::new(&tb, "b");
        a.put_cell(b"r", b"c", b"va").unwrap();
        b.put_cell(b"r", b"c", b"vb").unwrap();
        assert_eq!(a.get_cell(b"r", b"c").unwrap(), Some(b"va".to_vec()));
        assert_eq!(b.get_cell(b"r", b"c").unwrap(), Some(b"vb".to_vec()));
    }

    #[test]
    fn row_key_is_slot_stable() {
        let tb = store("slot");
        let wc = WideColumn::new(&tb, "t");
        // The hash tag pins all row keys for a row to the same slot; two
        // different rows map elsewhere with overwhelming probability.
        let k1 = wc.row_key(b"row-1");
        let k2 = wc.row_key(b"row-1");
        assert_eq!(slot_for_key(k1.as_slice()), slot_for_key(k2.as_slice()));
    }
}
