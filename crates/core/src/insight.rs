//! Insight: monitoring, diagnosis, and workload-based suggestions (§3).
//!
//! TierBase ships "monitoring and analysis tools for real-time metrics
//! collection, problem diagnosis, and workload-based suggestions". This
//! module is that service: it snapshots a store's live counters,
//! diagnoses the workload regime against the cost model's decision
//! table (Table 1), and emits concrete configuration advice —
//! tiering, compression (including the §4.2 retrain trigger), PMem,
//! elastic threading, and cache sizing.

use crate::config::{CompressionChoice, SyncPolicy};
use crate::store::TierBase;
use std::sync::atomic::Ordering;
use tb_common::KvEngine;

/// A point-in-time view of a store's health.
#[derive(Debug, Clone, PartialEq)]
pub struct InsightSnapshot {
    pub gets: u64,
    pub puts: u64,
    pub read_write_ratio: f64,
    pub miss_ratio: f64,
    pub resident_bytes: u64,
    pub dirty_bytes: u64,
    pub write_through_failures: u64,
    pub compression_should_retrain: bool,
    /// Sampled mean key re-access interval (§6.5.3), if observed.
    pub mean_access_interval_secs: Option<f64>,
}

/// One piece of advice with its rationale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suggestion {
    pub action: Action,
    pub reason: String,
}

/// Actions the advisor can recommend (Table 1's option column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    EnableTieredStorage,
    EnableCompression,
    RetrainCompression,
    EnablePmem,
    EnableElasticThreading,
    IncreaseCacheCapacity,
    SwitchToWriteBack,
    SwitchToWriteThrough,
    InvestigateStorageFailures,
}

/// The monitoring/suggestion service for one store.
pub struct Insight<'s> {
    store: &'s TierBase,
}

impl<'s> Insight<'s> {
    pub fn new(store: &'s TierBase) -> Self {
        Self { store }
    }

    /// Captures the live counters.
    pub fn snapshot(&self) -> InsightSnapshot {
        let stats = self.store.stats();
        let gets = stats.gets.load(Ordering::Relaxed);
        let puts = stats.puts.load(Ordering::Relaxed);
        InsightSnapshot {
            gets,
            puts,
            read_write_ratio: gets as f64 / puts.max(1) as f64,
            miss_ratio: stats.miss_ratio(),
            resident_bytes: self.store.resident_bytes(),
            dirty_bytes: self.store.dirty_bytes(),
            write_through_failures: stats.write_through_failures.load(Ordering::Relaxed),
            compression_should_retrain: self.store.compression_should_retrain(),
            mean_access_interval_secs: self.store.mean_access_interval_secs(),
        }
    }

    /// Diagnoses the snapshot against the configuration and emits
    /// suggestions (the Table 1 mapping, §2.5.3).
    pub fn suggest(&self) -> Vec<Suggestion> {
        let snap = self.snapshot();
        let config = self.store.config();
        let mut out = Vec::new();

        // Compression health (§4.2 monitor).
        if snap.compression_should_retrain {
            out.push(Suggestion {
                action: Action::RetrainCompression,
                reason: "compression ratio degraded or pattern-miss rate exceeded threshold".into(),
            });
        }

        // Space-heavy, untiered, uncompressed → Table 1 "Space-critical".
        if config.policy == SyncPolicy::InMemory
            && config.compression == CompressionChoice::None
            && snap.read_write_ratio >= 1.0
        {
            out.push(Suggestion {
                action: Action::EnableCompression,
                reason: format!(
                    "read-heavy in-memory store ({:.0}:1) pays full DRAM price; \
                     pre-trained compression trades cheap CPU for space",
                    snap.read_write_ratio
                ),
            });
            if config.pmem.is_none() {
                out.push(Suggestion {
                    action: Action::EnablePmem,
                    reason: "values can move to PMem at a fraction of DRAM cost".into(),
                });
            }
        }

        // Untested tiering for skewed access: high hit ratio in a small
        // cache implies a tiered deployment would serve most traffic
        // from a fraction of the footprint.
        if config.policy == SyncPolicy::InMemory && snap.miss_ratio < 0.2 && snap.gets > 1000 {
            out.push(Suggestion {
                action: Action::EnableTieredStorage,
                reason: format!(
                    "miss ratio {:.2} suggests strong locality; a cache tier over \
                     disaggregated storage would cut space cost",
                    snap.miss_ratio
                ),
            });
        }

        // Tiered stores: cache sizing and policy fit.
        if config.needs_storage_tier() {
            if snap.miss_ratio > 0.5 && snap.gets > 1000 {
                out.push(Suggestion {
                    action: Action::IncreaseCacheCapacity,
                    reason: format!(
                        "miss ratio {:.2}: the cache is too small for the hot set \
                         (every miss pays PC_miss)",
                        snap.miss_ratio
                    ),
                });
            }
            let write_share = snap.puts as f64 / (snap.gets + snap.puts).max(1) as f64;
            if config.policy == SyncPolicy::WriteThrough && write_share > 0.4 {
                out.push(Suggestion {
                    action: Action::SwitchToWriteBack,
                    reason: format!(
                        "{:.0}% writes: write-back batching would cut per-write \
                         storage round-trips (§4.1.3)",
                        write_share * 100.0
                    ),
                });
            }
            if config.policy == SyncPolicy::WriteBack && write_share < 0.1 && config.replicas > 0 {
                out.push(Suggestion {
                    action: Action::SwitchToWriteThrough,
                    reason: format!(
                        "{:.0}% writes: write-through would drop the replicated \
                         dirty-data space cost (§4.1.3)",
                        write_share * 100.0
                    ),
                });
            }
        }

        // Threading.
        if matches!(config.threading, tb_elastic::ThreadMode::Single)
            && snap.gets + snap.puts > 10_000
        {
            out.push(Suggestion {
                action: Action::EnableElasticThreading,
                reason: "hot single-threaded instance; elastic boost uses idle \
                         container cores for free (§4.4)"
                    .into(),
            });
        }

        // Reliability.
        if snap.write_through_failures > 0 {
            out.push(Suggestion {
                action: Action::InvestigateStorageFailures,
                reason: format!(
                    "{} storage writes failed and invalidated cache entries",
                    snap.write_through_failures
                ),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TierBaseConfig;
    use tb_common::{Key, KvEngine, Value};

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tb-insight-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn has(suggestions: &[Suggestion], action: Action) -> bool {
        suggestions.iter().any(|s| s.action == action)
    }

    #[test]
    fn read_heavy_in_memory_suggests_compression_and_pmem() {
        let store = TierBase::open(
            TierBaseConfig::builder(tmpdir("rh"))
                .cache_capacity(16 << 20)
                .build(),
        )
        .unwrap();
        for i in 0..100 {
            store
                .put(Key::from(format!("k{i}")), Value::from("v"))
                .unwrap();
        }
        for _ in 0..15 {
            for i in 0..100 {
                store.get(&Key::from(format!("k{i}"))).unwrap();
            }
        }
        let insight = Insight::new(&store);
        let snap = insight.snapshot();
        assert!(snap.read_write_ratio > 5.0);
        let suggestions = insight.suggest();
        assert!(
            has(&suggestions, Action::EnableCompression),
            "{suggestions:?}"
        );
        assert!(has(&suggestions, Action::EnablePmem));
        assert!(has(&suggestions, Action::EnableTieredStorage));
    }

    #[test]
    fn write_heavy_write_through_suggests_write_back() {
        let store = TierBase::open(
            TierBaseConfig::builder(tmpdir("wh"))
                .cache_capacity(16 << 20)
                .policy(SyncPolicy::WriteThrough)
                .build(),
        )
        .unwrap();
        for i in 0..2000 {
            store
                .put(Key::from(format!("k{i}")), Value::from("v"))
                .unwrap();
        }
        let suggestions = Insight::new(&store).suggest();
        assert!(
            has(&suggestions, Action::SwitchToWriteBack),
            "{suggestions:?}"
        );
    }

    #[test]
    fn thrashing_tiered_cache_suggests_more_capacity() {
        let store = TierBase::open(
            TierBaseConfig::builder(tmpdir("thrash"))
                .cache_capacity(16 << 10)
                .cache_shards(2)
                .policy(SyncPolicy::WriteThrough)
                .build(),
        )
        .unwrap();
        for i in 0..2000 {
            store
                .put(Key::from(format!("k{i}")), Value::from(vec![b'x'; 100]))
                .unwrap();
        }
        // Uniform scan: guaranteed thrash.
        for i in 0..2000 {
            store.get(&Key::from(format!("k{i}"))).unwrap();
        }
        let insight = Insight::new(&store);
        assert!(insight.snapshot().miss_ratio > 0.5);
        assert!(has(&insight.suggest(), Action::IncreaseCacheCapacity));
    }

    #[test]
    fn storage_failures_flagged() {
        let store = TierBase::open(
            TierBaseConfig::builder(tmpdir("fail"))
                .cache_capacity(16 << 20)
                .policy(SyncPolicy::WriteThrough)
                .build(),
        )
        .unwrap();
        store.inject_storage_write_failures(1);
        let _ = store.put(Key::from("k"), Value::from("v"));
        assert!(has(
            &Insight::new(&store).suggest(),
            Action::InvestigateStorageFailures
        ));
    }

    #[test]
    fn quiet_healthy_store_is_mostly_silent() {
        let store = TierBase::open(
            TierBaseConfig::builder(tmpdir("quiet"))
                .cache_capacity(16 << 20)
                .policy(SyncPolicy::WriteBack)
                .build(),
        )
        .unwrap();
        store.put(Key::from("k"), Value::from("v")).unwrap();
        let suggestions = Insight::new(&store).suggest();
        assert!(
            !has(&suggestions, Action::InvestigateStorageFailures)
                && !has(&suggestions, Action::IncreaseCacheCapacity),
            "{suggestions:?}"
        );
    }
}
