//! TierBase configuration: the `s` in the cost model's `C(w, i, s)`.
//!
//! Every knob here is a point in the configuration space the cost
//! optimization framework (§5.3) searches: cache capacity and replica
//! count move `SC`; the sync policy and persistence mode move `PC` and
//! durability; compression and PMem trade one for the other.

use std::path::PathBuf;
use std::sync::Arc;
use tb_common::{Clock, SystemClock};
use tb_elastic::ThreadMode;

/// How the cache tier synchronizes with the storage tier (§4.1), or
/// persists itself when it *is* the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Cache only; no durability (Redis/Memcached-style cache).
    InMemory,
    /// Synchronous storage update before acknowledging (§4.1.1).
    WriteThrough,
    /// Asynchronous batched storage update; dirty data replicated
    /// (§4.1.2).
    WriteBack,
}

/// Durability of the cache tier itself (used with [`SyncPolicy::InMemory`]
/// when no storage tier exists — the Redis-AOF comparison point).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistenceMode {
    /// No persistence.
    None,
    /// Write-ahead log on disk, asynchronous fsync (paper's "WAL").
    Wal,
    /// WAL on a PMem persistent ring buffer, synced per transaction and
    /// batch-drained ("WAL-PMem").
    WalPmem,
}

/// Which value compressor to pre-train (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressionChoice {
    None,
    /// Dictionary-less LZ ("Zstd-b" analog).
    Tzstd,
    /// Dictionary-trained LZ ("Zstd-d" analog).
    TzstdDict,
    /// Pattern-based compression.
    Pbc,
}

/// Write-back pacing.
#[derive(Debug, Clone, Copy)]
pub struct WriteBackTuning {
    /// Flush when dirty bytes exceed this.
    pub max_dirty_bytes: u64,
    /// Flush at least every N write operations.
    pub flush_every_ops: u64,
    /// Storage batch size per flush RPC.
    pub batch_size: usize,
}

impl Default for WriteBackTuning {
    fn default() -> Self {
        Self {
            max_dirty_bytes: 8 << 20,
            flush_every_ops: 1024,
            batch_size: 256,
        }
    }
}

/// PMem usage for the cache tier (§4.3).
#[derive(Debug, Clone, Copy)]
pub struct PmemTuning {
    /// Values at or above this size are placed in PMem.
    pub value_threshold: usize,
    /// PMem $/GB relative to DRAM (discounts `SC`).
    pub cost_factor: f64,
}

impl Default for PmemTuning {
    fn default() -> Self {
        Self {
            value_threshold: 64,
            cost_factor: 0.4,
        }
    }
}

/// Full store configuration.
#[derive(Clone)]
pub struct TierBaseConfig {
    /// Data directory for WAL / storage-tier files.
    pub dir: PathBuf,
    /// Cache tier byte budget (per node).
    pub cache_capacity: usize,
    /// Cache shard count.
    pub cache_shards: usize,
    /// Cache replicas (dirty-data safety for write-back; availability
    /// for in-memory). Each replica doubles cache space cost.
    pub replicas: usize,
    /// How writes propagate to replicas (sync / quorum / async).
    pub replication_mode: tb_cache::ReplicationMode,
    /// Cache/storage synchronization policy.
    pub policy: SyncPolicy,
    /// Cache-tier persistence (only meaningful without a storage tier).
    pub persistence: PersistenceMode,
    /// Value compression.
    pub compression: CompressionChoice,
    /// Enable the DRAM/PMem split for cache values.
    pub pmem: Option<PmemTuning>,
    /// Threading mode (single, multi, elastic).
    pub threading: ThreadMode,
    /// Write-back pacing.
    pub write_back: WriteBackTuning,
    /// Simulated storage-tier network round-trip, in microseconds.
    pub storage_rtt_us: u64,
    /// PMem ring capacity for WAL-PMem.
    pub pmem_ring_bytes: usize,
    /// Time source for TTL expiry (tests inject a `ManualClock`).
    pub clock: Arc<dyn Clock>,
}

impl std::fmt::Debug for TierBaseConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TierBaseConfig")
            .field("dir", &self.dir)
            .field("cache_capacity", &self.cache_capacity)
            .field("cache_shards", &self.cache_shards)
            .field("replicas", &self.replicas)
            .field("replication_mode", &self.replication_mode)
            .field("policy", &self.policy)
            .field("persistence", &self.persistence)
            .field("compression", &self.compression)
            .field("pmem", &self.pmem)
            .field("threading", &self.threading)
            .field("write_back", &self.write_back)
            .field("storage_rtt_us", &self.storage_rtt_us)
            .field("pmem_ring_bytes", &self.pmem_ring_bytes)
            .finish_non_exhaustive()
    }
}

impl TierBaseConfig {
    pub fn builder(dir: impl Into<PathBuf>) -> TierBaseConfigBuilder {
        TierBaseConfigBuilder {
            config: TierBaseConfig {
                dir: dir.into(),
                cache_capacity: 64 << 20,
                cache_shards: 16,
                replicas: 0,
                replication_mode: tb_cache::ReplicationMode::Sync,
                policy: SyncPolicy::InMemory,
                persistence: PersistenceMode::None,
                compression: CompressionChoice::None,
                pmem: None,
                threading: ThreadMode::Single,
                write_back: WriteBackTuning::default(),
                storage_rtt_us: 0,
                pmem_ring_bytes: 8 << 20,
                clock: Arc::new(SystemClock::new()),
            },
        }
    }

    /// True when a storage tier must be opened.
    pub fn needs_storage_tier(&self) -> bool {
        matches!(
            self.policy,
            SyncPolicy::WriteThrough | SyncPolicy::WriteBack
        )
    }
}

/// Fluent builder for [`TierBaseConfig`].
pub struct TierBaseConfigBuilder {
    config: TierBaseConfig,
}

impl TierBaseConfigBuilder {
    pub fn cache_capacity(mut self, bytes: usize) -> Self {
        self.config.cache_capacity = bytes;
        self
    }

    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.config.cache_shards = shards;
        self
    }

    pub fn replicas(mut self, n: usize) -> Self {
        self.config.replicas = n;
        self
    }

    pub fn replication_mode(mut self, mode: tb_cache::ReplicationMode) -> Self {
        self.config.replication_mode = mode;
        self
    }

    pub fn policy(mut self, p: SyncPolicy) -> Self {
        self.config.policy = p;
        self
    }

    pub fn persistence(mut self, p: PersistenceMode) -> Self {
        self.config.persistence = p;
        self
    }

    pub fn compression(mut self, c: CompressionChoice) -> Self {
        self.config.compression = c;
        self
    }

    pub fn pmem(mut self, tuning: PmemTuning) -> Self {
        self.config.pmem = Some(tuning);
        self
    }

    pub fn threading(mut self, mode: ThreadMode) -> Self {
        self.config.threading = mode;
        self
    }

    pub fn write_back(mut self, tuning: WriteBackTuning) -> Self {
        self.config.write_back = tuning;
        self
    }

    pub fn storage_rtt_us(mut self, us: u64) -> Self {
        self.config.storage_rtt_us = us;
        self
    }

    pub fn pmem_ring_bytes(mut self, bytes: usize) -> Self {
        self.config.pmem_ring_bytes = bytes;
        self
    }

    /// Injects a time source (deterministic TTL tests).
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.config.clock = clock;
        self
    }

    pub fn build(self) -> TierBaseConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let c = TierBaseConfig::builder("/tmp/x").build();
        assert_eq!(c.policy, SyncPolicy::InMemory);
        assert_eq!(c.persistence, PersistenceMode::None);
        assert_eq!(c.compression, CompressionChoice::None);
        assert!(!c.needs_storage_tier());
        assert!(c.pmem.is_none());
    }

    #[test]
    fn tiered_policies_need_storage() {
        for p in [SyncPolicy::WriteThrough, SyncPolicy::WriteBack] {
            let c = TierBaseConfig::builder("/tmp/x").policy(p).build();
            assert!(c.needs_storage_tier());
        }
    }

    #[test]
    fn builder_sets_fields() {
        let c = TierBaseConfig::builder("/tmp/x")
            .cache_capacity(1234)
            .replicas(2)
            .compression(CompressionChoice::Pbc)
            .pmem(PmemTuning::default())
            .threading(ThreadMode::Elastic(4))
            .build();
        assert_eq!(c.cache_capacity, 1234);
        assert_eq!(c.replicas, 2);
        assert_eq!(c.compression, CompressionChoice::Pbc);
        assert!(c.pmem.is_some());
        assert_eq!(c.threading, ThreadMode::Elastic(4));
    }
}
