//! # TierBase
//!
//! A workload-driven, cost-optimized key-value store — a from-scratch
//! Rust reproduction of *"TierBase: A Workload-Driven Cost-Optimized
//! Key-Value Store"* (Shen et al., ICDE 2025, Ant Group).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | module | crate | what it is |
//! |---|---|---|
//! | [`store`] | `tierbase-core` | the TierBase store: tiered cache+storage, write-through/write-back, persistence modes, compression, elastic threading, data types, vector search |
//! | [`costmodel`] | `tb-costmodel` | the Space-Performance Cost Model, Optimal Cost Theorem, tiered cost, Five-Minute-Rule break-even, evaluation framework |
//! | [`cache`] | `tb-cache` | the cache tier: sharded LRU tables, dirty tracking, write coalescing, replication |
//! | [`lsm`] | `tb-lsm` | the storage tier: WAL, SSTables, bloom filters, leveled compaction, disaggregated façade |
//! | [`pmem`] | `tb-pmem` | simulated persistent memory: latency-modeled device, persistent ring buffer, DRAM/PMem placement |
//! | [`compress`] | `tb-compress` | pre-trained compression: tzstd (dictionary LZ) and PBC (pattern-based) |
//! | [`elastic`] | `tb-elastic` | elastic threading runtime |
//! | [`workload`] | `tb-workload` | YCSB-style generators, datasets, trace record/replay |
//! | [`frontend`] | `tb-frontend` | pipelined request front-end: sharded submission queues, group-commit workers, backpressure |
//! | [`cluster`] | `tb-cluster` | hash-slot sharding, coordinators, failover, smart client, proxy |
//! | [`server`] | `tb-server` | network serving: pipelined wire protocol, TCP/Unix-socket server, `KvEngine` socket client |
//! | [`obs`] | `tb-obs` | unified telemetry: global metrics registry (counters/gauges/latency histograms), span tracer, Prometheus/JSON snapshots |
//! | [`baselines`] | `tb-baselines` | redis-/memcached-/dragonfly-/cassandra-/hbase-like comparators |
//! | [`common`] | `tb-common` | shared types, errors, clocks, histograms, hashing, `KvEngine` |
//!
//! ## Quickstart
//!
//! ```no_run
//! use tierbase::prelude::*;
//!
//! let dir = std::env::temp_dir().join("tierbase-quickstart");
//! let store = TierBase::open(
//!     TierBaseConfig::builder(dir)
//!         .cache_capacity(64 << 20)
//!         .policy(SyncPolicy::WriteThrough)
//!         .build(),
//! )?;
//! store.put(Key::from("greeting"), Value::from("hello"))?;
//! assert_eq!(store.get(&Key::from("greeting"))?, Some(Value::from("hello")));
//! # Ok::<(), tierbase::common::Error>(())
//! ```

pub use tb_baselines as baselines;
pub use tb_cache as cache;
pub use tb_cluster as cluster;
pub use tb_common as common;
pub use tb_compress as compress;
pub use tb_costmodel as costmodel;
pub use tb_elastic as elastic;
pub use tb_frontend as frontend;
pub use tb_lsm as lsm;
pub use tb_obs as obs;
pub use tb_pmem as pmem;
pub use tb_server as server;
pub use tb_workload as workload;
pub use tierbase_core as store;

/// The items most applications need.
pub mod prelude {
    pub use tb_cache::ReplicationMode;
    pub use tb_common::{
        BatchReadStats, EngineOp, Error, Key, KvEngine, Lsn, OpOutcome, Result, TtlState, Value,
    };
    pub use tb_costmodel::{CostMetrics, InstanceSpec, WorkloadDemand};
    pub use tb_frontend::{Frontend, FrontendConfig};
    pub use tb_workload::{Op, Trace, Workload, WorkloadSpec};
    pub use tierbase_core::{
        CompressionChoice, DataTypes, PersistenceMode, PmemTuning, SyncPolicy, TierBase,
        TierBaseConfig, WideColumn,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn umbrella_reexports_work() {
        let dir = tb_common::test_dir("tb-umbrella");
        let store = TierBase::open(TierBaseConfig::builder(dir.path()).build()).unwrap();
        store.put(Key::from("k"), Value::from("v")).unwrap();
        assert_eq!(store.get(&Key::from("k")).unwrap(), Some(Value::from("v")));
    }
}
