//! End-to-end range-scan acceptance: YCSB-E through the cluster.
//!
//! A generated YCSB-E trace (95% scans, 5% inserts, zipfian starts)
//! runs against a 3-node cluster of pipelined, read-pooled LSM nodes
//! via `ClusterClient::scan` — hash placement scatters every range
//! over all owners, so each scan exercises the fan-out, k-way merge,
//! and global re-limit — and every scan's rows must be identical to a
//! single-node `BTreeMap` oracle: ascending key order, end-exclusive,
//! tombstone-masked, truncated to the scan's limit.

use std::collections::BTreeMap;
use std::sync::Arc;
use tierbase::cluster::{ClusterClient, CoordinatorGroup, NodeId, NodeStore, ServingMode};
use tierbase::common::{test_dir, Key, KvEngine, Value};
use tierbase::frontend::FrontendConfig;
use tierbase::lsm::{LsmConfig, LsmDb};
use tierbase::prelude::{Op, Workload, WorkloadSpec};

#[test]
fn ycsb_e_cluster_scans_match_oracle() {
    let dir = test_dir("tb-scan-e2e");
    let dbs: Vec<Arc<LsmDb>> = (0..3)
        .map(|i| {
            let mut config = LsmConfig::small_for_tests(dir.path().join(format!("n{i}")));
            config.read_pool_threads = 2;
            Arc::new(LsmDb::open(config).expect("open node lsm"))
        })
        .collect();
    let nodes = dbs
        .iter()
        .enumerate()
        .map(|(i, db)| {
            NodeStore::with_serving_mode(
                NodeId(i as u32),
                db.clone() as Arc<dyn KvEngine>,
                ServingMode::Pipelined(FrontendConfig::with_shards(2)),
            )
        })
        .collect();
    let coordinators = Arc::new(CoordinatorGroup::bootstrap(1, nodes).expect("bootstrap"));
    let client = ClusterClient::connect(coordinators);

    let (load, run) = Workload::new(WorkloadSpec::ycsb_e(1_500, 2_000)).generate();
    let mut oracle: BTreeMap<Key, Value> = BTreeMap::new();
    for op in load.ops() {
        match op {
            Op::Insert { key, value } => {
                client.put(key.clone(), value.clone()).unwrap();
                oracle.insert(key.clone(), value.clone());
            }
            other => panic!("YCSB-E load phase is insert-only, got {other:?}"),
        }
    }
    // YCSB-E never deletes; delete a spread of keys out-of-band so the
    // scans must mask tombstones, not just report live rows.
    for (i, key) in oracle
        .keys()
        .cloned()
        .collect::<Vec<_>>()
        .iter()
        .enumerate()
    {
        if i % 7 == 3 {
            client.delete(key).unwrap();
            oracle.remove(key);
        }
    }
    // Push the working set out of the memtables so scans cross the
    // staged SSTable read path, not just in-memory state.
    for db in &dbs {
        db.flush().unwrap();
    }

    let mut scans = 0u64;
    let mut nonempty = 0u64;
    for op in run.ops() {
        match op {
            Op::Insert { key, value } => {
                client.put(key.clone(), value.clone()).unwrap();
                oracle.insert(key.clone(), value.clone());
            }
            Op::Scan { start, end, limit } => {
                let got = client.scan(start, Some(end), *limit as usize).unwrap();
                let want: Vec<(Key, Value)> = oracle
                    .range(start.clone()..end.clone())
                    .take(*limit as usize)
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                assert_eq!(
                    got, want,
                    "cluster scan [{start:?}, {end:?}) limit {limit} diverged from oracle"
                );
                assert!(
                    got.windows(2).all(|w| w[0].0 < w[1].0),
                    "scan rows out of order"
                );
                scans += 1;
                nonempty += u64::from(!got.is_empty());
            }
            other => panic!("YCSB-E run phase is scan/insert, got {other:?}"),
        }
    }
    assert!(scans >= 1_500, "run phase must be scan-heavy: {scans}");
    assert!(
        nonempty >= scans / 2,
        "scan starts missed the keyspace: {nonempty}/{scans} non-empty"
    );

    // The scans actually rode the batched read path on the nodes.
    let staged: u64 = dbs
        .iter()
        .map(|db| KvEngine::batch_read_stats(db.as_ref()).scans)
        .sum();
    assert!(
        staged >= scans,
        "node engines saw {staged} scans for {scans} client scans"
    );
}
