//! Shared conformance battery for every [`KvEngine`] in the workspace.
//!
//! One function exercises the whole trait contract — point ops, batch
//! op ordering, CAS semantics, and `resident_bytes` monotonicity — and
//! every engine (TierBase, the baselines, the bare tiers, the cluster
//! proxy, the pipelined front-end) must pass it unchanged. Any new
//! engine gets a conformance test by adding one line here.

use std::sync::Arc;
use tierbase::baselines::{CassandraLike, DragonflyLike, HBaseLike, MemcachedLike, RedisLike};
use tierbase::cluster::{ClusterClient, CoordinatorGroup, NodeId, NodeStore, Proxy, ServingMode};
use tierbase::frontend::{Frontend, FrontendConfig};
use tierbase::lsm::{DisaggregatedStore, LsmConfig, LsmDb, NetworkModel};
use tierbase::prelude::*;

fn tmpdir(name: &str) -> tierbase::common::TestDir {
    tierbase::common::test_dir(&format!("tb-conf-{name}"))
}

fn k(tag: &str, i: usize) -> Key {
    Key::from(format!("conf:{tag}:{i:04}"))
}

fn v(i: usize) -> Value {
    Value::from(format!("value-{i}-{}", "x".repeat(i % 23)))
}

/// The battery. Every assertion holds for *any* correct `KvEngine`;
/// engine-specific behavior (eviction, replication) must be configured
/// out by the caller (e.g. ample cache capacity).
fn conformance(engine: &dyn KvEngine) {
    let label = engine.label();

    // --- point ops: get / put / delete ------------------------------
    assert_eq!(
        engine.get(&k("pt", 0)).unwrap(),
        None,
        "[{label}] ghost key"
    );
    engine.put(k("pt", 0), v(0)).unwrap();
    assert_eq!(engine.get(&k("pt", 0)).unwrap(), Some(v(0)), "[{label}]");
    engine.put(k("pt", 0), v(1)).unwrap();
    assert_eq!(
        engine.get(&k("pt", 0)).unwrap(),
        Some(v(1)),
        "[{label}] overwrite"
    );
    engine.delete(&k("pt", 0)).unwrap();
    assert_eq!(
        engine.get(&k("pt", 0)).unwrap(),
        None,
        "[{label}] delete visible"
    );
    // Deleting an absent key is not an error.
    engine.delete(&k("pt", 1)).unwrap();

    // --- multi_put / multi_get ordering -----------------------------
    let pairs: Vec<(Key, Value)> = (0..32).map(|i| (k("batch", i), v(i))).collect();
    engine.multi_put(pairs).unwrap();
    // Request order: shuffled hits interleaved with misses; results
    // must align positionally with the request, not storage order.
    let request: Vec<Key> = vec![
        k("batch", 7),
        k("batch", 999), // miss
        k("batch", 0),
        k("batch", 31),
        k("batch", 500), // miss
        k("batch", 15),
    ];
    let got = engine.multi_get(&request).unwrap();
    assert_eq!(got.len(), request.len(), "[{label}] multi_get arity");
    assert_eq!(got[0], Some(v(7)), "[{label}] multi_get[0]");
    assert_eq!(got[1], None, "[{label}] multi_get miss stays positional");
    assert_eq!(got[2], Some(v(0)), "[{label}] multi_get[2]");
    assert_eq!(got[3], Some(v(31)), "[{label}] multi_get[3]");
    assert_eq!(got[4], None, "[{label}] multi_get miss stays positional");
    assert_eq!(got[5], Some(v(15)), "[{label}] multi_get[5]");
    // A later multi_put wins over the earlier one (write order).
    engine
        .multi_put(vec![(k("batch", 7), Value::from("rewritten"))])
        .unwrap();
    assert_eq!(
        engine.get(&k("batch", 7)).unwrap(),
        Some(Value::from("rewritten")),
        "[{label}] multi_put ordering"
    );

    // --- cas semantics ----------------------------------------------
    // Expected None on an absent key: creation.
    engine.cas(k("cas", 0), None, v(0)).unwrap();
    assert_eq!(engine.get(&k("cas", 0)).unwrap(), Some(v(0)), "[{label}]");
    // Wrong expectation: mismatch, value untouched.
    let err = engine
        .cas(k("cas", 0), Some(&Value::from("wrong")), v(1))
        .unwrap_err();
    assert_eq!(err, Error::CasMismatch, "[{label}] cas mismatch error");
    assert_eq!(
        engine.get(&k("cas", 0)).unwrap(),
        Some(v(0)),
        "[{label}] failed cas must not write"
    );
    // Expected None on a present key: mismatch.
    assert_eq!(
        engine.cas(k("cas", 0), None, v(1)).unwrap_err(),
        Error::CasMismatch,
        "[{label}] cas expected-absent on present key"
    );
    // Right expectation: swap succeeds.
    engine.cas(k("cas", 0), Some(&v(0)), v(2)).unwrap();
    assert_eq!(engine.get(&k("cas", 0)).unwrap(), Some(v(2)), "[{label}]");

    // --- apply_batch: submission/completion contract ----------------
    // One heterogeneous submission; completions align positionally and
    // reflect submission order (a get sees the put before it, a CAS
    // sees the CAS before it).
    let outcomes = engine.apply_batch(vec![
        EngineOp::Get(k("ab", 0)), // miss: nothing written yet
        EngineOp::Put(k("ab", 0), v(0)),
        EngineOp::Get(k("ab", 0)), // hit: the put preceded it
        EngineOp::Cas {
            key: k("ab", 0),
            expected: Some(v(0)),
            new: v(1),
        },
        EngineOp::Cas {
            key: k("ab", 0),
            expected: Some(v(0)), // stale: the batch's own CAS won
            new: v(2),
        },
        EngineOp::MultiPut(vec![(k("ab", 1), v(10)), (k("ab", 2), v(11))]),
        EngineOp::MultiGet(vec![k("ab", 2), k("ab", 999), k("ab", 1), k("ab", 0)]),
        EngineOp::Delete(k("ab", 0)),
        EngineOp::Get(k("ab", 0)), // the delete preceded it
    ]);
    assert_eq!(outcomes.len(), 9, "[{label}] one completion per op");
    assert_eq!(outcomes[0], Ok(OpOutcome::Value(None)), "[{label}] ab[0]");
    assert!(
        matches!(outcomes[1], Ok(OpOutcome::Done(_))),
        "[{label}] ab[1]: {:?}",
        outcomes[1]
    );
    assert_eq!(
        outcomes[2],
        Ok(OpOutcome::Value(Some(v(0)))),
        "[{label}] get must see the in-batch put"
    );
    assert!(
        matches!(outcomes[3], Ok(OpOutcome::Done(_))),
        "[{label}] first cas wins: {:?}",
        outcomes[3]
    );
    assert_eq!(
        outcomes[4],
        Err(Error::CasMismatch),
        "[{label}] second cas must observe the first's write — and its \
         per-op failure must not poison the batch"
    );
    assert!(
        matches!(outcomes[5], Ok(OpOutcome::Done(_))),
        "[{label}] ab[5]: {:?}",
        outcomes[5]
    );
    assert_eq!(
        outcomes[6],
        Ok(OpOutcome::Values(vec![
            Some(v(11)),
            None,
            Some(v(10)),
            Some(v(1)),
        ])),
        "[{label}] in-batch multi_get alignment"
    );
    assert!(
        matches!(outcomes[7], Ok(OpOutcome::Done(_))),
        "[{label}] ab[7]: {:?}",
        outcomes[7]
    );
    assert_eq!(
        outcomes[8],
        Ok(OpOutcome::Value(None)),
        "[{label}] get must see the in-batch delete"
    );
    // Post-batch state agrees with the completions.
    assert_eq!(engine.get(&k("ab", 0)).unwrap(), None, "[{label}]");
    assert_eq!(engine.get(&k("ab", 1)).unwrap(), Some(v(10)), "[{label}]");

    // An all-read batch (the overlapped fast path in engines with a
    // native implementation) stays positional.
    let outcomes = engine.apply_batch(vec![
        EngineOp::MultiGet(vec![k("ab", 1), k("ab", 2)]),
        EngineOp::Get(k("ab", 404)),
        EngineOp::Get(k("ab", 2)),
    ]);
    assert_eq!(
        outcomes[0],
        Ok(OpOutcome::Values(vec![Some(v(10)), Some(v(11))])),
        "[{label}] read-only batch"
    );
    assert_eq!(outcomes[1], Ok(OpOutcome::Value(None)), "[{label}]");
    assert_eq!(outcomes[2], Ok(OpOutcome::Value(Some(v(11)))), "[{label}]");

    // --- scan: ordered range reads ----------------------------------
    // Every engine must return live rows in ascending key order,
    // end-exclusive, tombstone-masked, truncated to `limit`.
    let pairs: Vec<(Key, Value)> = (0..30).map(|i| (k("scan", i), v(i))).collect();
    engine.multi_put(pairs).unwrap();
    engine.delete(&k("scan", 12)).unwrap();
    let expected: Vec<(Key, Value)> = (5..20)
        .filter(|&i| i != 12)
        .map(|i| (k("scan", i), v(i)))
        .collect();
    let rows = engine
        .scan(&k("scan", 5), Some(&k("scan", 20)), usize::MAX)
        .unwrap();
    assert_eq!(
        rows, expected,
        "[{label}] scan: order, end-exclusive, tombstone masking"
    );
    let rows = engine.scan(&k("scan", 5), Some(&k("scan", 20)), 4).unwrap();
    assert_eq!(rows, expected[..4], "[{label}] scan limit truncates");
    // Unbounded end runs to the end of the keyspace ("conf:scan:*"
    // sorts after every other key the battery writes).
    let rows = engine.scan(&k("scan", 25), None, usize::MAX).unwrap();
    let tail: Vec<(Key, Value)> = (25..30).map(|i| (k("scan", i), v(i))).collect();
    assert_eq!(rows, tail, "[{label}] unbounded scan tail");
    // Empty range and zero limit both yield nothing.
    assert!(
        engine
            .scan(&k("scan", 20), Some(&k("scan", 20)), usize::MAX)
            .unwrap()
            .is_empty(),
        "[{label}] empty range"
    );
    assert!(
        engine
            .scan(&k("scan", 0), Some(&k("scan", 30)), 0)
            .unwrap()
            .is_empty(),
        "[{label}] zero limit"
    );

    // --- scan inside a mixed batch ----------------------------------
    // A scan submitted mid-batch sees exactly the writes before it:
    // the puts at [0..2], not the delete at [3] or the put at [5].
    let outcomes = engine.apply_batch(vec![
        EngineOp::Put(k("sb", 0), v(0)),
        EngineOp::Put(k("sb", 1), v(1)),
        EngineOp::Scan {
            start: k("sb", 0),
            end: Some(k("sb", 9)),
            limit: usize::MAX,
        },
        EngineOp::Delete(k("sb", 0)),
        EngineOp::Scan {
            start: k("sb", 0),
            end: Some(k("sb", 9)),
            limit: usize::MAX,
        },
        EngineOp::Put(k("sb", 2), v(2)),
        EngineOp::Scan {
            start: k("sb", 0),
            end: Some(k("sb", 9)),
            limit: 1,
        },
    ]);
    assert_eq!(outcomes.len(), 7, "[{label}] one completion per op");
    assert_eq!(
        outcomes[2],
        Ok(OpOutcome::Range(vec![
            (k("sb", 0), v(0)),
            (k("sb", 1), v(1)),
        ])),
        "[{label}] scan sees in-batch puts before it, not writes after"
    );
    assert_eq!(
        outcomes[4],
        Ok(OpOutcome::Range(vec![(k("sb", 1), v(1))])),
        "[{label}] scan sees the in-batch delete"
    );
    assert_eq!(
        outcomes[6],
        Ok(OpOutcome::Range(vec![(k("sb", 1), v(1))])),
        "[{label}] mid-batch scan respects limit"
    );

    // --- resident_bytes monotonicity --------------------------------
    // Adding data never shrinks the footprint (engines that hold no
    // data, like the proxy, report a constant — still monotonic).
    // Payloads are incompressible noise: engines with compressed
    // on-disk formats legitimately shrink their *physical* footprint
    // when compressible data crosses a flush boundary, and the battery
    // configures that engine-specific behavior out to keep the
    // accounting check meaningful for every engine.
    let noise = |seed: usize| {
        let mut x = (seed as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let bytes: Vec<u8> = (0..128)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        Value::from(bytes)
    };
    let mut previous = engine.resident_bytes();
    for round in 0..8 {
        let pairs: Vec<(Key, Value)> = (0..16)
            .map(|i| (k("bytes", round * 16 + i), noise(round * 16 + i)))
            .collect();
        engine.multi_put(pairs).unwrap();
        let now = engine.resident_bytes();
        assert!(
            now >= previous,
            "[{label}] resident_bytes shrank while inserting: {previous} -> {now}"
        );
        previous = now;
    }

    let _ = engine.sync();
}

#[test]
fn redis_like_conforms() {
    conformance(&RedisLike::new());
}

#[test]
fn redis_aof_conforms() {
    let dir = tmpdir("redis-aof");
    conformance(&RedisLike::with_aof(dir.path()).unwrap());
}

#[test]
fn memcached_like_conforms() {
    // Capacity far above the battery's working set: no eviction.
    conformance(&MemcachedLike::new(64 << 20, 4));
}

#[test]
fn dragonfly_like_conforms() {
    conformance(&DragonflyLike::new(2));
}

#[test]
fn cassandra_like_conforms() {
    let dir = tmpdir("cassandra");
    conformance(&CassandraLike::open(dir.path()).unwrap());
}

#[test]
fn hbase_like_conforms() {
    let dir = tmpdir("hbase");
    conformance(&HBaseLike::open(dir.path()).unwrap());
}

#[test]
fn lsm_db_conforms() {
    let dir = tmpdir("lsm");
    conformance(&LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap());
}

#[test]
fn disaggregated_store_conforms() {
    let dir = tmpdir("disagg");
    let db = Arc::new(LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap());
    conformance(&DisaggregatedStore::new(db, NetworkModel::none()));
}

#[test]
fn tierbase_conforms() {
    let dir = tmpdir("tierbase");
    let tb = TierBase::open(TierBaseConfig::builder(dir.path()).build()).unwrap();
    conformance(&tb);
}

#[test]
fn cluster_proxy_conforms() {
    let nodes = (0..3)
        .map(|i| NodeStore::new(NodeId(i), Arc::new(RedisLike::new())))
        .collect();
    let coordinators = Arc::new(CoordinatorGroup::bootstrap(3, nodes).unwrap());
    conformance(&Proxy::new(coordinators));
}

#[test]
fn frontend_over_lsm_conforms() {
    let dir = tmpdir("fe-lsm");
    let db = Arc::new(LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap());
    let fe = Frontend::start(db, FrontendConfig::with_shards(4));
    conformance(&fe);
    fe.shutdown();
}

#[test]
fn frontend_per_op_sync_conforms() {
    let fe = Frontend::start(
        Arc::new(RedisLike::new()),
        FrontendConfig {
            shards: 2,
            group_commit: false,
            ..FrontendConfig::default()
        },
    );
    conformance(&fe);
    fe.shutdown();
}

#[test]
fn frontend_boosted_over_lsm_conforms() {
    // 14th configuration: the pipelined front-end over the LSM engine
    // with elastic boosting live (several drain workers may share one
    // shard), proving the battery holds through the queueing layer even
    // when batches execute on sibling workers.
    use std::time::Duration;
    use tierbase::frontend::ElasticConfig;
    let dir = tmpdir("fe-lsm-boost");
    let db = Arc::new(LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap());
    let fe = Frontend::start(
        db,
        FrontendConfig {
            shards: 2,
            queue_capacity: 32,
            max_batch: 4,
            group_commit: true,
            max_workers_per_shard: 3,
            elastic: ElasticConfig {
                boost_depth: 4,
                shrink_depth: 1,
                sample_interval: Duration::from_millis(1),
                shrink_patience: 3,
            },
        },
    );
    conformance(&fe);
    fe.shutdown();
}

#[test]
fn pipelined_cluster_node_conforms() {
    // Not a KvEngine itself, but the serving path must preserve the
    // same contract a thin client sees through a pipelined node.
    let node = NodeStore::with_serving_mode(
        NodeId(0),
        Arc::new(RedisLike::new()),
        ServingMode::Pipelined(FrontendConfig::with_shards(2)),
    );
    let nodes = vec![node];
    let coordinators = Arc::new(CoordinatorGroup::bootstrap(1, nodes).unwrap());
    let client = ClusterClient::connect(coordinators);
    client.put(Key::from("conf:a"), Value::from("1")).unwrap();
    assert_eq!(
        client.get(&Key::from("conf:a")).unwrap(),
        Some(Value::from("1"))
    );
    client.delete(&Key::from("conf:a")).unwrap();
    assert_eq!(client.get(&Key::from("conf:a")).unwrap(), None);
}

/// Build a small-table LSM config whose SSTables are written with the
/// given block codec — the conformance battery then exercises the whole
/// compressed read path (frame decode, CRC verify, batch dedup).
fn compressed_lsm_config(
    dir: &std::path::Path,
    codec: tierbase::compress::BlockCodec,
) -> LsmConfig {
    let mut config = LsmConfig::small_for_tests(dir);
    config.sst.codec = codec;
    config
}

#[test]
fn lsm_db_lz_conforms() {
    // 16th configuration: the LSM engine over LZ-compressed SSTable
    // blocks. Every frame the battery reads back decodes + CRC-verifies.
    let dir = tmpdir("lsm-lz");
    let config = compressed_lsm_config(dir.path(), tierbase::compress::BlockCodec::Lz);
    conformance(&LsmDb::open(config).unwrap());
}

#[test]
fn lsm_db_dict_conforms() {
    // 17th configuration: dictionary-trained compression; the dict is
    // sampled at flush/compaction time and persisted per table.
    let dir = tmpdir("lsm-dict");
    let config = compressed_lsm_config(dir.path(), tierbase::compress::BlockCodec::Dict);
    conformance(&LsmDb::open(config).unwrap());
}

#[test]
fn frontend_over_lz_lsm_conforms() {
    // 18th configuration: the pipelined front-end over the LZ-compressed
    // LSM engine — compressed frames flow through the pooled batch read
    // path (span coalescing + claiming-worker decompression).
    let dir = tmpdir("fe-lsm-lz");
    let config = compressed_lsm_config(dir.path(), tierbase::compress::BlockCodec::Lz);
    let db = Arc::new(LsmDb::open(config).unwrap());
    let fe = Frontend::start(db, FrontendConfig::with_shards(4));
    conformance(&fe);
    fe.shutdown();
}

#[test]
fn frontend_over_dict_lsm_conforms() {
    // 19th configuration: same pipelined path, dictionary codec.
    let dir = tmpdir("fe-lsm-dict");
    let config = compressed_lsm_config(dir.path(), tierbase::compress::BlockCodec::Dict);
    let db = Arc::new(LsmDb::open(config).unwrap());
    let fe = Frontend::start(db, FrontendConfig::with_shards(4));
    conformance(&fe);
    fe.shutdown();
}

#[test]
fn socket_client_conforms() {
    // 15th configuration: the whole battery over a real Unix socket —
    // pipelined wire client → tb-server → Frontend → LsmDb. The network
    // boundary must be invisible to the KvEngine contract (exact error
    // identity included: CasMismatch and friends round-trip the wire).
    use tierbase::server::{Server, ServerClient};
    let dir = tmpdir("socket");
    std::fs::create_dir_all(dir.path()).unwrap();
    let sock = dir.path().join("tb.sock");
    let db = Arc::new(LsmDb::open(LsmConfig::small_for_tests(dir.path().join("db"))).unwrap());
    let fe = Arc::new(Frontend::start(db, FrontendConfig::with_shards(4)));
    let server = Server::bind_unix(&sock, fe.clone()).unwrap();
    let client = ServerClient::connect_unix(&sock).unwrap();
    conformance(&client);
    server.stop();
    fe.shutdown();
}
