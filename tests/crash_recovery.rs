//! Crash-recovery integration tests: WAL and WAL-PMem persistence,
//! torn-tail handling, and the durability contract of each policy.

use tierbase::prelude::*;

fn tmpdir(name: &str) -> tierbase::common::TestDir {
    tierbase::common::test_dir(&format!("tb-it-crash-{name}"))
}

fn k(i: usize) -> Key {
    Key::from(format!("key-{i:05}"))
}

fn v(i: usize) -> Value {
    Value::from(format!("value-{i}-{}", "r".repeat(i % 60)))
}

#[test]
fn wal_mode_recovers_every_acknowledged_write() {
    let dir = tmpdir("wal-ack");
    {
        let store = TierBase::open(
            TierBaseConfig::builder(dir.path())
                .cache_capacity(64 << 20)
                .persistence(PersistenceMode::Wal)
                .build(),
        )
        .unwrap();
        for i in 0..500 {
            store.put(k(i), v(i)).unwrap();
        }
        for i in (0..500).step_by(3) {
            store.delete(&k(i)).unwrap();
        }
        store.sync().unwrap();
        // Simulated crash: drop without any further flushing.
    }
    let store = TierBase::open(
        TierBaseConfig::builder(dir.path())
            .cache_capacity(64 << 20)
            .persistence(PersistenceMode::Wal)
            .build(),
    )
    .unwrap();
    for i in 0..500 {
        let expect = if i % 3 == 0 { None } else { Some(v(i)) };
        assert_eq!(store.get(&k(i)).unwrap(), expect, "key {i}");
    }
}

#[test]
fn wal_torn_tail_loses_only_the_torn_suffix() {
    use std::io::Write;
    let dir = tmpdir("wal-torn");
    {
        let store = TierBase::open(
            TierBaseConfig::builder(dir.path())
                .cache_capacity(64 << 20)
                .persistence(PersistenceMode::Wal)
                .build(),
        )
        .unwrap();
        for i in 0..100 {
            store.put(k(i), v(i)).unwrap();
        }
        store.sync().unwrap();
    }
    // Append garbage: a torn half-record at the tail.
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("cache.wal"))
            .unwrap();
        f.write_all(&200u32.to_le_bytes()).unwrap();
        f.write_all(b"torn-frag").unwrap();
    }
    let store = TierBase::open(
        TierBaseConfig::builder(dir.path())
            .cache_capacity(64 << 20)
            .persistence(PersistenceMode::Wal)
            .build(),
    )
    .unwrap();
    for i in 0..100 {
        assert_eq!(
            store.get(&k(i)).unwrap(),
            Some(v(i)),
            "intact prefix lost at {i}"
        );
    }
    // And the store keeps working after recovery.
    store.put(k(1000), v(1000)).unwrap();
    assert_eq!(store.get(&k(1000)).unwrap(), Some(v(1000)));
}

#[test]
fn wal_mid_log_corruption_is_surfaced_not_swallowed() {
    use std::io::{Seek, SeekFrom, Write};
    let dir = tmpdir("wal-midcorrupt");
    {
        let store = TierBase::open(
            TierBaseConfig::builder(dir.path())
                .cache_capacity(64 << 20)
                .persistence(PersistenceMode::Wal)
                .build(),
        )
        .unwrap();
        for i in 0..100 {
            store.put(k(i), v(i)).unwrap();
        }
        store.sync().unwrap();
    }
    // Flip one byte in the middle of the log: valid records follow, so
    // this is bit rot, not a torn tail — recovery must refuse to
    // silently drop the acknowledged suffix.
    {
        let len = std::fs::metadata(dir.join("cache.wal")).unwrap().len();
        let mut f = std::fs::OpenOptions::new()
            .write(true)
            .open(dir.join("cache.wal"))
            .unwrap();
        f.seek(SeekFrom::Start(len / 2)).unwrap();
        f.write_all(b"\xde\xad").unwrap();
    }
    match TierBase::open(
        TierBaseConfig::builder(dir.path())
            .cache_capacity(64 << 20)
            .persistence(PersistenceMode::Wal)
            .build(),
    ) {
        Err(Error::Corruption(_)) => {}
        Err(other) => panic!("expected Corruption, got {other:?}"),
        Ok(_) => panic!("mid-log corruption must fail open"),
    }
}

#[test]
fn wal_pmem_mode_recovers_from_ring() {
    let dir = tmpdir("pmem");
    {
        let store = TierBase::open(
            TierBaseConfig::builder(dir.path())
                .cache_capacity(64 << 20)
                .persistence(PersistenceMode::WalPmem)
                .pmem_ring_bytes(4 << 20)
                .build(),
        )
        .unwrap();
        for i in 0..300 {
            store.put(k(i), v(i)).unwrap();
        }
        // No explicit sync: WAL-PMem persists per transaction.
    }
    let store = TierBase::open(
        TierBaseConfig::builder(dir.path())
            .cache_capacity(64 << 20)
            .persistence(PersistenceMode::WalPmem)
            .pmem_ring_bytes(4 << 20)
            .build(),
    )
    .unwrap();
    for i in 0..300 {
        assert_eq!(store.get(&k(i)).unwrap(), Some(v(i)), "key {i}");
    }
}

#[test]
fn write_through_survives_crash_without_any_cache_persistence() {
    let dir = tmpdir("wt");
    {
        let store = TierBase::open(
            TierBaseConfig::builder(dir.path())
                .cache_capacity(1 << 20)
                .policy(SyncPolicy::WriteThrough)
                .build(),
        )
        .unwrap();
        for i in 0..400 {
            store.put(k(i), v(i)).unwrap();
        }
        store.sync().unwrap();
    }
    let store = TierBase::open(
        TierBaseConfig::builder(dir.path())
            .cache_capacity(1 << 20)
            .policy(SyncPolicy::WriteThrough)
            .build(),
    )
    .unwrap();
    for i in 0..400 {
        assert_eq!(store.get(&k(i)).unwrap(), Some(v(i)), "key {i}");
    }
}

#[test]
fn write_back_synced_data_survives_unsynced_may_not() {
    let dir = tmpdir("wb");
    {
        let store = TierBase::open(
            TierBaseConfig::builder(dir.path())
                .cache_capacity(64 << 20)
                .policy(SyncPolicy::WriteBack)
                .write_back(tierbase::store::WriteBackTuning {
                    max_dirty_bytes: u64::MAX,
                    flush_every_ops: u64::MAX,
                    batch_size: 128,
                })
                .build(),
        )
        .unwrap();
        for i in 0..200 {
            store.put(k(i), v(i)).unwrap();
        }
        store.flush_dirty().unwrap(); // first 200 are durable
        for i in 200..300 {
            store.put(k(i), v(i)).unwrap();
        }
        // Crash with 100 dirty entries unflushed (single-node: in the
        // real deployment replicas hold them; across a full restart the
        // paper's cache-only dirty data is lost too).
    }
    let store = TierBase::open(
        TierBaseConfig::builder(dir.path())
            .cache_capacity(64 << 20)
            .policy(SyncPolicy::WriteBack)
            .build(),
    )
    .unwrap();
    for i in 0..200 {
        assert_eq!(store.get(&k(i)).unwrap(), Some(v(i)), "synced key {i} lost");
    }
    // The unsynced suffix is allowed to be absent — but the store must
    // not serve corrupted values for it.
    for i in 200..300 {
        if let Some(val) = store.get(&k(i)).unwrap() {
            assert_eq!(val, v(i));
        }
    }
}

#[test]
fn lsm_storage_tier_recovers_through_compactions() {
    use tierbase::lsm::{LsmConfig, LsmDb};
    let dir = tmpdir("lsm-deep");
    {
        let db = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
        for round in 0..3 {
            for i in 0..800 {
                db.put(k(i), Value::from(format!("gen{round}-{i}")))
                    .unwrap();
            }
            db.flush().unwrap();
        }
    }
    let db = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
    for i in 0..800 {
        assert_eq!(
            db.get(&k(i)).unwrap(),
            Some(Value::from(format!("gen2-{i}"))),
            "latest generation lost for key {i}"
        );
    }
}
