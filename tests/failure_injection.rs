//! Failure-injection integration tests: storage-write failures under
//! write-through (§4.1.1's invalidation contract) and dirty-data
//! backpressure under write-back (§4.1.2).

use tierbase::prelude::*;

fn tmpdir(name: &str) -> tierbase::common::TestDir {
    tierbase::common::test_dir(&format!("tb-it-fault-{name}"))
}

fn k(i: usize) -> Key {
    Key::from(format!("key-{i:05}"))
}

fn v(tag: &str, i: usize) -> Value {
    Value::from(format!("{tag}-{i}"))
}

#[test]
fn write_through_never_serves_unacknowledged_values() {
    let dir = tmpdir("wt-stale");
    let store = TierBase::open(
        TierBaseConfig::builder(dir.path())
            .cache_capacity(16 << 20)
            .policy(SyncPolicy::WriteThrough)
            .build(),
    )
    .unwrap();
    // Establish authoritative values.
    for i in 0..100 {
        store.put(k(i), v("good", i)).unwrap();
    }
    // Fail the next 50 storage writes; each failed put must error AND
    // subsequent reads must return the old (storage-authoritative)
    // value, never the rejected one.
    store.inject_storage_write_failures(50);
    for i in 0..50 {
        let err = store.put(k(i), v("rejected", i)).unwrap_err();
        assert!(matches!(err, Error::StorageWriteFailed(_)), "{err:?}");
    }
    for i in 0..50 {
        assert_eq!(
            store.get(&k(i)).unwrap(),
            Some(v("good", i)),
            "stale/rejected value visible for key {i}"
        );
    }
    // Once storage heals, writes flow again.
    store.put(k(0), v("healed", 0)).unwrap();
    assert_eq!(store.get(&k(0)).unwrap(), Some(v("healed", 0)));
    assert_eq!(
        store
            .stats()
            .write_through_failures
            .load(std::sync::atomic::Ordering::Relaxed),
        50
    );
}

#[test]
fn write_through_failure_on_fresh_key_leaves_no_ghost() {
    let dir = tmpdir("wt-ghost");
    let store = TierBase::open(
        TierBaseConfig::builder(dir.path())
            .cache_capacity(16 << 20)
            .policy(SyncPolicy::WriteThrough)
            .build(),
    )
    .unwrap();
    store.inject_storage_write_failures(1);
    assert!(store.put(k(1), v("ghost", 1)).is_err());
    assert_eq!(store.get(&k(1)).unwrap(), None, "ghost value visible");
}

#[test]
fn write_back_flush_failure_keeps_data_dirty_and_recoverable() {
    let dir = tmpdir("wb-flushfail");
    let store = TierBase::open(
        TierBaseConfig::builder(dir.path())
            .cache_capacity(16 << 20)
            .policy(SyncPolicy::WriteBack)
            .write_back(tierbase::store::WriteBackTuning {
                max_dirty_bytes: u64::MAX,
                flush_every_ops: u64::MAX,
                batch_size: 64,
            })
            .build(),
    )
    .unwrap();
    for i in 0..100 {
        store.put(k(i), v("wb", i)).unwrap();
    }
    assert!(store.dirty_bytes() > 0);
    // First flush attempt fails mid-way.
    store.inject_storage_write_failures(1);
    assert!(store.flush_dirty().is_err());
    // Data is still served and still dirty.
    for i in 0..100 {
        assert_eq!(store.get(&k(i)).unwrap(), Some(v("wb", i)));
    }
    assert!(
        store.dirty_bytes() > 0,
        "dirty state lost after failed flush"
    );
    // Retry succeeds and drains.
    let flushed = store.flush_dirty().unwrap();
    assert!(flushed > 0);
    assert_eq!(store.dirty_bytes(), 0);
}

#[test]
fn write_back_backpressure_resolves_via_flush() {
    // Cache big enough for the workload only if dirty entries can be
    // cleaned: the store must flush-and-retry internally rather than
    // fail the client write.
    let dir = tmpdir("wb-bp");
    let store = TierBase::open(
        TierBaseConfig::builder(dir.path())
            .cache_capacity(96 << 10)
            .cache_shards(1)
            .policy(SyncPolicy::WriteBack)
            .write_back(tierbase::store::WriteBackTuning {
                max_dirty_bytes: u64::MAX,
                flush_every_ops: u64::MAX, // only backpressure triggers flushes
                batch_size: 64,
            })
            .build(),
    )
    .unwrap();
    for i in 0..2000 {
        store
            .put(k(i), Value::from(vec![b'x'; 100]))
            .unwrap_or_else(|e| panic!("write {i} failed under backpressure: {e}"));
    }
    // Everything is durable or cached; spot-check through the tiers.
    for i in (0..2000).step_by(97) {
        assert_eq!(
            store.get(&k(i)).unwrap(),
            Some(Value::from(vec![b'x'; 100])),
            "key {i}"
        );
    }
}

#[test]
fn cluster_replica_failover_preserves_all_data() {
    use std::sync::Arc;
    use tierbase::cluster::{ClusterClient, CoordinatorGroup, NodeId, NodeStore};

    // The guards must outlive every node engine; collect them here.
    let mut dirs = Vec::new();
    let mut node = |name: &str| -> Arc<dyn KvEngine> {
        let dir = tmpdir(name);
        let engine: Arc<dyn KvEngine> = Arc::new(
            TierBase::open(
                TierBaseConfig::builder(dir.path())
                    .cache_capacity(32 << 20)
                    .build(),
            )
            .unwrap(),
        );
        dirs.push(dir);
        engine
    };
    let nodes = (0..3)
        .map(|i| {
            NodeStore::new(NodeId(i), node(&format!("cl-{i}p")))
                .with_replica(node(&format!("cl-{i}r")))
        })
        .collect();
    let coordinators = Arc::new(CoordinatorGroup::bootstrap(3, nodes).unwrap());
    let client = ClusterClient::connect(coordinators.clone());

    for i in 0..1000 {
        client.put(k(i), v("cl", i)).unwrap();
    }
    // Crash two of three nodes.
    coordinators.node(NodeId(0)).unwrap().read().crash();
    coordinators.node(NodeId(2)).unwrap().read().crash();
    for i in 0..1000 {
        assert_eq!(
            client.get(&k(i)).unwrap(),
            Some(v("cl", i)),
            "key {i} lost after double node failure"
        );
    }
}
