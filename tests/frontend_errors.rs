//! Front-end error containment: what happens when the engine fails or
//! panics *mid-batch* under the pipelined group-commit path.
//!
//! Contract under test (found untested while reviewing the PR that
//! introduced `tb-frontend`):
//!
//! * tickets belonging to a failing batch resolve with the engine's
//!   error — nobody hangs, nobody gets a false ack;
//! * batches submitted afterwards proceed normally — one bad batch
//!   does not wedge the shard;
//! * no worker dies permanently, even when the engine panics.
//!
//! The injected-IO-error version of the same contract over the real
//! LSM engine runs in `tests/fault_torture.rs` (`error_torture_*`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use tierbase::frontend::{Frontend, FrontendConfig, Request, Response};
use tierbase::prelude::*;

/// In-memory engine with scripted misbehavior:
///
/// * writing a key that starts with `bad:` fails the whole call with
///   [`Error::FaultInjected`] — after applying the pairs before it
///   (a genuine mid-batch failure);
/// * writing a key that starts with `boom:` panics;
/// * `get("block:gate")` parks until [`FlakyEngine::release`] — lets a
///   test pin the shard worker while it queues a multi-request batch;
/// * `sync()` fails while `fail_sync` is set.
#[derive(Default)]
struct FlakyEngine {
    map: Mutex<BTreeMap<Key, Value>>,
    fail_sync: AtomicBool,
    gate: Mutex<bool>,
    gate_cv: Condvar,
}

impl FlakyEngine {
    fn release(&self) {
        *self.gate.lock().unwrap() = true;
        self.gate_cv.notify_all();
    }

    fn write_one(&self, key: Key, value: Value) -> Result<()> {
        if key.as_slice().starts_with(b"boom:") {
            panic!("scripted engine panic on {key:?}");
        }
        if key.as_slice().starts_with(b"bad:") {
            return Err(Error::FaultInjected(format!("scripted failure on {key:?}")));
        }
        self.map.lock().unwrap().insert(key, value);
        Ok(())
    }
}

impl KvEngine for FlakyEngine {
    fn get(&self, key: &Key) -> Result<Option<Value>> {
        if key.as_slice() == b"block:gate" {
            let mut open = self.gate.lock().unwrap();
            while !*open {
                open = self.gate_cv.wait(open).unwrap();
            }
        }
        Ok(self.map.lock().unwrap().get(key).cloned())
    }

    fn put(&self, key: Key, value: Value) -> Result<()> {
        self.write_one(key, value)
    }

    fn multi_put(&self, pairs: Vec<(Key, Value)>) -> Result<()> {
        for (k, v) in pairs {
            self.write_one(k, v)?;
        }
        Ok(())
    }

    fn delete(&self, key: &Key) -> Result<()> {
        self.map.lock().unwrap().remove(key);
        Ok(())
    }

    fn resident_bytes(&self) -> u64 {
        self.map
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.len() + v.len()) as u64)
            .sum()
    }

    fn label(&self) -> String {
        "flaky".into()
    }

    fn sync(&self) -> Result<()> {
        if self.fail_sync.load(Ordering::SeqCst) {
            return Err(Error::Io("scripted sync failure".into()));
        }
        Ok(())
    }
}

/// One shard, generous queue: batch composition is fully controlled by
/// gating the worker.
fn single_shard_frontend(engine: Arc<FlakyEngine>) -> Frontend {
    Frontend::start(
        engine,
        FrontendConfig {
            shards: 1,
            queue_capacity: 64,
            max_batch: 16,
            group_commit: true,
            max_workers_per_shard: 1,
            ..FrontendConfig::default()
        },
    )
}

/// Pins the shard worker on a gated `get`, runs `queue_while_pinned` to
/// stack requests into one batch, releases, and returns after the gate
/// ticket resolves.
fn with_pinned_worker<R>(
    fe: &Frontend,
    engine: &FlakyEngine,
    queue_while_pinned: impl FnOnce() -> R,
) -> R {
    let gate_ticket = fe.submit(Request::Get(Key::from("block:gate")));
    // Wait for the worker to pick the gate request up (queue drains).
    while fe.queue_depth(0) > 0 {
        std::thread::sleep(Duration::from_micros(50));
    }
    let out = queue_while_pinned();
    engine.release();
    gate_ticket.wait().unwrap();
    out
}

#[test]
fn failing_batch_resolves_every_ticket_with_the_error() {
    let engine = Arc::new(FlakyEngine::default());
    let fe = single_shard_frontend(engine.clone());

    // Three puts queued behind the pinned worker coalesce into one
    // multi_put; the middle key fails the engine call mid-batch.
    let tickets = with_pinned_worker(&fe, &engine, || {
        vec![
            fe.submit(Request::Put(Key::from("a"), Value::from("1"))),
            fe.submit(Request::Put(Key::from("bad:b"), Value::from("2"))),
            fe.submit(Request::Put(Key::from("c"), Value::from("3"))),
        ]
    });
    for (i, t) in tickets.iter().enumerate() {
        match t.wait() {
            Err(Error::FaultInjected(_)) => {}
            other => panic!("ticket {i} of the failing batch resolved {other:?}"),
        }
    }

    // The next batch proceeds as if nothing happened.
    fe.put(Key::from("after"), Value::from("ok")).unwrap();
    assert_eq!(
        fe.get(&Key::from("after")).unwrap(),
        Some(Value::from("ok"))
    );
    assert_eq!(fe.live_workers(0), 1, "worker must survive an engine error");
    assert_eq!(fe.stats().worker_panics.load(Ordering::Relaxed), 0);
    let s = fe.stats().snapshot();
    assert_eq!(s.submitted, s.completed, "no ticket may be left pending");
    fe.shutdown();
}

#[test]
fn sync_failure_fails_the_whole_group_commit_then_recovers() {
    let engine = Arc::new(FlakyEngine::default());
    let fe = single_shard_frontend(engine.clone());
    engine.fail_sync.store(true, Ordering::SeqCst);

    // Writes apply, but the group commit cannot make them durable: the
    // acks must carry the sync error, not a false durability promise.
    let tickets = with_pinned_worker(&fe, &engine, || {
        (0..3)
            .map(|i| fe.submit(Request::Put(Key::from(format!("k{i}")), Value::from("v"))))
            .collect::<Vec<_>>()
    });
    for (i, t) in tickets.iter().enumerate() {
        match t.wait() {
            Err(Error::Io(m)) => assert!(m.contains("sync"), "ticket {i}: {m}"),
            other => panic!("ticket {i} of the unsynced batch resolved {other:?}"),
        }
    }

    engine.fail_sync.store(false, Ordering::SeqCst);
    fe.put(Key::from("durable"), Value::from("yes")).unwrap();
    assert_eq!(fe.live_workers(0), 1);
    assert_eq!(fe.stats().worker_panics.load(Ordering::Relaxed), 0);
    fe.shutdown();
}

#[test]
fn engine_panic_is_contained_and_the_worker_survives() {
    let engine = Arc::new(FlakyEngine::default());
    let fe = single_shard_frontend(engine.clone());

    // A panicking engine call abandons the batch: its tickets resolve
    // Unavailable (dropped completers), never hang.
    let tickets = with_pinned_worker(&fe, &engine, || {
        vec![
            fe.submit(Request::Put(Key::from("x"), Value::from("1"))),
            fe.submit(Request::Put(Key::from("boom:y"), Value::from("2"))),
        ]
    });
    for (i, t) in tickets.iter().enumerate() {
        match t.wait() {
            Err(Error::Unavailable(_)) => {}
            other => panic!("ticket {i} of the panicked batch resolved {other:?}"),
        }
    }
    // Tickets resolve while the worker is still unwinding; give its
    // bookkeeping a beat before reading the panic counter.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while fe.stats().worker_panics.load(Ordering::Relaxed) == 0
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(fe.stats().worker_panics.load(Ordering::Relaxed), 1);

    // The shard keeps serving: same worker, next batches fine.
    assert_eq!(fe.live_workers(0), 1, "worker must survive an engine panic");
    for i in 0..5 {
        fe.put(Key::from(format!("later{i}")), Value::from("v"))
            .unwrap();
    }
    assert_eq!(
        fe.get(&Key::from("later4")).unwrap(),
        Some(Value::from("v"))
    );
    let s = fe.stats().snapshot();
    assert_eq!(s.submitted, s.completed);
    fe.shutdown();
}

#[test]
fn repeated_failures_never_wedge_the_shard() {
    let engine = Arc::new(FlakyEngine::default());
    engine.release(); // no pinning in this test
    let fe = single_shard_frontend(engine.clone());

    // Alternate failing and healthy writes; every healthy write must
    // land and every failing one must resolve with its error.
    for round in 0..20 {
        let bad = fe.submit(Request::Put(
            Key::from(format!("bad:{round}")),
            Value::from("x"),
        ));
        assert!(matches!(bad.wait(), Err(Error::FaultInjected(_))));
        fe.put(Key::from(format!("good:{round}")), Value::from("y"))
            .unwrap();
    }
    let got = fe
        .multi_get(
            &(0..20)
                .map(|r| Key::from(format!("good:{r}")))
                .collect::<Vec<_>>(),
        )
        .unwrap();
    assert!(got.iter().all(|v| v == &Some(Value::from("y"))));
    assert_eq!(fe.live_workers(0), 1);
    assert_eq!(fe.stats().worker_panics.load(Ordering::Relaxed), 0);
    fe.shutdown();
}

#[test]
fn mixed_batch_reads_still_answer_when_writes_fail() {
    let engine = Arc::new(FlakyEngine::default());
    let fe = single_shard_frontend(engine.clone());
    fe.put(Key::from("seed"), Value::from("s")).unwrap();

    // One batch holding a failing write *and* a read: the read must
    // still answer correctly (reads resolve per-op, not via the group
    // commit).
    let (w, r) = with_pinned_worker(&fe, &engine, || {
        (
            fe.submit(Request::Put(Key::from("bad:w"), Value::from("1"))),
            fe.submit(Request::Get(Key::from("seed"))),
        )
    });
    assert!(matches!(w.wait(), Err(Error::FaultInjected(_))));
    assert_eq!(r.wait().unwrap(), Response::Value(Some(Value::from("s"))));
    fe.shutdown();
}
