//! Property tests for the distributed layer's invariants: routing
//! tables always cover the slot space, rebalancing conserves keys, and
//! replication keeps replicas substitutable for their primary.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use tierbase::cluster::{CoordinatorGroup, NodeId, NodeStore, RoutingTable};
use tierbase::common::SLOT_COUNT;
use tierbase::prelude::*;

// A tiny engine for cluster property tests (fast, deterministic).
struct MapEngine(std::sync::Mutex<BTreeMap<Key, Value>>);

impl MapEngine {
    fn shared() -> Arc<dyn KvEngine> {
        Arc::new(Self(std::sync::Mutex::new(BTreeMap::new())))
    }
}

impl KvEngine for MapEngine {
    fn get(&self, key: &Key) -> Result<Option<Value>> {
        Ok(self.0.lock().unwrap().get(key).cloned())
    }
    fn put(&self, key: Key, value: Value) -> Result<()> {
        self.0.lock().unwrap().insert(key, value);
        Ok(())
    }
    fn delete(&self, key: &Key) -> Result<()> {
        self.0.lock().unwrap().remove(key);
        Ok(())
    }
    fn resident_bytes(&self) -> u64 {
        0
    }
    fn label(&self) -> String {
        "map".into()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every slot always has exactly one owner, under any sequence of
    /// reassignments; epochs strictly increase.
    #[test]
    fn routing_covers_all_slots(
        node_count in 1u32..12,
        moves in proptest::collection::vec((any::<u16>(), any::<u32>()), 0..20)
    ) {
        let nodes: Vec<NodeId> = (0..node_count).map(NodeId).collect();
        let mut table = RoutingTable::even(1, &nodes);
        let mut last_epoch = table.epoch;
        for (slot_seed, to_seed) in moves {
            let to = NodeId(to_seed % node_count);
            let slots: Vec<u16> = (0..4)
                .map(|i| (slot_seed.wrapping_add(i * 1000)) % SLOT_COUNT)
                .collect();
            table = table.reassign_slots(&slots, to);
            prop_assert!(table.epoch > last_epoch);
            last_epoch = table.epoch;
        }
        // Coverage: every slot owned by a known node; totals add up.
        let total: usize = table.distribution().iter().map(|(_, c)| c).sum();
        prop_assert_eq!(total, SLOT_COUNT as usize);
        for (owner, _) in table.distribution() {
            prop_assert!(owner.0 < node_count);
        }
    }

    /// Scale-out rebalancing conserves every key and leaves all keys
    /// readable through fresh routing.
    #[test]
    fn rebalance_conserves_keys(
        initial_nodes in 1u32..5,
        key_count in 1usize..150,
        added in 1u32..3,
    ) {
        let nodes = (0..initial_nodes)
            .map(|i| NodeStore::new(NodeId(i), MapEngine::shared()))
            .collect();
        let group = CoordinatorGroup::bootstrap(1, nodes).unwrap();
        // Load through routing so inventories match ownership.
        for i in 0..key_count {
            let key = Key::from(format!("pk-{i}"));
            let owner = group.routing().owner_of_key(key.as_slice());
            group.node(owner).unwrap().read().put(key, Value::from(format!("v{i}"))).unwrap();
        }
        prop_assert_eq!(group.total_keys(), key_count);

        for a in 0..added {
            let new = NodeStore::new(NodeId(100 + a), MapEngine::shared());
            group.add_node_and_rebalance(new).unwrap();
            prop_assert_eq!(group.total_keys(), key_count, "keys lost at add #{}", a);
        }
        // All keys readable at their (new) owners.
        let table = group.routing();
        for i in 0..key_count {
            let key = Key::from(format!("pk-{i}"));
            let owner = table.owner_of_key(key.as_slice());
            let got = group.node(owner).unwrap().read().get(&key).unwrap();
            prop_assert_eq!(got, Some(Value::from(format!("v{i}"))), "key pk-{} unreadable", i);
        }
    }

    /// A promoted replica serves exactly what its primary served.
    #[test]
    fn replica_promotion_is_transparent(
        writes in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..60)
    ) {
        let mut node = NodeStore::new(NodeId(0), MapEngine::shared())
            .with_replica(MapEngine::shared());
        let mut model: BTreeMap<Key, Value> = BTreeMap::new();
        for (k, v) in writes {
            let key = Key::from(format!("rk-{k}"));
            let value = Value::from(format!("rv-{v}"));
            if v % 5 == 0 {
                node.delete(&key).unwrap();
                model.remove(&key);
            } else {
                node.put(key.clone(), value.clone()).unwrap();
                model.insert(key, value);
            }
        }
        node.crash();
        node.promote_replica().unwrap();
        for (k, v) in &model {
            let got = node.get(k).unwrap();
            prop_assert_eq!(got.as_ref(), Some(v));
        }
        // Deleted keys stayed deleted through promotion.
        for id in 0..=255u8 {
            let key = Key::from(format!("rk-{id}"));
            if !model.contains_key(&key) {
                prop_assert_eq!(node.get(&key).unwrap(), None);
            }
        }
    }
}
