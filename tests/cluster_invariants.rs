//! Property tests for the distributed layer's invariants: routing
//! tables always cover the slot space, rebalancing conserves keys, and
//! replication keeps replicas substitutable for their primary.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use tierbase::cluster::{ClusterClient, CoordinatorGroup, NodeId, NodeStore, RoutingTable};
use tierbase::common::fault::{self, FaultMode};
use tierbase::common::{Lsn, SLOT_COUNT};
use tierbase::prelude::*;

// A tiny engine for cluster property tests (fast, deterministic).
struct MapEngine(std::sync::Mutex<BTreeMap<Key, Value>>);

impl MapEngine {
    fn shared() -> Arc<dyn KvEngine> {
        Arc::new(Self(std::sync::Mutex::new(BTreeMap::new())))
    }
}

impl KvEngine for MapEngine {
    fn get(&self, key: &Key) -> Result<Option<Value>> {
        Ok(self.0.lock().unwrap().get(key).cloned())
    }
    fn put(&self, key: Key, value: Value) -> Result<()> {
        self.0.lock().unwrap().insert(key, value);
        Ok(())
    }
    fn delete(&self, key: &Key) -> Result<()> {
        self.0.lock().unwrap().remove(key);
        Ok(())
    }
    fn resident_bytes(&self) -> u64 {
        0
    }
    fn label(&self) -> String {
        "map".into()
    }
}

type DeleteHook = Box<dyn Fn(&Key) + Send + Sync>;

/// A map engine that fires a hook on every delete — the probe for
/// observing rebalance eviction order from the victim's seat.
struct HookEngine {
    map: std::sync::Mutex<BTreeMap<Key, Value>>,
    on_delete: std::sync::Mutex<Option<DeleteHook>>,
}

impl HookEngine {
    fn shared() -> Arc<Self> {
        Arc::new(Self {
            map: std::sync::Mutex::new(BTreeMap::new()),
            on_delete: std::sync::Mutex::new(None),
        })
    }
}

impl KvEngine for HookEngine {
    fn get(&self, key: &Key) -> Result<Option<Value>> {
        Ok(self.map.lock().unwrap().get(key).cloned())
    }
    fn put(&self, key: Key, value: Value) -> Result<()> {
        self.map.lock().unwrap().insert(key, value);
        Ok(())
    }
    fn delete(&self, key: &Key) -> Result<()> {
        if let Some(hook) = self.on_delete.lock().unwrap().as_ref() {
            hook(key);
        }
        self.map.lock().unwrap().remove(key);
        Ok(())
    }
    fn resident_bytes(&self) -> u64 {
        0
    }
    fn label(&self) -> String {
        "hook-map".into()
    }
}

/// Regression (PR 8): `add_node_and_rebalance` must flip routing
/// *before* evicting source copies. The old copy→evict→flip order
/// opened a window where the still-routed old owner had already deleted
/// a migrated key — a routed read returned `None` for a live key. The
/// delete hook observes the exact eviction instant and asserts both
/// halves of the fix: routing no longer points at the evicting node,
/// and the new owner already serves the key.
#[test]
fn rebalance_never_opens_a_lost_read_window() {
    let source_engine = HookEngine::shared();
    let nodes = vec![NodeStore::new(NodeId(0), source_engine.clone())];
    let group = Arc::new(CoordinatorGroup::bootstrap(1, nodes).unwrap());

    for i in 0..200 {
        group
            .node(NodeId(0))
            .unwrap()
            .read()
            .put(Key::from(format!("w-{i}")), Value::from(format!("v{i}")))
            .unwrap();
    }

    // The new node's engine, held directly: the hook reads through it
    // rather than `group.node()` (the rebalance holds the node-list
    // lock while evicting).
    let new_engine = HookEngine::shared();
    let new_node = NodeStore::new(NodeId(1), new_engine.clone());

    let evictions = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    *source_engine.on_delete.lock().unwrap() = Some(Box::new({
        let group = group.clone();
        let new_engine = new_engine.clone();
        let evictions = evictions.clone();
        move |key: &Key| {
            evictions.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            let owner = group.routing().owner_of_key(key.as_slice());
            assert_ne!(
                owner,
                NodeId(0),
                "evicting a key the routing table still sends to this node \
                 (lost-read window: a routed get now returns None)"
            );
            let expected = Value::from(format!(
                "v{}",
                String::from_utf8_lossy(key.as_slice()).trim_start_matches("w-")
            ));
            assert_eq!(
                new_engine.get(key).unwrap(),
                Some(expected),
                "routing flipped before the new owner held the key"
            );
        }
    }));

    let moved = group
        .add_node_and_rebalance(new_node)
        .expect("rebalance succeeds");
    assert!(moved > 0, "some keys must migrate for the probe to bite");
    assert_eq!(
        evictions.load(std::sync::atomic::Ordering::SeqCst),
        moved,
        "every migrated key is evicted from its source exactly once"
    );
    assert_eq!(group.total_keys(), 200, "rebalance conserves keys");
}

/// Regression (PR 8): a failed ship must fail the ack — and the
/// primary-side inventory must keep tracking the primary, which *did*
/// apply the write. Before the fix, `put` acked `Ok` while skipping the
/// inventory insert on ship failure, so the key survived on the primary
/// but was invisible to rebalance migration: `add_node_and_rebalance`
/// silently stranded it.
#[test]
fn failed_ship_keeps_inventory_and_ack_aligned_through_rebalance() {
    let nodes =
        vec![NodeStore::new(NodeId(0), MapEngine::shared()).with_replica(MapEngine::shared())];
    let group = CoordinatorGroup::bootstrap(1, nodes).unwrap();
    let handle = group.node(NodeId(0)).unwrap();

    for i in 0..64 {
        // Every single ship fails: each write errs (indeterminate ack)
        // but lands on the primary.
        fault::arm_scoped("repl.ship", 1, FaultMode::Error);
        let err = handle
            .read()
            .put(Key::from(format!("s-{i}")), Value::from(format!("v{i}")));
        assert!(err.is_err(), "failed ship must not ack");
    }
    fault::reset();
    assert_eq!(
        group.total_keys(),
        64,
        "unshipped writes still live on (and are tracked by) the primary"
    );

    let moved = group
        .add_node_and_rebalance(NodeStore::new(NodeId(1), MapEngine::shared()))
        .unwrap();
    assert!(moved > 0, "inventory-tracked keys migrate");
    assert_eq!(group.total_keys(), 64, "no key stranded by migration");
    let table = group.routing();
    for i in 0..64 {
        let key = Key::from(format!("s-{i}"));
        let owner = table.owner_of_key(key.as_slice());
        assert_eq!(
            group.node(owner).unwrap().read().get(&key).unwrap(),
            Some(Value::from(format!("v{i}"))),
            "key s-{i} unreadable at its routed owner after rebalance"
        );
    }
}

/// Regression (PR 8): `run_failover` used to leave a promoted node
/// replica-less, so a *second* crash fell through to slot reassignment
/// and discarded every write since the first failover. With a replica
/// factory the promotion re-seeds, and two back-to-back crash+failover
/// cycles lose nothing.
#[test]
fn double_crash_failover_loses_nothing() {
    fn map_engine() -> Arc<dyn KvEngine> {
        MapEngine::shared()
    }
    let nodes = vec![NodeStore::new(NodeId(0), map_engine()).with_replica_factory(map_engine)];
    let group = Arc::new(CoordinatorGroup::bootstrap(1, nodes).unwrap());
    let client = ClusterClient::connect(group.clone());
    let handle = group.node(NodeId(0)).unwrap();

    for i in 0..40 {
        client
            .put(Key::from(format!("a-{i}")), Value::from(format!("A{i}")))
            .unwrap();
    }
    handle.read().crash();
    // Reads fail over transparently; batch A survives crash #1.
    for i in 0..40 {
        assert_eq!(
            client.get(&Key::from(format!("a-{i}"))).unwrap(),
            Some(Value::from(format!("A{i}"))),
            "a-{i} lost in first failover"
        );
    }
    assert!(
        handle.read().has_replica(),
        "promotion must re-seed a replica from the factory"
    );
    assert!(
        client.session_token(NodeId(0)) > Lsn::NONE,
        "acked writes minted a session token"
    );

    for i in 0..40 {
        client
            .put(Key::from(format!("b-{i}")), Value::from(format!("B{i}")))
            .unwrap();
    }
    handle.read().crash();
    // Crash #2: both batches survive — the re-seeded replica covered
    // every write acked after the first promotion.
    for i in 0..40 {
        assert_eq!(
            client.get(&Key::from(format!("a-{i}"))).unwrap(),
            Some(Value::from(format!("A{i}"))),
            "a-{i} lost in second failover"
        );
        assert_eq!(
            client.get(&Key::from(format!("b-{i}"))).unwrap(),
            Some(Value::from(format!("B{i}"))),
            "b-{i} lost in second failover"
        );
    }
    assert!(
        handle.read().has_replica(),
        "re-seeded again after crash #2"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every slot always has exactly one owner, under any sequence of
    /// reassignments; epochs strictly increase.
    #[test]
    fn routing_covers_all_slots(
        node_count in 1u32..12,
        moves in proptest::collection::vec((any::<u16>(), any::<u32>()), 0..20)
    ) {
        let nodes: Vec<NodeId> = (0..node_count).map(NodeId).collect();
        let mut table = RoutingTable::even(1, &nodes);
        let mut last_epoch = table.epoch;
        for (slot_seed, to_seed) in moves {
            let to = NodeId(to_seed % node_count);
            let slots: Vec<u16> = (0..4)
                .map(|i| (slot_seed.wrapping_add(i * 1000)) % SLOT_COUNT)
                .collect();
            table = table.reassign_slots(&slots, to);
            prop_assert!(table.epoch > last_epoch);
            last_epoch = table.epoch;
        }
        // Coverage: every slot owned by a known node; totals add up.
        let total: usize = table.distribution().iter().map(|(_, c)| c).sum();
        prop_assert_eq!(total, SLOT_COUNT as usize);
        for (owner, _) in table.distribution() {
            prop_assert!(owner.0 < node_count);
        }
    }

    /// Scale-out rebalancing conserves every key and leaves all keys
    /// readable through fresh routing.
    #[test]
    fn rebalance_conserves_keys(
        initial_nodes in 1u32..5,
        key_count in 1usize..150,
        added in 1u32..3,
    ) {
        let nodes = (0..initial_nodes)
            .map(|i| NodeStore::new(NodeId(i), MapEngine::shared()))
            .collect();
        let group = CoordinatorGroup::bootstrap(1, nodes).unwrap();
        // Load through routing so inventories match ownership.
        for i in 0..key_count {
            let key = Key::from(format!("pk-{i}"));
            let owner = group.routing().owner_of_key(key.as_slice());
            group.node(owner).unwrap().read().put(key, Value::from(format!("v{i}"))).unwrap();
        }
        prop_assert_eq!(group.total_keys(), key_count);

        for a in 0..added {
            let new = NodeStore::new(NodeId(100 + a), MapEngine::shared());
            group.add_node_and_rebalance(new).unwrap();
            prop_assert_eq!(group.total_keys(), key_count, "keys lost at add #{}", a);
        }
        // All keys readable at their (new) owners.
        let table = group.routing();
        for i in 0..key_count {
            let key = Key::from(format!("pk-{i}"));
            let owner = table.owner_of_key(key.as_slice());
            let got = group.node(owner).unwrap().read().get(&key).unwrap();
            prop_assert_eq!(got, Some(Value::from(format!("v{i}"))), "key pk-{} unreadable", i);
        }
    }

    /// A promoted replica serves exactly what its primary served.
    #[test]
    fn replica_promotion_is_transparent(
        writes in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..60)
    ) {
        let mut node = NodeStore::new(NodeId(0), MapEngine::shared())
            .with_replica(MapEngine::shared());
        let mut model: BTreeMap<Key, Value> = BTreeMap::new();
        for (k, v) in writes {
            let key = Key::from(format!("rk-{k}"));
            let value = Value::from(format!("rv-{v}"));
            if v % 5 == 0 {
                node.delete(&key).unwrap();
                model.remove(&key);
            } else {
                node.put(key.clone(), value.clone()).unwrap();
                model.insert(key, value);
            }
        }
        node.crash();
        node.promote_replica().unwrap();
        for (k, v) in &model {
            let got = node.get(k).unwrap();
            prop_assert_eq!(got.as_ref(), Some(v));
        }
        // Deleted keys stayed deleted through promotion.
        for id in 0..=255u8 {
            let key = Key::from(format!("rk-{id}"));
            if !model.contains_key(&key) {
                prop_assert_eq!(node.get(&key).unwrap(), None);
            }
        }
    }
}
