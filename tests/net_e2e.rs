//! End-to-end socket serving: the real client/server pair versus a
//! BTreeMap oracle under YCSB mixes, burst→batch lowering (the wire
//! protocol's core contract), backpressure over the wire, cross-shard
//! MultiPut partial-commit semantics, and mid-run server death.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use tierbase::common::test_dir;
use tierbase::lsm::{LsmConfig, LsmDb};
use tierbase::prelude::*;
use tierbase::server::{Server, ServerClient};

/// `test_dir` hands back a fresh path without creating it; the socket
/// bind needs the directory to exist.
fn sock_path(dir: &std::path::Path) -> std::path::PathBuf {
    std::fs::create_dir_all(dir).unwrap();
    dir.join("tb.sock")
}

fn oracle_scan(
    oracle: &BTreeMap<Key, Value>,
    start: &Key,
    end: &Key,
    limit: usize,
) -> Vec<(Key, Value)> {
    oracle
        .range(start.clone()..end.clone())
        .take(limit)
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect()
}

fn apply_op(client: &ServerClient, oracle: &mut BTreeMap<Key, Value>, op: &Op) {
    match op {
        Op::Read { key } => {
            assert_eq!(
                client.get(key).unwrap().as_ref(),
                oracle.get(key),
                "read of {key:?} diverged from oracle"
            );
        }
        Op::Insert { key, value } | Op::Update { key, value } => {
            client.put(key.clone(), value.clone()).unwrap();
            oracle.insert(key.clone(), value.clone());
        }
        Op::Delete { key } => {
            client.delete(key).unwrap();
            oracle.remove(key);
        }
        Op::ReadModifyWrite { key, value } => {
            assert_eq!(client.get(key).unwrap().as_ref(), oracle.get(key));
            client.put(key.clone(), value.clone()).unwrap();
            oracle.insert(key.clone(), value.clone());
        }
        Op::Scan { start, end, limit } => {
            let got = client.scan(start, Some(end), *limit as usize).unwrap();
            assert_eq!(
                got,
                oracle_scan(oracle, start, end, *limit as usize),
                "scan [{start:?}, {end:?}) diverged from oracle"
            );
        }
    }
}

/// YCSB-A (update-heavy) and YCSB-E (scan-heavy) through a real Unix
/// socket into a pipelined `Frontend` over an `LsmDb`, checked op-by-op
/// against a BTreeMap oracle.
#[test]
fn ycsb_over_socket_matches_oracle() {
    let dir = test_dir("tb-net-oracle");
    let sock = sock_path(dir.path());
    let engine = Arc::new(LsmDb::open(LsmConfig::small_for_tests(dir.path().join("db"))).unwrap());
    let frontend = Arc::new(Frontend::start(
        engine,
        FrontendConfig {
            shards: 4,
            ..FrontendConfig::default()
        },
    ));
    let server = Server::bind_unix(&sock, frontend.clone()).unwrap();
    let client = ServerClient::connect_unix(&sock).unwrap();
    let mut oracle = BTreeMap::new();

    for spec in [
        WorkloadSpec::ycsb_a(100, 500),
        WorkloadSpec::ycsb_e(100, 300),
    ] {
        let (load, run) = Workload::new(spec).generate();
        for op in load.ops().iter().chain(run.ops()) {
            apply_op(&client, &mut oracle, op);
        }
    }
    // Full-state sweep: every oracle key readable over the socket.
    let keys: Vec<Key> = oracle.keys().cloned().collect();
    let got = client.multi_get(&keys).unwrap();
    for (key, got) in keys.iter().zip(got) {
        assert_eq!(got.as_ref(), oracle.get(key), "{key:?} diverged");
    }
    server.stop();
    frontend.shutdown();
}

/// Engine that records every `apply_batch` submission it receives, to
/// pin the burst→batch lowering 1:1.
#[derive(Default)]
struct BatchProbe {
    map: Mutex<BTreeMap<Key, Value>>,
    batch_sizes: Mutex<Vec<usize>>,
}

impl KvEngine for BatchProbe {
    fn get(&self, key: &Key) -> Result<Option<Value>> {
        Ok(self.map.lock().get(key).cloned())
    }
    fn put(&self, key: Key, value: Value) -> Result<()> {
        self.map.lock().insert(key, value);
        Ok(())
    }
    fn delete(&self, key: &Key) -> Result<()> {
        self.map.lock().remove(key);
        Ok(())
    }
    fn scan(&self, start: &Key, end: Option<&Key>, limit: usize) -> Result<Vec<(Key, Value)>> {
        let m = self.map.lock();
        let iter: Box<dyn Iterator<Item = (&Key, &Value)>> = match end {
            Some(end) => Box::new(m.range(start.clone()..end.clone())),
            None => Box::new(m.range(start.clone()..)),
        };
        Ok(iter
            .take(limit)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect())
    }
    fn apply_batch(&self, ops: Vec<EngineOp>) -> Vec<Result<OpOutcome>> {
        self.batch_sizes.lock().push(ops.len());
        // Lower per-op like the trait default (which an override cannot
        // call back into).
        ops.into_iter()
            .map(|op| match op {
                EngineOp::Get(k) => self.get(&k).map(OpOutcome::Value),
                EngineOp::Put(k, v) => self.put(k, v).map(|_| OpOutcome::Done(Lsn::NONE)),
                EngineOp::Delete(k) => self.delete(&k).map(|_| OpOutcome::Done(Lsn::NONE)),
                EngineOp::Cas { key, expected, new } => self
                    .cas(key, expected.as_ref(), new)
                    .map(|_| OpOutcome::Done(Lsn::NONE)),
                EngineOp::MultiGet(keys) => keys
                    .iter()
                    .map(|k| self.get(k))
                    .collect::<Result<Vec<_>>>()
                    .map(OpOutcome::Values),
                EngineOp::MultiPut(pairs) => {
                    for (k, v) in pairs {
                        self.put(k, v)?;
                    }
                    Ok(OpOutcome::Done(Lsn::NONE))
                }
                EngineOp::Scan { start, end, limit } => {
                    self.scan(&start, end.as_ref(), limit).map(OpOutcome::Range)
                }
            })
            .collect()
    }
    fn resident_bytes(&self) -> u64 {
        0
    }
    fn label(&self) -> String {
        "batch-probe".into()
    }
}

/// ISSUE acceptance: a pipeline burst of N ops over the socket becomes
/// exactly ONE `apply_batch` call of N ops on the serving engine.
#[test]
fn burst_of_n_ops_is_one_apply_batch_of_n() {
    let dir = test_dir("tb-net-burst");
    let sock = sock_path(dir.path());
    let probe = Arc::new(BatchProbe::default());
    let server = Server::bind_unix(&sock, probe.clone()).unwrap();
    let client = ServerClient::connect_unix(&sock).unwrap();

    let ops = vec![
        EngineOp::Put(Key::from("a"), Value::from("1")),
        EngineOp::Put(Key::from("b"), Value::from("2")),
        EngineOp::Get(Key::from("a")),
        EngineOp::MultiGet(vec![Key::from("a"), Key::from("b"), Key::from("c")]),
        EngineOp::Delete(Key::from("b")),
        EngineOp::Scan {
            start: Key::from(""),
            end: None,
            limit: usize::MAX,
        },
        EngineOp::Get(Key::from("b")),
    ];
    let n = ops.len();
    let results = client.apply_batch(ops);

    assert_eq!(
        probe.batch_sizes.lock().as_slice(),
        &[n],
        "one burst must be exactly one apply_batch of the full size"
    );
    // Positional replies, in submission order.
    assert_eq!(results.len(), n);
    assert_eq!(
        results[2].as_ref().unwrap(),
        &OpOutcome::Value(Some(Value::from("1")))
    );
    assert_eq!(
        results[3].as_ref().unwrap(),
        &OpOutcome::Values(vec![Some(Value::from("1")), Some(Value::from("2")), None])
    );
    // Ops run in slot order within the burst: the scan at slot 5 runs
    // after the delete of "b" at slot 4.
    assert_eq!(
        results[5].as_ref().unwrap(),
        &OpOutcome::Range(vec![(Key::from("a"), Value::from("1"))])
    );
    assert_eq!(results[6].as_ref().unwrap(), &OpOutcome::Value(None));

    let stats = server.stats();
    assert_eq!(stats.bursts, 1, "exactly one burst served");
    assert_eq!(stats.ops, n as u64);
    server.stop();
}

/// Same acceptance through a pipelined `Frontend`: the burst becomes
/// one `Frontend::apply_batch`, visible as exactly N submissions in
/// `FrontendStats`.
#[test]
fn burst_through_frontend_submits_exactly_n() {
    let dir = test_dir("tb-net-burst-fe");
    let sock = sock_path(dir.path());
    let frontend = Arc::new(Frontend::start(
        Arc::new(BatchProbe::default()),
        FrontendConfig {
            shards: 1, // single shard: no scatter, submissions == ops
            ..FrontendConfig::default()
        },
    ));
    let server = Server::bind_unix(&sock, frontend.clone()).unwrap();
    let client = ServerClient::connect_unix(&sock).unwrap();

    let before = frontend.stats_snapshot().submitted;
    let ops: Vec<EngineOp> = (0..12)
        .map(|i| EngineOp::Put(Key::from(format!("k{i}")), Value::from("v")))
        .collect();
    let results = client.apply_batch(ops);
    assert!(results.iter().all(|r| r.is_ok()));
    assert_eq!(
        frontend.stats_snapshot().submitted - before,
        12,
        "one wire burst of 12 ops = 12 front-end submissions, no more"
    );
    assert_eq!(server.stats().bursts, 1);
    server.stop();
    frontend.shutdown();
}

/// Engine that sheds everything, to prove backpressure travels the wire
/// as a retryable RETRY reply (with its queue-depth hint) and never
/// costs the connection.
struct SheddingEngine;

impl KvEngine for SheddingEngine {
    fn get(&self, _: &Key) -> Result<Option<Value>> {
        Err(Error::backpressure_at_depth("synthetic shed", 42))
    }
    fn put(&self, _: Key, _: Value) -> Result<()> {
        Err(Error::backpressure_at_depth("synthetic shed", 42))
    }
    fn delete(&self, _: &Key) -> Result<()> {
        Err(Error::backpressure_at_depth("synthetic shed", 42))
    }
    fn resident_bytes(&self) -> u64 {
        0
    }
    fn label(&self) -> String {
        "shedding".into()
    }
}

#[test]
fn backpressure_maps_to_retryable_wire_error_not_dropped_connection() {
    let dir = test_dir("tb-net-retry");
    let sock = sock_path(dir.path());
    let server = Server::bind_unix(&sock, Arc::new(SheddingEngine)).unwrap();
    let client = ServerClient::connect_unix(&sock).unwrap();

    let err = client.put(Key::from("k"), Value::from("v")).unwrap_err();
    assert_eq!(
        err,
        Error::Backpressure {
            reason: "synthetic shed".into(),
            queue_depth: 42,
        },
        "RETRY must preserve the reason and the queue-depth hint"
    );
    assert!(err.is_retryable());
    assert_eq!(err.queue_depth(), Some(42));
    // The connection survived the shed: the next exchange works without
    // a reconnect (a reconnect would reset the server's conn counter).
    client.ping().unwrap();
    assert_eq!(server.stats().conns_opened, 1);
    server.stop();
}

/// Engine that rejects any `multi_put` slice containing a `bad:` key,
/// recording every slice and whether it applied — the instrument for
/// pinning cross-shard partial-commit semantics.
#[derive(Default)]
struct SliceRecorder {
    map: Mutex<BTreeMap<Key, Value>>,
    slices: Mutex<Vec<(Vec<Key>, bool)>>,
}

impl KvEngine for SliceRecorder {
    fn get(&self, key: &Key) -> Result<Option<Value>> {
        Ok(self.map.lock().get(key).cloned())
    }
    fn put(&self, key: Key, value: Value) -> Result<()> {
        self.map.lock().insert(key, value);
        Ok(())
    }
    fn delete(&self, key: &Key) -> Result<()> {
        self.map.lock().remove(key);
        Ok(())
    }
    fn multi_put(&self, pairs: Vec<(Key, Value)>) -> Result<()> {
        let keys: Vec<Key> = pairs.iter().map(|(k, _)| k.clone()).collect();
        let poisoned = keys.iter().any(|k| k.as_slice().starts_with(b"bad:"));
        self.slices.lock().push((keys, !poisoned));
        if poisoned {
            return Err(Error::FaultInjected("shard rejected its slice".into()));
        }
        let mut m = self.map.lock();
        for (k, v) in pairs {
            m.insert(k, v);
        }
        Ok(())
    }
    // The front-end worker lowers its drained batch through
    // `apply_batch` (the trait default would re-lower MultiPut into
    // point puts and bypass the slice gate above), so route MultiPut
    // back through `self.multi_put` like a native engine.
    fn apply_batch(&self, ops: Vec<EngineOp>) -> Vec<Result<OpOutcome>> {
        ops.into_iter()
            .map(|op| match op {
                EngineOp::Get(k) => self.get(&k).map(OpOutcome::Value),
                EngineOp::Put(k, v) => self.put(k, v).map(|_| OpOutcome::Done(Lsn::NONE)),
                EngineOp::Delete(k) => self.delete(&k).map(|_| OpOutcome::Done(Lsn::NONE)),
                EngineOp::MultiPut(pairs) => {
                    self.multi_put(pairs).map(|_| OpOutcome::Done(Lsn::NONE))
                }
                EngineOp::MultiGet(keys) => keys
                    .iter()
                    .map(|k| self.get(k))
                    .collect::<Result<Vec<_>>>()
                    .map(OpOutcome::Values),
                other => Err(Error::Internal(format!("unexpected op {other:?}"))),
            })
            .collect()
    }
    fn resident_bytes(&self) -> u64 {
        0
    }
    fn label(&self) -> String {
        "slice-recorder".into()
    }
}

/// Satellite regression: a cross-shard `MultiPut` whose pairs hit a
/// failing shard leaves exactly the documented partial state — healthy
/// shards' slices applied, the failing shard's slice not, first error
/// reported — and the wire reply stays per-slot, never an
/// all-or-nothing ack.
#[test]
fn cross_shard_multiput_partial_commit_is_exactly_as_documented() {
    let dir = test_dir("tb-net-multiput");
    let sock = sock_path(dir.path());
    let recorder = Arc::new(SliceRecorder::default());
    let frontend = Arc::new(Frontend::start(
        recorder.clone(),
        FrontendConfig {
            shards: 4,
            ..FrontendConfig::default()
        },
    ));
    let server = Server::bind_unix(&sock, frontend.clone()).unwrap();
    let client = ServerClient::connect_unix(&sock).unwrap();

    let mut pairs: Vec<(Key, Value)> = (0..16)
        .map(|i| (Key::from(format!("g{i}")), Value::from(format!("v{i}"))))
        .collect();
    pairs.push((Key::from("bad:0"), Value::from("x")));
    pairs.push((Key::from("bad:1"), Value::from("y")));

    let err = client.multi_put(pairs.clone()).unwrap_err();
    assert_eq!(err, Error::FaultInjected("shard rejected its slice".into()));

    // The recorded slices partition the pairs, and the visible state is
    // exactly "applied slices readable, rejected slices absent".
    let slices = recorder.slices.lock().clone();
    let recorded: usize = slices.iter().map(|(keys, _)| keys.len()).sum();
    assert_eq!(recorded, pairs.len(), "slices must partition the batch");
    assert!(
        slices.iter().any(|(_, applied)| *applied),
        "some shard must commit independently"
    );
    assert!(
        slices.iter().any(|(_, applied)| !applied),
        "the poisoned shard must reject"
    );
    let by_key: BTreeMap<&Key, &Value> = pairs.iter().map(|(k, v)| (k, v)).collect();
    for (keys, applied) in &slices {
        for key in keys {
            let got = client.get(key).unwrap();
            if *applied {
                assert_eq!(got.as_ref(), by_key.get(key).copied(), "{key:?} lost");
            } else {
                assert_eq!(got, None, "{key:?} must not apply from a rejected slice");
            }
        }
    }

    // Per-slot wire outcomes: the failing op errors in its slot; ops
    // around it in the same burst succeed independently.
    let burst = vec![
        EngineOp::Put(Key::from("solo"), Value::from("s")),
        EngineOp::MultiPut(vec![
            (Key::from("bad:2"), Value::from("z")),
            (Key::from("g0"), Value::from("overwrite")),
        ]),
        EngineOp::Get(Key::from("solo")),
    ];
    let results = client.apply_batch(burst);
    assert!(results[0].is_ok(), "slot 0: {results:?}");
    assert_eq!(
        results[1],
        Err(Error::FaultInjected("shard rejected its slice".into())),
        "slot 1 reports its own failure"
    );
    assert_eq!(
        results[2].as_ref().unwrap(),
        &OpOutcome::Value(Some(Value::from("s"))),
        "slot 2 unaffected by slot 1's failure"
    );
    server.stop();
    frontend.shutdown();
}

/// Mid-run server death: in-flight and subsequent calls surface
/// retryable `Unavailable`; once a server is back on the same address
/// the client transparently reconnects and reads durable state.
#[test]
fn server_kill_surfaces_unavailable_and_reconnect_recovers() {
    let dir = test_dir("tb-net-kill");
    let sock = sock_path(dir.path());
    let db_dir = dir.path().join("db");

    let server = Server::bind_unix(
        &sock,
        Arc::new(LsmDb::open(LsmConfig::small_for_tests(&db_dir)).unwrap()),
    )
    .unwrap();
    let client = ServerClient::connect_unix(&sock).unwrap();
    client
        .put(Key::from("durable"), Value::from("yes"))
        .unwrap();
    client.sync().unwrap();

    // Kill the server out from under the client.
    server.stop();
    drop(server);

    let err = client.get(&Key::from("durable")).unwrap_err();
    assert!(
        matches!(err, Error::Unavailable(_)),
        "dead server must surface Unavailable, got {err:?}"
    );
    assert!(err.is_retryable());

    // Same address, recovered engine: the client reconnects by itself.
    let server = Server::bind_unix(
        &sock,
        Arc::new(LsmDb::open(LsmConfig::small_for_tests(&db_dir)).unwrap()),
    )
    .unwrap();
    assert_eq!(
        client.get(&Key::from("durable")).unwrap(),
        Some(Value::from("yes")),
        "reconnect + WAL recovery must serve the acked write"
    );
    server.stop();
}
