//! Crash-recovery torture suite for the LSM durability path.
//!
//! The driver enumerates every named fault site in `tb-lsm`
//! ([`tierbase::lsm::FAULT_SITES`]) and, for each `(site, hit)` pair,
//! runs a scripted workload that is killed at exactly that IO
//! operation — by an injected error, a simulated crash, or a torn
//! write — then reopens the store and checks the durability contract:
//!
//! * every write acknowledged before the kill is present, byte-exact;
//! * an unacknowledged in-flight write resolves to one of its legal
//!   states (old value or attempted value) — never a torn hybrid;
//! * the reopened store accepts new writes.
//!
//! The same enumeration runs over the raw [`LsmDb`] and over the
//! pipelined `tb-frontend` path (group commit, worker threads), where a
//! crash is contained by the worker and surfaces as failed tickets.
//!
//! Crash model: a [`FaultMode::Crash`]/[`Torn`] injection panics at the
//! fault site and freezes every later fault point with errors, so the
//! on-disk image stops changing at the kill instant. Because the "kill"
//! is in-process, data flushed to the OS counts as surviving — strictly
//! stronger than the store's contract (synced writes survive), so
//! passing here implies the contract.
//!
//! `TB_FAULT_SMOKE=1` caps the enumeration at the first
//! [`SMOKE_HITS`] hits per site (CI per-push mode); the nightly/manual
//! torture workflow runs the full enumeration.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use tierbase::common::fault::{self, CrashPoint, FaultMode};
use tierbase::common::{EngineOp, Error, Key, KvEngine, TestDir, Value};
use tierbase::elastic::ElasticConfig;
use tierbase::frontend::{Frontend, FrontendConfig};
use tierbase::lsm::sstable::SstConfig;
use tierbase::lsm::wal::SyncPolicy;
use tierbase::lsm::{LsmConfig, LsmDb, FAULT_SITES, FAULT_WRITE_SITES};

/// Hits per site when `TB_FAULT_SMOKE=1`.
const SMOKE_HITS: u64 = 2;

/// The fault registry is process-global: every test that arms it (or
/// counts hits) serializes on this gate.
fn gate() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Silences the panic messages of *injected* crashes (thousands fire in
/// a full enumeration); every other panic keeps the default report.
fn quiet_crash_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashPoint>().is_none() {
                default(info);
            }
        }));
    });
}

fn fresh_dir(tag: &str) -> TestDir {
    tierbase::common::test_dir(&format!("tb-torture-{tag}"))
}

/// Small thresholds so the scripted workload crosses several flushes
/// and at least one compaction — every fault site gets hit.
/// `read_pool_threads` selects the completion pass: 0 = inline fetch,
/// 2 = the parallel shard read pool. Tables are written compressed so
/// the `sst.block_decode` enumeration corrupts real frames.
fn torture_config(dir: &std::path::Path, read_pool_threads: usize) -> LsmConfig {
    LsmConfig {
        dir: dir.to_path_buf(),
        memtable_bytes: 1200,
        l0_compaction_trigger: 2,
        level_base_bytes: 8 << 10,
        max_level: 3,
        sst: SstConfig {
            block_size: 512,
            bloom_bits_per_key: 10,
            codec: tierbase::compress::BlockCodec::Lz,
        },
        wal_sync: SyncPolicy::OsBuffer,
        read_pool_threads,
    }
}

fn frontend_config() -> FrontendConfig {
    FrontendConfig {
        shards: 2,
        queue_capacity: 64,
        max_batch: 16,
        group_commit: true,
        max_workers_per_shard: 1,
        elastic: ElasticConfig::default(),
    }
}

fn key(i: u32) -> Key {
    Key::from(format!("tk{i:03}"))
}

fn val(seed: u32) -> Value {
    Value::from(format!(
        "v{seed:05}-{}",
        "x".repeat(60 + (seed as usize % 40))
    ))
}

// --- the scripted workload ---------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Put(u32, u32),
    Delete(u32),
    /// CAS from the current certain value to `val(seed)`; issued as a
    /// plain put when the key's state is indeterminate.
    Cas(u32, u32),
    MultiPut(Vec<(u32, u32)>),
    /// One `apply_batch` submission mixing puts and gets — drives the
    /// overlapped read path (staged block reads, completion pass) so
    /// its fault sites land in the torture matrix. Completions are
    /// per-op, so each write commits or goes indeterminate on its own.
    Batch {
        writes: Vec<(u32, u32)>,
        gets: Vec<u32>,
    },
    Sync,
}

/// Deterministic op mix: populates 16 keys, batch-writes, deletes,
/// CASes, overwrites — sized to cross ~5 memtable flushes and trigger
/// L0→L1 compaction under [`torture_config`].
fn script() -> Vec<Op> {
    let mut ops = Vec::new();
    for i in 0..16 {
        ops.push(Op::Put(i, 100 + i));
    }
    ops.push(Op::MultiPut((0..6).map(|i| (i, 200 + i)).collect()));
    for i in (0..16).step_by(4) {
        ops.push(Op::Delete(i));
    }
    ops.push(Op::Sync);
    // Batched reads over keys already flushed into SSTables (plus two
    // riding writes) reach the staged/deduped block-read path.
    ops.push(Op::Batch {
        writes: vec![(2, 250), (7, 257)],
        gets: (0..16).collect(),
    });
    for i in 4..12 {
        ops.push(Op::Put(i, 300 + i));
    }
    for i in [1, 5, 9] {
        ops.push(Op::Cas(i, 400 + i));
    }
    ops.push(Op::Sync);
    ops.push(Op::MultiPut((10..16).map(|i| (i, 500 + i)).collect()));
    for i in 0..8 {
        ops.push(Op::Put(i, 600 + i));
    }
    ops.push(Op::Sync);
    ops.push(Op::Batch {
        writes: (12..16).map(|i| (i, 700 + i)).collect(),
        gets: vec![0, 3, 6, 9, 12, 15],
    });
    ops.push(Op::Sync);
    ops
}

// --- the durability model ----------------------------------------------

/// Reference state tracked op-by-op. `None` state = key absent
/// (deleted or never written).
#[derive(Default)]
struct Model {
    /// Keys whose state is certain: the op that last wrote them was
    /// acknowledged (returned `Ok`).
    committed: BTreeMap<u32, Option<u32>>,
    /// Keys with an op in flight at the kill, or an errored op: any
    /// listed state is legal after recovery.
    uncertain: BTreeMap<u32, Vec<Option<u32>>>,
}

impl Model {
    fn commit(&mut self, attempt: &[(u32, Option<u32>)]) {
        for (k, s) in attempt {
            self.committed.insert(*k, *s);
            self.uncertain.remove(k);
        }
    }

    fn indeterminate(&mut self, attempt: &[(u32, Option<u32>)]) {
        for (k, s) in attempt {
            let prior = self.committed.remove(k);
            let cands = self
                .uncertain
                .entry(*k)
                .or_insert_with(|| vec![prior.unwrap_or(None)]);
            if !cands.contains(s) {
                cands.push(*s);
            }
        }
    }

    fn certain_state(&self, k: u32) -> Option<Option<u32>> {
        if self.uncertain.contains_key(&k) {
            None
        } else {
            Some(self.committed.get(&k).copied().unwrap_or(None))
        }
    }

    /// Every certain key must read back exactly; an uncertain key must
    /// be one of its legal states (never a torn hybrid).
    fn verify(&self, db: &dyn KvEngine, ctx: &str) {
        for (k, s) in &self.committed {
            let got = db
                .get(&key(*k))
                .unwrap_or_else(|e| panic!("[{ctx}] get({k}) failed after recovery: {e}"));
            assert_eq!(
                got,
                s.map(val),
                "[{ctx}] acknowledged write to key {k} lost or mangled"
            );
        }
        for (k, cands) in &self.uncertain {
            let got = db
                .get(&key(*k))
                .unwrap_or_else(|e| panic!("[{ctx}] get({k}) failed after recovery: {e}"));
            assert!(
                cands.iter().any(|c| c.map(val) == got),
                "[{ctx}] key {k} recovered to {got:?}, not one of its \
                 legal states {cands:?}"
            );
        }
        for sentinel in [900u32, 901, 902] {
            assert_eq!(
                db.get(&key(sentinel)).unwrap(),
                None,
                "[{ctx}] phantom key {sentinel} appeared"
            );
        }
    }
}

// --- the driver --------------------------------------------------------

/// Runs `ops` against `engine`, tracking the model. Returns `true` when
/// a simulated crash ended the run.
fn run_workload(engine: &dyn KvEngine, ops: &[Op], model: &mut Model) -> bool {
    for op in ops {
        if fault::crash_fired().is_some() {
            return true;
        }
        // Batched submissions settle per completion slot: each write
        // commits or goes indeterminate on its own result (a batch is
        // not a transaction); the gets carry no durability state but
        // drive the staged-read fault sites.
        if let Op::Batch { writes, gets } = op {
            let attempt: Vec<(u32, Option<u32>)> =
                writes.iter().map(|(k, s)| (*k, Some(*s))).collect();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut batch: Vec<EngineOp> = Vec::with_capacity(writes.len() + gets.len());
                batch.extend(writes.iter().map(|(k, s)| EngineOp::Put(key(*k), val(*s))));
                batch.extend(gets.iter().map(|k| EngineOp::Get(key(*k))));
                engine.apply_batch(batch)
            }));
            match outcome {
                Ok(results) => {
                    assert_eq!(
                        results.len(),
                        writes.len() + gets.len(),
                        "one completion per submitted op"
                    );
                    for (entry, result) in attempt.iter().zip(&results) {
                        match result {
                            Ok(_) => model.commit(std::slice::from_ref(entry)),
                            Err(_) => model.indeterminate(std::slice::from_ref(entry)),
                        }
                    }
                }
                Err(payload) => {
                    if payload.downcast_ref::<CrashPoint>().is_none() {
                        std::panic::resume_unwind(payload);
                    }
                    model.indeterminate(&attempt);
                    return true;
                }
            }
            continue;
        }
        // A CAS against an indeterminate key degrades to a put — the
        // driver cannot know which expected value the engine holds.
        let op = match op {
            Op::Cas(k, s) if model.certain_state(*k).is_none() => Op::Put(*k, *s),
            other => other.clone(),
        };
        let attempt: Vec<(u32, Option<u32>)> = match &op {
            Op::Put(k, s) | Op::Cas(k, s) => vec![(*k, Some(*s))],
            Op::Delete(k) => vec![(*k, None)],
            Op::MultiPut(pairs) => pairs.iter().map(|(k, s)| (*k, Some(*s))).collect(),
            Op::Batch { .. } => unreachable!("handled above"),
            Op::Sync => vec![],
        };
        let result = catch_unwind(AssertUnwindSafe(|| match &op {
            Op::Put(k, s) => engine.put(key(*k), val(*s)),
            Op::Delete(k) => engine.delete(&key(*k)),
            Op::Cas(k, s) => {
                let expected = model
                    .certain_state(*k)
                    .expect("cas only issued on certain keys")
                    .map(val);
                engine.cas(key(*k), expected.as_ref(), val(*s))
            }
            Op::MultiPut(pairs) => {
                engine.multi_put(pairs.iter().map(|(k, s)| (key(*k), val(*s))).collect())
            }
            Op::Batch { .. } => unreachable!("handled above"),
            Op::Sync => engine.sync(),
        }));
        match result {
            Ok(Ok(())) => model.commit(&attempt),
            Ok(Err(Error::CasMismatch)) => panic!(
                "CAS mismatch on a certain key ({op:?}): engine state \
                 diverged from every acknowledged write"
            ),
            Ok(Err(_)) => model.indeterminate(&attempt),
            Err(payload) => {
                // Only injected crashes may unwind; anything else is a
                // genuine bug and must fail the test.
                if payload.downcast_ref::<CrashPoint>().is_none() {
                    std::panic::resume_unwind(payload);
                }
                model.indeterminate(&attempt);
                return true;
            }
        }
    }
    fault::crash_fired().is_some()
}

/// One torture run: workload killed at `(site, hit, mode)`, then reopen
/// and verify. Returns whether the injection actually fired (exhaustion
/// signal for the enumeration).
fn run_once(
    site: &'static str,
    hit: u64,
    mode: FaultMode,
    pipelined: bool,
    pool_threads: usize,
) -> bool {
    let ctx = format!(
        "{}{}:{site}#{hit}:{mode:?}",
        if pipelined { "pipelined" } else { "raw" },
        if pool_threads > 0 { "+pool" } else { "" }
    );
    fault::reset();
    let dir = fresh_dir(if pipelined { "pipe" } else { "raw" });
    let mut model = Model::default();
    let ops = script();

    if pipelined {
        let db = Arc::new(LsmDb::open(torture_config(dir.path(), pool_threads)).unwrap());
        let fe = Frontend::start(db, frontend_config());
        fault::arm(site, hit, mode);
        let crashed = run_workload(&fe, &ops, &mut model);
        if !crashed && fault::fault_fired() {
            // Transient error: earlier acks must still be readable
            // through the live front-end before any reopen.
            model.verify(&fe, &format!("{ctx}:live"));
        }
        fe.shutdown();
    } else {
        let db = LsmDb::open(torture_config(dir.path(), pool_threads)).unwrap();
        fault::arm(site, hit, mode);
        let crashed = run_workload(&db, &ops, &mut model);
        if !crashed && fault::fault_fired() {
            model.verify(&db, &format!("{ctx}:live"));
        }
    }

    let fired = fault::fault_fired();
    fault::reset();

    // "Reboot": recover from the frozen disk image alone (with the
    // same pool setting, proving recovery works under it too).
    let db = LsmDb::open(torture_config(dir.path(), pool_threads))
        .unwrap_or_else(|e| panic!("[{ctx}] reopen after kill failed: {e}"));
    model.verify(&db, &ctx);
    // The recovered store must accept and serve new writes.
    db.put(key(800), val(800)).unwrap();
    assert_eq!(db.get(&key(800)).unwrap(), Some(val(800)), "[{ctx}]");
    fired
}

/// Enumerates `(site, 1..)` until the workload stops reaching the site
/// (or `cap` hits in smoke mode), asserting every listed site fires at
/// least once.
fn enumerate(
    sites: &[&'static str],
    mode_of: fn(u64) -> FaultMode,
    pipelined: bool,
    cap: u64,
    pool_threads: usize,
) {
    quiet_crash_panics();
    for &site in sites {
        let mut fired_once = false;
        let mut hit = 1u64;
        loop {
            let fired = run_once(site, hit, mode_of(hit), pipelined, pool_threads);
            fired_once |= fired;
            if !fired || hit >= cap {
                break;
            }
            hit += 1;
        }
        assert!(
            fired_once,
            "fault site {site} was never reached by the torture workload"
        );
    }
}

fn cap_or(full: u64) -> u64 {
    // Same convention as TB_BENCH_SMOKE: unset, empty, or "0" = full.
    let smoke = std::env::var("TB_FAULT_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    if smoke {
        SMOKE_HITS.min(full)
    } else {
        full
    }
}

// --- the suite ---------------------------------------------------------

/// Coverage probe: one clean scripted run must hit every registered
/// fault site — keeps `FAULT_SITES` in lockstep with the code — and
/// must exercise flushes *and* compaction.
#[test]
fn fault_sites_all_reachable() {
    let _g = gate();
    fault::reset();
    let dir = fresh_dir("probe");
    let db = LsmDb::open(torture_config(dir.path(), 0)).unwrap();
    fault::set_counting(true);
    let mut model = Model::default();
    let crashed = run_workload(&db, &script(), &mut model);
    assert!(!crashed, "no injection armed, nothing may crash");
    let flushes = db.stats.flushes.load(Ordering::Relaxed);
    let compactions = db.stats.compactions.load(Ordering::Relaxed);
    assert!(flushes >= 3, "workload too small: {flushes} flushes");
    assert!(compactions >= 1, "workload never compacts");
    assert!(
        FAULT_SITES.len() >= 12,
        "torture surface shrank to {} sites",
        FAULT_SITES.len()
    );
    for &site in FAULT_SITES {
        assert!(
            fault::hit_count(site) > 0,
            "registered fault site {site} is dead code in the workload \
             (hit counts: {:?})",
            fault::hit_counts()
        );
    }
    for &site in FAULT_WRITE_SITES {
        assert!(
            FAULT_SITES.contains(&site),
            "{site} missing from FAULT_SITES"
        );
    }
    fault::reset();
    model.verify(&db, "probe");
}

/// The telemetry layer must be invisible to the fault schedule: whether
/// tracer/metrics recording is on cannot shift the `(site, hit)`
/// enumeration the whole torture matrix is keyed by. Runs the scripted
/// workload with counting on under both observability settings (and
/// both completion passes) and compares the per-site hit counts.
#[test]
fn telemetry_does_not_perturb_fault_enumeration() {
    let _g = gate();
    let counts_with = |obs_on: bool, pool: usize| {
        tierbase::obs::set_enabled(obs_on);
        fault::reset();
        let dir = fresh_dir("obs-invariance");
        let db = LsmDb::open(torture_config(dir.path(), pool)).unwrap();
        fault::set_counting(true);
        let mut model = Model::default();
        let crashed = run_workload(&db, &script(), &mut model);
        assert!(!crashed, "no injection armed, nothing may crash");
        let counts = fault::hit_counts();
        fault::reset();
        counts
    };
    for pool in [0usize, 2] {
        let with_obs = counts_with(true, pool);
        let without_obs = counts_with(false, pool);
        tierbase::obs::set_enabled(true);
        assert_eq!(
            with_obs, without_obs,
            "telemetry recording changed the fault (site, hit) \
             enumeration (pool={pool})"
        );
    }
}

/// Simulated `kill -9` at every `(site, hit)` on the raw engine.
#[test]
fn crash_torture_raw() {
    let _g = gate();
    enumerate(
        FAULT_SITES,
        |_| FaultMode::Crash,
        false,
        cap_or(u64::MAX),
        0,
    );
}

/// The same kill schedule through the pipelined group-commit front-end.
#[test]
fn crash_torture_pipelined() {
    let _g = gate();
    enumerate(FAULT_SITES, |_| FaultMode::Crash, true, cap_or(u64::MAX), 0);
}

/// Transient IO error at every `(site, hit)`: the op fails, the store
/// keeps serving every acknowledged write, and recovery stays clean.
#[test]
fn error_torture_raw() {
    let _g = gate();
    enumerate(
        FAULT_SITES,
        |_| FaultMode::Error,
        false,
        cap_or(u64::MAX),
        0,
    );
}

/// Transient IO errors through the front-end: failing tickets resolve,
/// later batches proceed, recovery stays clean. (Per-batch containment
/// is also unit-tested in `tests/frontend_errors.rs`.)
#[test]
fn error_torture_pipelined() {
    let _g = gate();
    enumerate(FAULT_SITES, |_| FaultMode::Error, true, cap_or(u64::MAX), 0);
}

/// Torn writes (partial buffer + crash) at every buffer-write site,
/// with a different cut point per hit.
#[test]
fn torn_write_torture_raw() {
    let _g = gate();
    enumerate(
        FAULT_WRITE_SITES,
        |hit| FaultMode::Torn {
            keep: (hit as usize * 13) % 97,
        },
        false,
        cap_or(u64::MAX),
        0,
    );
}

/// The `(site, hit)` crash matrix again, with the completion pass
/// running on the parallel shard read pool — durability and positional
/// fault determinism must not depend on who fetches the blocks.
#[test]
fn crash_torture_raw_read_pool() {
    let _g = gate();
    enumerate(
        FAULT_SITES,
        |_| FaultMode::Crash,
        false,
        cap_or(u64::MAX),
        2,
    );
}

/// Transient IO errors with the pooled completion pass: same per-slot
/// error scoping and recovery as inline.
#[test]
fn error_torture_raw_read_pool() {
    let _g = gate();
    enumerate(
        FAULT_SITES,
        |_| FaultMode::Error,
        false,
        cap_or(u64::MAX),
        2,
    );
}

/// Torn writes with the pooled completion pass.
#[test]
fn torn_write_torture_raw_read_pool() {
    let _g = gate();
    enumerate(
        FAULT_WRITE_SITES,
        |hit| FaultMode::Torn {
            keep: (hit as usize * 17) % 89,
        },
        false,
        cap_or(u64::MAX),
        2,
    );
}

/// Crash matrix through the pipelined front-end over a pooled engine:
/// shard workers share the engine's read pool, kills surface as failed
/// tickets, recovery stays clean.
#[test]
fn crash_torture_pipelined_read_pool() {
    let _g = gate();
    enumerate(FAULT_SITES, |_| FaultMode::Crash, true, cap_or(u64::MAX), 2);
}

/// Torn writes through the pipelined path.
#[test]
fn torn_write_torture_pipelined() {
    let _g = gate();
    enumerate(
        FAULT_WRITE_SITES,
        |hit| FaultMode::Torn {
            keep: (hit as usize * 29) % 61,
        },
        true,
        cap_or(u64::MAX),
        0,
    );
}

/// Scan batches through the `batch.block_read` *and* `sst.block_decode`
/// enumerations: for every hit position either fault can land on, a
/// batch mixing range scans and point gets must fail *only* the
/// completion slots whose staged reads reference the faulted block —
/// identically on the inline and pooled completion passes — while every
/// other slot answers the same as a clean run (a block-read fault never
/// fetches; a decode fault fetches a frame that fails CRC/decode).
#[test]
fn scan_batch_block_read_fault_fails_only_its_slots() {
    let _g = gate();
    fault::reset();
    let dir = fresh_dir("scanfault");
    let config = torture_config(dir.path(), 0);
    {
        // Two flushed generations so scans stage ranges across tables.
        let db = LsmDb::open(config.clone()).unwrap();
        for i in 0..120 {
            db.put(key(i), val(i)).unwrap();
        }
        db.flush().unwrap();
        for i in 60..180 {
            db.put(key(i), val(i + 1000)).unwrap();
        }
        db.flush().unwrap();
    }
    let inline = LsmDb::open(config.clone()).unwrap();
    let mut pooled_config = config;
    pooled_config.read_pool_threads = 2;
    // Second handle over the same dir: reads only, so the duplicate
    // WAL handle never comes into play.
    let pooled = LsmDb::open(pooled_config).unwrap();

    let ops = || {
        vec![
            EngineOp::Scan {
                start: key(10),
                end: Some(key(50)),
                limit: usize::MAX,
            },
            EngineOp::Get(key(90)),
            EngineOp::Scan {
                start: key(100),
                end: Some(key(140)),
                limit: usize::MAX,
            },
            EngineOp::Get(key(5)),
        ]
    };
    let clean = inline.apply_batch(ops());
    assert!(
        clean.iter().all(|r| r.is_ok()),
        "clean run failed: {clean:?}"
    );
    let total_fetches = KvEngine::batch_read_stats(&inline).blocks_read;
    assert!(total_fetches >= 4, "scan batch staged too few blocks");

    for site in ["batch.block_read", "sst.block_decode"] {
        for hit in 1..=cap_or(total_fetches) {
            let mut failed = Vec::new();
            for (which, db) in [("inline", &inline), ("pooled", &pooled)] {
                fault::arm_scoped(site, hit, FaultMode::Error);
                let outcomes = db.apply_batch(ops());
                fault::reset();
                let errs: Vec<usize> = outcomes
                    .iter()
                    .enumerate()
                    .filter_map(|(i, r)| r.is_err().then_some(i))
                    .collect();
                assert!(
                    !errs.is_empty(),
                    "{site} hit {hit} never fired ({which}: fetches={total_fetches})"
                );
                if site == "sst.block_decode" {
                    for i in &errs {
                        assert!(
                            matches!(outcomes[*i], Err(Error::Corruption(_))),
                            "{which} {site} hit {hit}: slot {i} must fail with \
                             Corruption, got {:?}",
                            outcomes[*i]
                        );
                    }
                }
                for (i, r) in outcomes.iter().enumerate() {
                    if r.is_ok() {
                        assert_eq!(
                            r, &clean[i],
                            "{which} {site} hit {hit}: slot {i} answered differently \
                             under an unrelated block fault"
                        );
                    }
                }
                failed.push(errs);
            }
            assert_eq!(
                failed[0], failed[1],
                "{site} hit {hit}: pooled fault landed on different slots than inline"
            );
        }
        // The store stays usable between and after fault rounds.
        let again = inline.apply_batch(ops());
        assert_eq!(again, clean, "store must serve cleanly after {site} faults");
    }
}

// --- replication torture -----------------------------------------------

/// The same enumeration discipline over the cluster replication path:
/// every `(site, hit)` in [`tierbase::cluster::REPL_FAULT_SITES`] ×
/// {crash, error, torn} kills a scripted write workload against a
/// replicated data node — primary crash mid-ship, replica crash
/// mid-apply, promotion races — then fails the node over and checks the
/// replication contract byte-exactly:
///
/// * every write acked by the node (`Ok(lsn)` — which the channel only
///   returns once the replica acknowledged the frame) is present after
///   promotion, and its LSN sits at or below the promotion watermark;
/// * an errored or killed in-flight write resolves to one of its legal
///   states, never a torn hybrid;
/// * the promoted node serves new writes and — through its replica
///   factory — is replicated again, so a second crash is survivable.
mod replication {
    use super::*;
    use parking_lot::Mutex as PMutex;
    use std::sync::atomic::AtomicU64;
    use tierbase::cluster::{ClusterClient, CoordinatorGroup, NodeId, NodeStore, REPL_FAULT_SITES};
    use tierbase::common::{Lsn, Result};

    /// In-memory engine: replication torture needs no disk, only the
    /// channel's own log.
    struct MapEngine(PMutex<BTreeMap<Key, Value>>);

    fn map_engine() -> Arc<dyn KvEngine> {
        Arc::new(MapEngine(PMutex::new(BTreeMap::new())))
    }

    impl KvEngine for MapEngine {
        fn get(&self, key: &Key) -> Result<Option<Value>> {
            Ok(self.0.lock().get(key).cloned())
        }
        fn put(&self, key: Key, value: Value) -> Result<()> {
            self.0.lock().insert(key, value);
            Ok(())
        }
        fn delete(&self, key: &Key) -> Result<()> {
            self.0.lock().remove(key);
            Ok(())
        }
        fn resident_bytes(&self) -> u64 {
            0
        }
        fn label(&self) -> String {
            "map".into()
        }
    }

    #[derive(Debug, Clone)]
    enum ROp {
        Put(u32, u32),
        Delete(u32),
        MultiPut(Vec<(u32, u32)>),
    }

    /// Deterministic write mix: ~40 shipped frames per run, with
    /// overwrites and deletes so promotion replay order matters.
    fn repl_script() -> Vec<ROp> {
        let mut ops = Vec::new();
        for i in 0..16 {
            ops.push(ROp::Put(i, 100 + i));
        }
        ops.push(ROp::MultiPut((0..6).map(|i| (i, 200 + i)).collect()));
        for i in (0..16).step_by(4) {
            ops.push(ROp::Delete(i));
        }
        for i in 4..12 {
            ops.push(ROp::Put(i, 300 + i));
        }
        ops.push(ROp::MultiPut((10..16).map(|i| (i, 500 + i)).collect()));
        for i in 0..8 {
            ops.push(ROp::Put(i, 600 + i));
        }
        ops.push(ROp::Delete(1));
        ops
    }

    /// Reference state: acked writes carry their covering LSN.
    #[derive(Default)]
    struct ReplModel {
        acked: BTreeMap<u32, (Option<u32>, u64)>,
        uncertain: BTreeMap<u32, Vec<Option<u32>>>,
    }

    impl ReplModel {
        fn ack(&mut self, attempt: &[(u32, Option<u32>)], lsn: Lsn) {
            for (k, s) in attempt {
                self.acked.insert(*k, (*s, lsn.0));
                self.uncertain.remove(k);
            }
        }

        fn indeterminate(&mut self, attempt: &[(u32, Option<u32>)]) {
            for (k, s) in attempt {
                let prior = self.acked.remove(k).map(|(s, _)| s);
                let cands = self
                    .uncertain
                    .entry(*k)
                    .or_insert_with(|| vec![prior.unwrap_or(None)]);
                if !cands.contains(s) {
                    cands.push(*s);
                }
            }
        }

        /// Byte-exact replication contract after failover.
        fn verify(&self, node: &tierbase::cluster::NodeStore, watermark: Lsn, ctx: &str) {
            for (k, (state, lsn)) in &self.acked {
                assert!(
                    *lsn <= watermark.0,
                    "[{ctx}] write acked at lsn {lsn} above the promotion \
                     watermark {watermark:?}"
                );
                let got = node
                    .get(&key(*k))
                    .unwrap_or_else(|e| panic!("[{ctx}] get({k}) failed after failover: {e}"));
                assert_eq!(
                    got,
                    state.map(val),
                    "[{ctx}] write acked at lsn {lsn} (watermark {watermark:?}) \
                     lost or mangled by failover"
                );
            }
            for (k, cands) in &self.uncertain {
                let got = node
                    .get(&key(*k))
                    .unwrap_or_else(|e| panic!("[{ctx}] get({k}) failed after failover: {e}"));
                assert!(
                    cands.iter().any(|c| c.map(val) == got),
                    "[{ctx}] key {k} failed over to {got:?}, not one of its \
                     legal states {cands:?}"
                );
            }
        }
    }

    /// Runs the scripted workload against the node, tracking acks.
    /// Returns `true` when an injected crash ended the run.
    fn run_repl_workload(
        node: &parking_lot::RwLock<NodeStore>,
        ops: &[ROp],
        model: &mut ReplModel,
    ) -> bool {
        for op in ops {
            if fault::crash_fired().is_some() {
                return true;
            }
            let attempt: Vec<(u32, Option<u32>)> = match op {
                ROp::Put(k, s) => vec![(*k, Some(*s))],
                ROp::Delete(k) => vec![(*k, None)],
                ROp::MultiPut(pairs) => pairs.iter().map(|(k, s)| (*k, Some(*s))).collect(),
            };
            let result = catch_unwind(AssertUnwindSafe(|| match op {
                ROp::Put(k, s) => node.read().put(key(*k), val(*s)),
                ROp::Delete(k) => node.read().delete(&key(*k)),
                ROp::MultiPut(pairs) => node
                    .read()
                    .multi_put(pairs.iter().map(|(k, s)| (key(*k), val(*s))).collect()),
            }));
            match result {
                Ok(Ok(lsn)) => model.ack(&attempt, lsn),
                Ok(Err(_)) => model.indeterminate(&attempt),
                Err(payload) => {
                    if payload.downcast_ref::<CrashPoint>().is_none() {
                        std::panic::resume_unwind(payload);
                    }
                    model.indeterminate(&attempt);
                    return true;
                }
            }
        }
        fault::crash_fired().is_some()
    }

    /// Drives the coordinator failover, absorbing injected promotion
    /// faults: an armed `repl.promote`/`repl.apply` error or crash fires
    /// inside `run_failover`, after which the retry must *resume* the
    /// promotion without losing acked state.
    fn failover_with_retries(group: &CoordinatorGroup, ctx: &str) -> bool {
        let mut fired = false;
        for _ in 0..4 {
            let result = catch_unwind(AssertUnwindSafe(|| group.run_failover()));
            fired |= fault::fault_fired();
            match result {
                Ok(Ok(ids)) => {
                    assert!(ids.contains(&NodeId(0)), "[{ctx}] node 0 not failed over");
                    return fired;
                }
                Ok(Err(_)) => fault::reset(),
                Err(payload) => {
                    if payload.downcast_ref::<CrashPoint>().is_none() {
                        std::panic::resume_unwind(payload);
                    }
                    // Coordinator died mid-promotion; the next sweep
                    // (fresh process: faults reset) resumes it.
                    fault::reset();
                }
            }
        }
        panic!("[{ctx}] failover did not complete within its retry budget");
    }

    /// One torture run: the workload killed at `(site, hit, mode)`,
    /// then a crash + failover, then byte-exact verification.
    fn run_repl_once(site: &'static str, hit: u64, mode: FaultMode) -> bool {
        let ctx = format!("repl:{site}#{hit}:{mode:?}");
        fault::reset();
        let node = NodeStore::new(NodeId(0), map_engine()).with_replica_factory(map_engine);
        let group = CoordinatorGroup::bootstrap(1, vec![node]).unwrap();
        let handle = group.node(NodeId(0)).unwrap();
        let mut model = ReplModel::default();
        fault::arm(site, hit, mode);
        run_repl_workload(&handle, &repl_script(), &mut model);
        let mut fired = fault::fault_fired();

        // The primary dies; a crash injection already froze the fault
        // registry at the kill instant, so model the reboot by clearing
        // it. An armed-but-unreached fault (`repl.promote`) stays armed
        // and fires inside the failover below.
        handle.read().crash();
        if fault::crash_fired().is_some() {
            fault::reset();
        }
        fired |= failover_with_retries(&group, &ctx);
        fault::reset();

        let node = handle.read();
        let watermark = node.session_lsn();
        model.verify(&node, watermark, &ctx);
        // The promoted node serves new writes and is replicated again.
        node.put(key(800), val(800)).unwrap();
        assert_eq!(node.get(&key(800)).unwrap(), Some(val(800)), "[{ctx}]");
        assert!(
            node.has_replica(),
            "[{ctx}] promotion must re-seed a replica (second crash unsurvivable)"
        );
        fired
    }

    fn enumerate_repl(sites: &[&'static str], mode_of: fn(u64) -> FaultMode, cap: u64) {
        quiet_crash_panics();
        for &site in sites {
            let mut fired_once = false;
            let mut hit = 1u64;
            loop {
                let fired = run_repl_once(site, hit, mode_of(hit));
                fired_once |= fired;
                if !fired || hit >= cap {
                    break;
                }
                hit += 1;
            }
            assert!(
                fired_once,
                "replication fault site {site} was never reached by the workload"
            );
        }
    }

    /// Coverage probe: a clean run (workload + crash + failover) must
    /// hit every registered replication fault site.
    #[test]
    fn repl_sites_all_reachable() {
        let _g = gate();
        fault::reset();
        let node = NodeStore::new(NodeId(0), map_engine()).with_replica_factory(map_engine);
        let group = CoordinatorGroup::bootstrap(1, vec![node]).unwrap();
        let handle = group.node(NodeId(0)).unwrap();
        fault::set_counting(true);
        let mut model = ReplModel::default();
        let crashed = run_repl_workload(&handle, &repl_script(), &mut model);
        assert!(!crashed, "no injection armed, nothing may crash");
        handle.read().crash();
        group.run_failover().unwrap();
        for &site in REPL_FAULT_SITES {
            assert!(
                fault::hit_count(site) > 0,
                "registered replication fault site {site} is dead code \
                 (hit counts: {:?})",
                fault::hit_counts()
            );
        }
        fault::reset();
        model.verify(&handle.read(), handle.read().session_lsn(), "repl-probe");
    }

    /// Simulated `kill -9` at every replication `(site, hit)`:
    /// primary dies mid-ship, replica dies mid-apply, coordinator dies
    /// mid-promotion.
    #[test]
    fn repl_crash_torture() {
        let _g = gate();
        enumerate_repl(REPL_FAULT_SITES, |_| FaultMode::Crash, cap_or(u64::MAX));
    }

    /// Transient error at every replication `(site, hit)`: the write
    /// ack goes indeterminate (never falsely covered by a watermark),
    /// the channel log stays parseable, and a faulted promotion is
    /// resumed by the next failover sweep.
    #[test]
    fn repl_error_torture() {
        let _g = gate();
        enumerate_repl(REPL_FAULT_SITES, |_| FaultMode::Error, cap_or(u64::MAX));
    }

    /// Torn frames at the ship site (the channel's only buffer write):
    /// a partially shipped frame is never acked and promotion discards
    /// the torn tail instead of replaying garbage.
    #[test]
    fn repl_torn_ship_torture() {
        let _g = gate();
        enumerate_repl(
            &["repl.ship"],
            |hit| FaultMode::Torn {
                keep: (hit as usize * 13) % 41,
            },
            cap_or(u64::MAX),
        );
    }

    /// End-to-end client story: a smart client writes through the
    /// routed path; the primary is killed mid-ship; the client's next
    /// reads transparently fail the node over and — holding LSN session
    /// tokens — still see every write it was acked, byte-exact.
    #[test]
    fn client_acked_writes_survive_primary_crash_mid_ship() {
        let _g = gate();
        quiet_crash_panics();
        fault::reset();
        let node = NodeStore::new(NodeId(0), map_engine()).with_replica_factory(map_engine);
        let group = Arc::new(CoordinatorGroup::bootstrap(1, vec![node]).unwrap());
        let client = ClusterClient::connect(group.clone());
        let handle = group.node(NodeId(0)).unwrap();
        let kill_at = 23;
        fault::arm("repl.ship", kill_at, FaultMode::Crash);
        let mut acked: Vec<u32> = Vec::new();
        for i in 0..64u32 {
            let result = catch_unwind(AssertUnwindSafe(|| client.put(key(i), val(i))));
            match result {
                Ok(Ok(())) => acked.push(i),
                Ok(Err(_)) => {}
                Err(payload) => {
                    if payload.downcast_ref::<CrashPoint>().is_none() {
                        std::panic::resume_unwind(payload);
                    }
                    break;
                }
            }
        }
        assert_eq!(
            acked.len() as u64,
            kill_at - 1,
            "crash hit the scripted ship"
        );
        assert!(
            client.session_token(NodeId(0)) > Lsn::NONE,
            "acked writes must have minted a session token"
        );
        handle.read().crash();
        fault::reset();
        // The first read triggers the client's transparent failover;
        // every acked write must satisfy the session token afterwards.
        for &i in &acked {
            assert_eq!(
                client.get(&key(i)).unwrap(),
                Some(val(i)),
                "client-acked write {i} lost across failover"
            );
        }
        let count = AtomicU64::new(0);
        for i in 0..64u32 {
            if client.get(&key(i)).unwrap().is_some() {
                count.fetch_add(1, Ordering::Relaxed);
            }
        }
        assert!(
            count.load(Ordering::Relaxed) >= acked.len() as u64,
            "failover lost acked keys"
        );
    }
}

// --- exhaustive-schedule proptest --------------------------------------

mod schedules {
    use super::*;
    use proptest::prelude::*;

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            6 => (0u32..20, any::<u32>()).prop_map(|(k, s)| Op::Put(k, s % 1000)),
            2 => (0u32..20).prop_map(Op::Delete),
            2 => (0u32..20, any::<u32>()).prop_map(|(k, s)| Op::Cas(k, s % 1000)),
            1 => proptest::collection::vec((0u32..20, 0u32..1000), 1..6)
                .prop_map(Op::MultiPut),
            1 => (
                proptest::collection::vec((0u32..20, 0u32..1000), 0..4),
                proptest::collection::vec(0u32..20, 0..8),
            )
                .prop_map(|(writes, gets)| Op::Batch { writes, gets }),
            1 => Just(Op::Sync),
        ]
    }

    fn run_schedule(ops: &[Op], site: &'static str, hit: u64, mode: FaultMode, pool: usize) {
        let _g = gate();
        quiet_crash_panics();
        fault::reset();
        let dir = fresh_dir("sched");
        let mut model = Model::default();
        {
            let db = LsmDb::open(torture_config(dir.path(), pool)).unwrap();
            fault::arm(site, hit, mode);
            run_workload(&db, ops, &mut model);
        }
        fault::reset();
        let db = LsmDb::open(torture_config(dir.path(), pool))
            .unwrap_or_else(|e| panic!("[{site}#{hit}:{mode:?}:pool{pool}] reopen failed: {e}"));
        model.verify(&db, &format!("sched:{site}#{hit}:{mode:?}:pool{pool}"));
    }

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 20,
            max_shrink_iters: 16,
            ..ProptestConfig::default()
        })]

        /// Arbitrary op schedules (which interleave flushes and
        /// compaction wherever the memtable threshold lands) killed at
        /// an arbitrary `(site, hit)` in an arbitrary mode must always
        /// recover to a legal state.
        #[test]
        fn arbitrary_schedule_survives_arbitrary_fault(
            ops in proptest::collection::vec(op_strategy(), 10..80),
            site_idx in 0usize..FAULT_SITES.len(),
            hit in 1u64..12,
            mode_sel in 0u8..3,
            keep in 0usize..80,
            pool_sel in 0usize..2,
        ) {
            let mode = match mode_sel {
                0 => FaultMode::Error,
                1 => FaultMode::Crash,
                _ => FaultMode::Torn { keep },
            };
            run_schedule(&ops, FAULT_SITES[site_idx], hit, mode, pool_sel * 2);
        }
    }
}
