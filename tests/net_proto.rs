//! Property-based torture of the tb-server wire protocol: every frame
//! type round-trips through encode → arbitrary re-chunking → decode;
//! truncated/garbage/oversized inputs yield clean decode errors (never
//! a panic, never a silently desynchronized stream).

use proptest::prelude::*;
use tierbase::common::{EngineOp, Error, Key, Lsn, OpOutcome, Value};
use tierbase::server::proto::{
    decode_reply, decode_request, encode_reply, encode_request, Reply, Request,
};
use tierbase::server::{Bytes, FrameDecoder, MAX_FRAME};

fn raw(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..max)
}

fn op_strategy() -> impl Strategy<Value = EngineOp> {
    prop_oneof![
        raw(32).prop_map(|k| EngineOp::Get(Key::from(k))),
        (raw(32), raw(64)).prop_map(|(k, v)| EngineOp::Put(Key::from(k), Value::from(v))),
        raw(32).prop_map(|k| EngineOp::Delete(Key::from(k))),
        (raw(32), proptest::option::of(raw(32)), raw(32)).prop_map(|(k, e, n)| EngineOp::Cas {
            key: Key::from(k),
            expected: e.map(Value::from),
            new: Value::from(n),
        }),
        proptest::collection::vec(raw(24), 0..8)
            .prop_map(|ks| EngineOp::MultiGet(ks.into_iter().map(Key::from).collect())),
        proptest::collection::vec((raw(24), raw(24)), 0..8).prop_map(|ps| EngineOp::MultiPut(
            ps.into_iter()
                .map(|(k, v)| (Key::from(k), Value::from(v)))
                .collect()
        )),
        (raw(16), proptest::option::of(raw(16)), any::<u64>()).prop_map(|(s, e, l)| {
            EngineOp::Scan {
                start: Key::from(s),
                end: e.map(Key::from),
                limit: l as usize,
            }
        }),
    ]
}

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        6 => op_strategy().prop_map(Request::Op),
        1 => Just(Request::Stats),
        1 => Just(Request::Ping),
        1 => Just(Request::Sync),
    ]
}

fn error_strategy() -> impl Strategy<Value = Error> {
    prop_oneof![
        Just(Error::NotFound),
        Just(Error::CasMismatch),
        ".{0,24}".prop_map(Error::Corruption),
        ".{0,24}".prop_map(Error::Io),
        ".{0,24}".prop_map(Error::InvalidArgument),
        (".{0,24}", any::<u32>()).prop_map(|(m, d)| Error::backpressure_at_depth(m, d)),
        ".{0,24}".prop_map(Error::StorageWriteFailed),
        ".{0,24}".prop_map(Error::Unavailable),
        ".{0,24}".prop_map(Error::FaultInjected),
        ".{0,24}".prop_map(Error::Internal),
    ]
}

fn reply_strategy() -> impl Strategy<Value = Reply> {
    prop_oneof![
        proptest::option::of(raw(48))
            .prop_map(|v| Reply::Outcome(Ok(OpOutcome::Value(v.map(Value::from))))),
        any::<u64>().prop_map(|l| Reply::Outcome(Ok(OpOutcome::Done(Lsn(l))))),
        proptest::collection::vec(proptest::option::of(raw(24)), 0..8).prop_map(|vs| {
            Reply::Outcome(Ok(OpOutcome::Values(
                vs.into_iter().map(|v| v.map(Value::from)).collect(),
            )))
        }),
        proptest::collection::vec((raw(24), raw(24)), 0..8).prop_map(|es| {
            Reply::Outcome(Ok(OpOutcome::Range(
                es.into_iter()
                    .map(|(k, v)| (Key::from(k), Value::from(v)))
                    .collect(),
            )))
        }),
        error_strategy().prop_map(|e| Reply::Outcome(Err(e))),
        ".{0,64}".prop_map(Reply::StatsText),
        Just(Reply::Pong),
    ]
}

/// Feeds `wire` into a decoder in chunks derived from `cuts`, draining
/// complete frames after every chunk — frames must reassemble no matter
/// where the reads split.
fn decode_chunked(wire: &[u8], cuts: &[usize]) -> Vec<Bytes> {
    let mut dec = FrameDecoder::new();
    let mut frames = Vec::new();
    let mut pos = 0;
    let mut cut_iter = cuts.iter().cycle();
    while pos < wire.len() {
        let step = (cut_iter.next().unwrap() % 7) + 1;
        let end = (pos + step).min(wire.len());
        dec.feed(&wire[pos..end]);
        frames.extend(dec.frames().expect("well-formed stream never errors"));
        pos = end;
    }
    assert_eq!(dec.buffered(), 0, "no residue after whole frames");
    frames
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 64,
        ..ProptestConfig::default()
    })]

    /// Requests survive encode → arbitrary split-read reassembly →
    /// decode, for every frame type, in pipelined groups.
    #[test]
    fn requests_round_trip_through_arbitrary_chunking(
        reqs in proptest::collection::vec(request_strategy(), 1..10),
        cuts in proptest::collection::vec(0usize..7, 1..12),
    ) {
        let mut wire = Vec::new();
        for r in &reqs {
            encode_request(r, &mut wire);
        }
        let frames = decode_chunked(&wire, &cuts);
        prop_assert_eq!(frames.len(), reqs.len());
        for (frame, want) in frames.iter().zip(&reqs) {
            prop_assert_eq!(&decode_request(frame).unwrap(), want);
        }
    }

    /// Replies round-trip the same way — including every error kind,
    /// with backpressure keeping its queue-depth hint.
    #[test]
    fn replies_round_trip_through_arbitrary_chunking(
        replies in proptest::collection::vec(reply_strategy(), 1..10),
        cuts in proptest::collection::vec(0usize..7, 1..12),
    ) {
        let mut wire = Vec::new();
        for r in &replies {
            encode_reply(r, &mut wire);
        }
        let frames = decode_chunked(&wire, &cuts);
        prop_assert_eq!(frames.len(), replies.len());
        for (frame, want) in frames.iter().zip(&replies) {
            prop_assert_eq!(&decode_reply(frame).unwrap(), want);
        }
    }

    /// Truncating a valid stream anywhere never panics and never
    /// invents a frame: complete prefixes decode, the tail stays
    /// buffered awaiting more bytes.
    #[test]
    fn truncation_is_clean(
        reqs in proptest::collection::vec(request_strategy(), 1..6),
        frac in 0.0f64..1.0,
    ) {
        let mut wire = Vec::new();
        for r in &reqs {
            encode_request(r, &mut wire);
        }
        let cut = ((wire.len() as f64) * frac) as usize;
        let mut dec = FrameDecoder::new();
        dec.feed(&wire[..cut]);
        let frames = dec.frames().expect("truncated valid stream is not corrupt");
        prop_assert!(frames.len() <= reqs.len());
        for (frame, want) in frames.iter().zip(&reqs) {
            prop_assert_eq!(&decode_request(frame).unwrap(), want);
        }
        // Feeding the rest completes the stream exactly.
        dec.feed(&wire[cut..]);
        let rest = dec.frames().expect("remainder completes cleanly");
        prop_assert_eq!(frames.len() + rest.len(), reqs.len());
        prop_assert_eq!(dec.buffered(), 0);
    }

    /// Arbitrary garbage never panics the decoder or the body parsers:
    /// every outcome is Ok(frames) or a clean `Corruption` error.
    #[test]
    fn garbage_never_panics(garbage in raw(256)) {
        let mut dec = FrameDecoder::new();
        dec.feed(&garbage);
        if let Ok(frames) = dec.frames() {
            for frame in frames {
                let _ = decode_request(&frame);
                let _ = decode_reply(&frame);
            }
        }
        // (Err = clean corruption report; connection would drop.)
    }

    /// A corrupted *body* inside intact framing must not desync the
    /// stream: the bad frame errors, frames after it still decode.
    #[test]
    fn body_corruption_does_not_desync(
        good in request_strategy(),
        junk in raw(24),
        trailing in request_strategy(),
    ) {
        let mut wire = Vec::new();
        encode_request(&good, &mut wire);
        // A frame whose body is junk but whose length prefix is honest.
        wire.extend_from_slice(&(junk.len() as u32).to_le_bytes());
        wire.extend_from_slice(&junk);
        encode_request(&trailing, &mut wire);

        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let frames = dec.frames().expect("framing is intact");
        prop_assert_eq!(frames.len(), 3);
        prop_assert_eq!(&decode_request(&frames[0]).unwrap(), &good);
        let _ = decode_request(&frames[1]); // may or may not parse; must not panic
        prop_assert_eq!(&decode_request(&frames[2]).unwrap(), &trailing);
    }
}

#[test]
fn one_byte_at_a_time_reassembly() {
    let reqs = vec![
        Request::Op(EngineOp::Put(Key::from("split"), Value::from("read"))),
        Request::Op(EngineOp::MultiGet(vec![Key::from("a"), Key::from("b")])),
        Request::Ping,
    ];
    let mut wire = Vec::new();
    for r in &reqs {
        encode_request(r, &mut wire);
    }
    let mut dec = FrameDecoder::new();
    let mut frames = Vec::new();
    for byte in &wire {
        dec.feed(std::slice::from_ref(byte));
        frames.extend(dec.frames().unwrap());
    }
    assert_eq!(frames.len(), reqs.len());
    for (frame, want) in frames.iter().zip(&reqs) {
        assert_eq!(&decode_request(frame).unwrap(), want);
    }
}

#[test]
fn oversized_length_prefix_is_unrecoverable_corruption() {
    let mut dec = FrameDecoder::new();
    dec.feed(&(MAX_FRAME as u32 + 1).to_le_bytes());
    let err = dec.frames().unwrap_err();
    assert!(matches!(err, Error::Corruption(_)), "{err}");
}

#[test]
fn usize_max_scan_limit_survives_the_wire() {
    let req = Request::Op(EngineOp::Scan {
        start: Key::from(""),
        end: None,
        limit: usize::MAX,
    });
    let mut wire = Vec::new();
    encode_request(&req, &mut wire);
    let mut dec = FrameDecoder::new();
    dec.feed(&wire);
    let frames = dec.frames().unwrap();
    assert_eq!(decode_request(&frames[0]).unwrap(), req);
}
