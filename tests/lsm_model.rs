//! Property-based model checking of the LSM storage engine: arbitrary
//! operation sequences interleaved with flushes and restarts must
//! always agree with a reference BTreeMap.

use proptest::prelude::*;
use std::collections::BTreeMap;
use tierbase::lsm::{LsmConfig, LsmDb};
use tierbase::prelude::*;

#[derive(Debug, Clone)]
enum ModelOp {
    Put(u8, u8), // key id, value seed
    Delete(u8),
    Get(u8),
    Flush,
    Restart,
}

fn model_op_strategy() -> impl Strategy<Value = ModelOp> {
    prop_oneof![
        5 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| ModelOp::Put(k, v)),
        2 => any::<u8>().prop_map(ModelOp::Delete),
        3 => any::<u8>().prop_map(ModelOp::Get),
        1 => Just(ModelOp::Flush),
        1 => Just(ModelOp::Restart),
    ]
}

fn key(id: u8) -> Key {
    Key::from(format!("model-key-{id:03}"))
}

fn value(seed: u8) -> Value {
    Value::from(format!("val-{seed}-{}", "z".repeat(seed as usize % 40)))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 64,
        ..ProptestConfig::default()
    })]

    /// The engine matches the model under puts/deletes/gets with
    /// interleaved flushes (memtable → SSTable) and restarts (full
    /// manifest + WAL recovery).
    #[test]
    fn lsm_agrees_with_model(ops in proptest::collection::vec(model_op_strategy(), 1..120)) {
        let dir = std::env::temp_dir().join(format!(
            "tb-lsm-model-{}-{:x}",
            std::process::id(),
            rand::random::<u64>()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut db = LsmDb::open(LsmConfig::small_for_tests(&dir)).unwrap();
        let mut model: BTreeMap<Key, Value> = BTreeMap::new();

        for op in ops {
            match op {
                ModelOp::Put(k, v) => {
                    db.put(key(k), value(v)).unwrap();
                    model.insert(key(k), value(v));
                }
                ModelOp::Delete(k) => {
                    db.delete(key(k)).unwrap();
                    model.remove(&key(k));
                }
                ModelOp::Get(k) => {
                    let got = db.get(&key(k)).unwrap();
                    prop_assert_eq!(got.as_ref(), model.get(&key(k)));
                }
                ModelOp::Flush => {
                    db.flush().unwrap();
                }
                ModelOp::Restart => {
                    drop(db);
                    db = LsmDb::open(LsmConfig::small_for_tests(&dir)).unwrap();
                }
            }
        }
        // Final full-state comparison, then once more after a restart.
        for (k, v) in &model {
            let got = db.get(k).unwrap();
            prop_assert_eq!(got.as_ref(), Some(v));
        }
        drop(db);
        let db = LsmDb::open(LsmConfig::small_for_tests(&dir)).unwrap();
        for (k, v) in &model {
            let got = db.get(k).unwrap();
            prop_assert_eq!(got.as_ref(), Some(v));
        }
        // Absent keys stay absent.
        for id in 0..=255u8 {
            if !model.contains_key(&key(id)) {
                prop_assert_eq!(db.get(&key(id)).unwrap(), None);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        max_shrink_iters: 32,
        ..ProptestConfig::default()
    })]

    /// The tiered TierBase store under write-back matches the model
    /// across sync + reopen for arbitrary op sequences.
    #[test]
    fn tiered_write_back_agrees_with_model(
        ops in proptest::collection::vec((0u8..3, any::<u8>(), any::<u8>()), 1..80)
    ) {
        let dir = std::env::temp_dir().join(format!(
            "tb-wb-model-{}-{:x}",
            std::process::id(),
            rand::random::<u64>()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let open = || {
            TierBase::open(
                TierBaseConfig::builder(&dir)
                    .cache_capacity(256 << 10)
                    .cache_shards(2)
                    .policy(SyncPolicy::WriteBack)
                    .build(),
            )
            .unwrap()
        };
        let store = open();
        let mut model: BTreeMap<Key, Value> = BTreeMap::new();
        for (kind, k, v) in ops {
            match kind {
                0 | 1 => {
                    store.put(key(k), value(v)).unwrap();
                    model.insert(key(k), value(v));
                }
                _ => {
                    store.delete(&key(k)).unwrap();
                    model.remove(&key(k));
                }
            }
        }
        store.sync().unwrap();
        drop(store);
        let store = open();
        for (k, v) in &model {
            let got = store.get(k).unwrap();
            prop_assert_eq!(got.as_ref(), Some(v), "key {:?}", k);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
