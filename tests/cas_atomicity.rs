//! Compare-and-set atomicity across the workspace's engines.
//!
//! The default `KvEngine::cas` is documented as *unsynchronized
//! read-then-write*: between its internal `get` and `put`, a
//! concurrent writer can slip in and be silently overwritten (a lost
//! update) even though both CAS calls report success. The first test
//! demonstrates that hazard on an engine that keeps the default; the
//! rest verify the lock-holding engines' atomic overrides close it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tierbase::baselines::{DragonflyLike, MemcachedLike, RedisLike};
use tierbase::frontend::{Frontend, FrontendConfig};
use tierbase::lsm::{LsmConfig, LsmDb};
use tierbase::prelude::*;

fn tmpdir(name: &str) -> tierbase::common::TestDir {
    tierbase::common::test_dir(&format!("tb-cas-{name}"))
}

fn parse_counter(v: &Value) -> u64 {
    std::str::from_utf8(v.as_slice())
        .expect("counter is utf8")
        .parse()
        .expect("counter is a number")
}

/// `threads` workers each perform `per_thread` *successful* CAS
/// increments (retrying on `CasMismatch`); returns the final counter.
/// With an atomic `cas`, every success is a real increment, so the
/// counter must equal `threads * per_thread`.
fn hammer_counter(engine: &dyn KvEngine, threads: usize, per_thread: usize) -> u64 {
    let key = Key::from("cas-counter");
    engine.put(key.clone(), Value::from("0")).unwrap();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for _ in 0..per_thread {
                    loop {
                        let cur = engine.get(&Key::from("cas-counter")).unwrap().unwrap();
                        let next = Value::from((parse_counter(&cur) + 1).to_string());
                        match engine.cas(Key::from("cas-counter"), Some(&cur), next) {
                            Ok(()) => break,
                            Err(Error::CasMismatch) => continue,
                            Err(e) => panic!("unexpected cas error: {e}"),
                        }
                    }
                }
            });
        }
    });
    parse_counter(&engine.get(&key).unwrap().unwrap())
}

/// A map engine that *keeps* the racy default `cas` and widens the
/// read→write window, making the lost-update interleaving essentially
/// certain under contention.
struct SleepyMap {
    map: std::sync::Mutex<std::collections::BTreeMap<Key, Value>>,
    gets: AtomicU64,
}

impl SleepyMap {
    fn new() -> Self {
        Self {
            map: std::sync::Mutex::new(Default::default()),
            gets: AtomicU64::new(0),
        }
    }
}

impl KvEngine for SleepyMap {
    fn get(&self, key: &Key) -> Result<Option<Value>> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        let v = self.map.lock().unwrap().get(key).cloned();
        // Widen the default cas's get→put window.
        std::thread::sleep(std::time::Duration::from_micros(300));
        Ok(v)
    }
    fn put(&self, key: Key, value: Value) -> Result<()> {
        self.map.lock().unwrap().insert(key, value);
        Ok(())
    }
    fn delete(&self, key: &Key) -> Result<()> {
        self.map.lock().unwrap().remove(key);
        Ok(())
    }
    fn resident_bytes(&self) -> u64 {
        0
    }
    fn label(&self) -> String {
        "sleepy-map".into()
    }
}

#[test]
fn default_cas_loses_updates_under_contention() {
    let engine = SleepyMap::new();
    let threads = 4;
    let per_thread = 25;
    let expected = (threads * per_thread) as u64;
    let got = hammer_counter(&engine, threads, per_thread);
    // Every thread reported `per_thread` successful increments, yet
    // increments vanished: the unsynchronized default overwrote
    // concurrent successes. This is the hazard the overrides fix.
    assert!(
        got < expected,
        "expected lost updates from the racy default cas, got {got}/{expected} \
         (astronomically unlikely with {threads} threads and a 300us window)"
    );
}

#[test]
fn redis_like_cas_is_atomic() {
    let engine = RedisLike::new();
    assert_eq!(hammer_counter(&engine, 4, 50), 200);
}

#[test]
fn memcached_like_cas_is_atomic() {
    // Capacity far above the working set: the counter never evicts.
    let engine = MemcachedLike::new(64 << 20, 4);
    assert_eq!(hammer_counter(&engine, 4, 50), 200);
}

#[test]
fn dragonfly_like_cas_is_atomic() {
    let engine = DragonflyLike::new(2);
    assert_eq!(hammer_counter(&engine, 4, 50), 200);
}

#[test]
fn lsm_db_cas_is_atomic() {
    let dir = tmpdir("lsm");
    let engine = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
    assert_eq!(hammer_counter(&engine, 4, 50), 200);
}

#[test]
fn frontend_pipelined_cas_is_atomic() {
    // CAS submitted through the pipeline resolves against the LSM's
    // atomic override, so boosted (multi-worker) shards stay safe.
    let dir = tmpdir("frontend");
    let db = Arc::new(LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap());
    let fe = Frontend::start(db, FrontendConfig::with_shards(2));
    assert_eq!(hammer_counter(&fe, 4, 50), 200);
    fe.shutdown();
}
