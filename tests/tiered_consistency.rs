//! Cross-crate integration: the tiered store must behave exactly like a
//! model map under randomized operation sequences, for every sync
//! policy, including across flushes and reopen.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use tierbase::prelude::*;

fn tmpdir(name: &str) -> tierbase::common::TestDir {
    tierbase::common::test_dir(&format!("tb-it-consist-{name}"))
}

fn random_ops(seed: u64, n: usize, keyspace: usize) -> Vec<(u8, Key, Value)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let key = Key::from(format!("key-{:04}", rng.gen_range(0..keyspace)));
            let kind = rng.gen_range(0..10u8);
            let value = Value::from(format!("v{i}-{}", "x".repeat(rng.gen_range(0..120))));
            (kind, key, value)
        })
        .collect()
}

fn check_against_model(policy: SyncPolicy, name: &str, seed: u64) {
    let dir = tmpdir(name);
    let store = TierBase::open(
        TierBaseConfig::builder(dir.path())
            .cache_capacity(64 << 10) // tiny: force heavy eviction/missing
            .cache_shards(4)
            .policy(policy)
            .build(),
    )
    .unwrap();
    let mut model: BTreeMap<Key, Value> = BTreeMap::new();

    for (kind, key, value) in random_ops(seed, 3000, 200) {
        match kind {
            0..=5 => {
                store.put(key.clone(), value.clone()).unwrap();
                model.insert(key, value);
            }
            6..=7 => {
                store.delete(&key).unwrap();
                model.remove(&key);
            }
            _ => {
                let got = store.get(&key).unwrap();
                assert_eq!(got.as_ref(), model.get(&key), "divergence at {key:?}");
            }
        }
    }
    // Full final scan.
    for (key, value) in &model {
        assert_eq!(
            store.get(key).unwrap().as_ref(),
            Some(value),
            "final state diverged at {key:?} under {policy:?}"
        );
    }
    store.sync().unwrap();

    // Tiered policies must also survive a restart.
    if matches!(policy, SyncPolicy::WriteThrough | SyncPolicy::WriteBack) {
        drop(store);
        let reopened = TierBase::open(
            TierBaseConfig::builder(dir.path())
                .cache_capacity(64 << 10)
                .cache_shards(4)
                .policy(policy)
                .build(),
        )
        .unwrap();
        for (key, value) in &model {
            assert_eq!(
                reopened.get(key).unwrap().as_ref(),
                Some(value),
                "post-restart divergence at {key:?} under {policy:?}"
            );
        }
    }
}

#[test]
fn in_memory_matches_model() {
    // In-memory with a tiny cache evicts, so only a large-cache variant
    // can promise full fidelity.
    let dir = tmpdir("mem");
    let store = TierBase::open(
        TierBaseConfig::builder(dir.path())
            .cache_capacity(64 << 20)
            .build(),
    )
    .unwrap();
    let mut model: BTreeMap<Key, Value> = BTreeMap::new();
    for (kind, key, value) in random_ops(7, 5000, 300) {
        match kind {
            0..=5 => {
                store.put(key.clone(), value.clone()).unwrap();
                model.insert(key, value);
            }
            6..=7 => {
                store.delete(&key).unwrap();
                model.remove(&key);
            }
            _ => {
                assert_eq!(store.get(&key).unwrap().as_ref(), model.get(&key));
            }
        }
    }
    for (key, value) in &model {
        assert_eq!(store.get(key).unwrap().as_ref(), Some(value));
    }
}

#[test]
fn write_through_matches_model() {
    check_against_model(SyncPolicy::WriteThrough, "wt", 11);
}

#[test]
fn write_back_matches_model() {
    check_against_model(SyncPolicy::WriteBack, "wb", 13);
}

#[test]
fn write_back_with_replicas_matches_model() {
    let dir = tmpdir("wbrep");
    let store = TierBase::open(
        TierBaseConfig::builder(dir.path())
            .cache_capacity(1 << 20)
            .policy(SyncPolicy::WriteBack)
            .replicas(1)
            .build(),
    )
    .unwrap();
    let mut model: BTreeMap<Key, Value> = BTreeMap::new();
    for (kind, key, value) in random_ops(17, 2000, 150) {
        if kind <= 6 {
            store.put(key.clone(), value.clone()).unwrap();
            model.insert(key, value);
        } else {
            assert_eq!(store.get(&key).unwrap().as_ref(), model.get(&key));
        }
    }
    // Replication doubles the cache-tier footprint.
    assert!(store.resident_bytes() > 0);
}

#[test]
fn compressed_store_matches_model() {
    let dir = tmpdir("comp");
    let store = TierBase::open(
        TierBaseConfig::builder(dir.path())
            .cache_capacity(64 << 20)
            .compression(CompressionChoice::TzstdDict)
            .build(),
    )
    .unwrap();
    // Train on representative records, then verify fidelity on a
    // mixture of matching and alien values.
    let samples: Vec<Vec<u8>> = (0..300)
        .map(|i| format!("REC|{i:08}|status=OK|region=CN|padpadpad").into_bytes())
        .collect();
    store.train_compression(&samples);
    let mut model: BTreeMap<Key, Value> = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(23);
    for i in 0..2000 {
        let key = Key::from(format!("k{:03}", rng.gen_range(0..400)));
        let value = if i % 3 == 0 {
            // Alien (incompressible) bytes.
            Value::from(
                (0..rng.gen_range(1..200))
                    .map(|_| rng.gen::<u8>())
                    .collect::<Vec<u8>>(),
            )
        } else {
            Value::from(format!("REC|{i:08}|status=OK|region=CN|padpadpad"))
        };
        store.put(key.clone(), value.clone()).unwrap();
        model.insert(key, value);
    }
    for (key, value) in &model {
        assert_eq!(store.get(key).unwrap().as_ref(), Some(value));
    }
}
