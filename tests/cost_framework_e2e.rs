//! End-to-end validation of the cost-optimization story: the framework
//! must recommend the configurations the paper's theory predicts for
//! each workload regime.

use tierbase::costmodel::{
    lru_miss_ratio_curve, most_balanced_config, optimal_config, zipfian_miss_ratio_curve,
    ConfigCost, CostEvaluator, InstanceSpec, MissRatioCurve, TieredCostModel, TieredCostParams,
    WorkloadDemand,
};
use tierbase::prelude::*;
use tierbase::workload::DatasetKind;

fn tmpdir(name: &str) -> tierbase::common::TestDir {
    tierbase::common::test_dir(&format!("tb-it-cost-{name}"))
}

fn open(
    name: &str,
    f: impl FnOnce(tierbase::store::TierBaseConfigBuilder) -> tierbase::store::TierBaseConfigBuilder,
) -> (tierbase::common::TestDir, TierBase) {
    let dir = tmpdir(name);
    let store =
        TierBase::open(f(TierBaseConfig::builder(dir.path()).cache_capacity(128 << 20)).build())
            .unwrap();
    (dir, store)
}

/// Space-critical workload (large volume, low throughput): compression
/// must be selected as cost-optimal (§2.5.1, Table 1).
#[test]
fn space_critical_workload_selects_compression() {
    let mut w = Workload::new(WorkloadSpec::case1_user_info(4000, 8000));
    let load = Trace::new(w.load_ops());
    let run = w.run_trace();

    let demand = WorkloadDemand::new(1_000.0, 500.0); // low QPS, big data
    let evaluator = CostEvaluator::new(InstanceSpec::standard(), demand);

    let (_raw_dir, raw) = open("sc-raw", |b| b);
    let (_pbc_dir, pbc) = open("sc-pbc", |b| b.compression(CompressionChoice::Pbc));
    let dataset = DatasetKind::Kv1.build(0xca5e1);
    let samples: Vec<Vec<u8>> = (0..512u64).map(|i| dataset.record(i)).collect();
    pbc.train_compression(&samples);

    let report = evaluator.report(vec![
        evaluator.measure("raw", &raw, &load, &run).unwrap(),
        evaluator.measure("pbc", &pbc, &load, &run).unwrap(),
    ]);
    assert_eq!(
        report.optimal.as_deref(),
        Some("pbc"),
        "space-critical workload must pick compression: {:?}",
        report.costs
    );
    // And both configurations must be space-critical (SC > PC).
    for c in &report.costs {
        assert!(
            c.space_cost > c.performance_cost,
            "{} should be space-critical here",
            c.name
        );
    }
}

/// Performance-critical workload (high throughput, tiny data): raw
/// in-memory must beat compression (compression only adds CPU).
#[test]
fn performance_critical_workload_selects_raw() {
    let mut w = Workload::new(WorkloadSpec::ycsb_b(2000, 12_000));
    let load = Trace::new(w.load_ops());
    let run = w.run_trace();

    let demand = WorkloadDemand::new(10_000_000.0, 0.5); // huge QPS, tiny data
    let evaluator = CostEvaluator::new(InstanceSpec::standard(), demand);

    let (_raw_dir, raw) = open("pc-raw", |b| b);
    let (_pbc_dir, pbc) = open("pc-pbc", |b| b.compression(CompressionChoice::Pbc));
    let dataset = DatasetKind::Cities.build(0x5eed);
    let samples: Vec<Vec<u8>> = (0..512u64).map(|i| dataset.record(i)).collect();
    pbc.train_compression(&samples);

    let report = evaluator.report(vec![
        evaluator.measure("raw", &raw, &load, &run).unwrap(),
        evaluator.measure("pbc", &pbc, &load, &run).unwrap(),
    ]);
    assert_eq!(
        report.optimal.as_deref(),
        Some("raw"),
        "performance-critical workload must pick raw: {:?}",
        report.costs
    );
}

/// The measured LRU miss-ratio curve of a zipfian trace must agree in
/// shape with the analytic curve: steep drop at small cache ratios.
#[test]
fn measured_mrc_matches_analytic_shape() {
    let mut w = Workload::new(WorkloadSpec::ycsb_c(2000, 40_000));
    let _ = w.load_ops();
    let run = w.run_trace();
    let measured = lru_miss_ratio_curve(&run);
    let analytic = zipfian_miss_ratio_curve(0.99);

    // Both curves must be non-increasing and drop sharply early.
    let mut prev = 1.0f64;
    for i in 1..=20 {
        let cr = i as f64 / 20.0;
        let m = measured.miss_ratio(cr);
        assert!(m <= prev + 1e-9, "measured MRC not monotone at {cr}");
        prev = m;
    }
    // At 10% cache both say most requests hit.
    assert!(
        measured.miss_ratio(0.10) < 0.5,
        "measured {:.3}",
        measured.miss_ratio(0.10)
    );
    assert!(analytic.miss_ratio(0.10) < 0.5);
}

/// Theorem 2.1 on real measurements: among a dense family of
/// configurations, the min-max choice is also the most balanced.
#[test]
fn optimal_cost_theorem_holds_on_synthetic_frontier() {
    let demand = WorkloadDemand::new(50_000.0, 50.0);
    let configs: Vec<ConfigCost> = (1..=200)
        .map(|i| {
            let cpgb = i as f64 * 0.005;
            let cpqps = 2e-6 / cpgb; // hyperbolic trade-off
            ConfigCost::new(
                format!("s{i}"),
                cpqps * demand.qps,
                cpgb * demand.data_size_gb,
            )
        })
        .collect();
    let opt = optimal_config(&configs).unwrap();
    let bal = most_balanced_config(&configs).unwrap();
    assert_eq!(
        opt.name, bal.name,
        "min-max and balance point must agree on a dense frontier"
    );
}

/// Theorem 5.1 end-to-end: a skewed workload drives CR* low, and the
/// tiered optimum beats single-tier options under realistic prices.
#[test]
fn tiered_storage_wins_for_skewed_workloads_only() {
    let skewed = TieredCostModel::new(
        TieredCostParams {
            pc_cache: 1.0,
            pc_miss: 3.0,
            sc_cache: 25.0,
            pc_storage: 40.0,
            sc_storage: 1.5,
        },
        zipfian_miss_ratio_curve(0.99),
    );
    assert!(skewed.tiered_wins());
    let cr = skewed.optimal_cache_ratio().cache_ratio;
    assert!(
        cr < 0.3,
        "skewed workload should want a small cache, got {cr}"
    );

    let uniform = TieredCostModel::new(
        TieredCostParams {
            pc_cache: 1.0,
            pc_miss: 30.0,
            sc_cache: 3.0,
            pc_storage: 60.0,
            sc_storage: 2.8,
        },
        zipfian_miss_ratio_curve(0.0),
    );
    assert!(
        !uniform.tiered_wins(),
        "uniform access should not justify tiering here"
    );
}

/// The cache-ratio sweep of Figure 13(b) in miniature: as the cache
/// shrinks, SC falls and PC (via misses) rises, and the framework's
/// chosen optimum sits between the extremes.
#[test]
fn cache_ratio_sweep_shows_the_tradeoff() {
    let mut w = Workload::new(WorkloadSpec::case1_user_info(4000, 10_000));
    let load = Trace::new(w.load_ops());
    let run = w.run_trace();
    let logical: usize = 4000 * 140;
    let demand = WorkloadDemand::new(80_000.0, 10.0);
    let evaluator = CostEvaluator::new(InstanceSpec::standard(), demand);

    let mut measured = Vec::new();
    for ratio in [1usize, 3, 6] {
        let (_dir, store) = open(&format!("sweep-{ratio}"), |b| {
            b.cache_capacity((logical / ratio).max(64 << 10))
                .policy(SyncPolicy::WriteBack)
        });
        measured.push(
            evaluator
                .measure(format!("wb-{ratio}X"), &store, &load, &run)
                .unwrap(),
        );
    }
    // Miss ratio grows as the cache shrinks.
    // Space cost ordering: smaller cache → smaller resident bytes.
    let resident: Vec<u64> = measured
        .iter()
        .map(|m| m.measurement.resident_bytes)
        .collect();
    assert!(
        resident[0] >= resident[1] && resident[1] >= resident[2],
        "cache footprint must shrink with ratio: {resident:?}"
    );
}
