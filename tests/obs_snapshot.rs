//! End-to-end telemetry: after driving every layer in one process —
//! the tiered store (core + cache), an LSM engine behind the pipelined
//! front-end, and a cluster with a failover — a single
//! `tb_obs::global().snapshot()` covers them all, in both the
//! Prometheus text exposition and the JSON rendering.

use std::sync::Arc;
use tierbase::cluster::{ClusterClient, CoordinatorGroup, NodeId, NodeStore};
use tierbase::frontend::Request;
use tierbase::lsm::{LsmConfig, LsmDb};
use tierbase::obs;
use tierbase::obs::json;
use tierbase::prelude::*;

#[test]
fn one_snapshot_spans_every_layer() {
    obs::set_enabled(true);

    // --- core + cache: the tiered store -----------------------------
    let core_dir = tierbase::common::test_dir("obs-snap-core");
    let store = TierBase::open(TierBaseConfig::builder(core_dir.path()).build()).unwrap();
    for i in 0..32 {
        store
            .put(Key::from(format!("ck{i}")), Value::from(format!("cv{i}")))
            .unwrap();
    }
    for i in 0..32 {
        assert!(store.get(&Key::from(format!("ck{i}"))).unwrap().is_some());
    }

    // --- lsm + frontend: pipelined serving over a durable engine ----
    // The engine writes LZ-compressed SSTable blocks so the snapshot
    // also covers the compression telemetry: build counters at flush,
    // decode counters + the decompress histogram on the read back.
    let lsm_dir = tierbase::common::test_dir("obs-snap-lsm");
    let mut lsm_config = LsmConfig::new(lsm_dir.path());
    lsm_config.sst.codec = tierbase::compress::BlockCodec::Lz;
    let db = Arc::new(LsmDb::open(lsm_config).unwrap());
    let fe = Frontend::start(db.clone(), FrontendConfig::with_shards(2));
    let tickets: Vec<_> = (0..64)
        .map(|i| {
            fe.submit(Request::Put(
                Key::from(format!("fk{i}")),
                Value::from(format!("fv{i}")),
            ))
        })
        .collect();
    for t in tickets {
        t.wait().unwrap();
    }
    // Force the memtable into a compressed table, then read everything
    // back through the batched path so every block decompresses.
    db.flush().unwrap();
    let keys: Vec<Key> = (0..64).map(|i| Key::from(format!("fk{i}"))).collect();
    assert!(fe.multi_get(&keys).unwrap().iter().all(Option::is_some));
    // The engine's compression counters flow through BatchReadStats
    // into the front-end stats snapshot.
    let batch = fe.stats_snapshot().engine_batch;
    assert!(
        batch.blocks_compressed > 0,
        "no compressed blocks: {batch:?}"
    );
    assert!(
        batch.compressed_bytes_written < batch.uncompressed_bytes_written,
        "compression did not shrink the data region: {batch:?}"
    );
    assert!(
        batch.blocks_decompressed > 0,
        "no decompressions: {batch:?}"
    );
    assert_eq!(batch.block_decode_errors, 0, "clean run decoded dirty");
    fe.shutdown();

    // --- cluster: replicated routed ops, a client-observed failover --
    let nodes = vec![
        NodeStore::new(NodeId(0), map_engine()).with_replica_factory(map_engine),
        NodeStore::new(NodeId(1), map_engine()).with_replica(map_engine()),
    ];
    let coordinators = Arc::new(CoordinatorGroup::bootstrap(1, nodes).unwrap());
    let client = ClusterClient::connect(coordinators.clone());
    for i in 0..32 {
        client
            .put(Key::from(format!("nk{i}")), Value::from(format!("nv{i}")))
            .unwrap();
    }
    coordinators.node(NodeId(0)).unwrap().read().crash();
    for i in 0..32 {
        // Every slot stays readable; the first op against the dead node
        // triggers a failover the client records.
        let _ = client.get(&Key::from(format!("nk{i}")));
    }

    // --- one snapshot, five layers -----------------------------------
    let snap = obs::global().snapshot();
    for counter in [
        "core_puts",
        "core_gets",
        "cache_inserts",
        "lsm_puts",
        "lsm_batches",
        "lsm_blocks_compressed",
        "lsm_compressed_bytes_written",
        "lsm_uncompressed_bytes_written",
        "lsm_blocks_decompressed",
        "frontend_submitted",
        "frontend_completed",
        "cluster_failovers",
        "repl_shipped",
        "repl_ship_frames",
    ] {
        assert!(
            snap.counter(counter) > 0,
            "counter {counter} did not move: {:?}",
            snap.counters
        );
    }
    assert!(
        snap.histograms.contains_key("frontend_e2e_ns"),
        "front-end latency histogram missing"
    );
    assert!(
        snap.histograms.contains_key("lsm_block_decompress_ns"),
        "block decompress histogram missing"
    );
    // Registered but untouched in a clean run: present at zero.
    assert_eq!(
        snap.counter("lsm_block_decode_errors"),
        0,
        "clean run recorded decode errors"
    );
    assert!(
        snap.counters.contains_key("lsm_block_decode_errors"),
        "decode-error counter not registered: {:?}",
        snap.counters
    );
    assert!(
        snap.histograms
            .keys()
            .any(|k| k.starts_with("cluster_node")),
        "per-node fan-out histograms missing"
    );
    // Replication health: the live channels report their watermark
    // position and lag through per-channel snapshot sources.
    assert!(
        snap.gauges.contains_key("repl_applied_lsn"),
        "replication applied-LSN gauge missing: {:?}",
        snap.gauges
    );
    assert!(
        snap.gauges.contains_key("repl_lag"),
        "replication lag gauge missing: {:?}",
        snap.gauges
    );

    // Prometheus rendering: every layer prefix present, and the whole
    // exposition passes the linter.
    let text = snap.to_prometheus();
    obs::validate_exposition(&text).expect("well-formed exposition");
    for prefix in ["core_", "cache_", "lsm_", "frontend_", "cluster_"] {
        assert!(
            text.lines().any(|l| l.starts_with(prefix)),
            "no {prefix} series in exposition"
        );
    }

    // JSON rendering: parses, and mirrors the same counters.
    let doc = json::parse(&snap.to_json()).expect("well-formed json");
    let counters = doc.get("counters").expect("counters object");
    assert_eq!(
        counters
            .get("frontend_submitted")
            .and_then(json::Value::as_f64),
        Some(snap.counter("frontend_submitted") as f64)
    );
    assert!(counters.get("cluster_failovers").is_some());
}

// A tiny engine so cluster nodes don't need disk.
struct MapEngine(std::sync::Mutex<std::collections::BTreeMap<Key, Value>>);

fn map_engine() -> Arc<dyn KvEngine> {
    Arc::new(MapEngine(std::sync::Mutex::new(Default::default())))
}

impl KvEngine for MapEngine {
    fn get(&self, key: &Key) -> Result<Option<Value>> {
        Ok(self.0.lock().unwrap().get(key).cloned())
    }
    fn put(&self, key: Key, value: Value) -> Result<()> {
        self.0.lock().unwrap().insert(key, value);
        Ok(())
    }
    fn delete(&self, key: &Key) -> Result<()> {
        self.0.lock().unwrap().remove(key);
        Ok(())
    }
    fn resident_bytes(&self) -> u64 {
        0
    }
    fn label(&self) -> String {
        "map".into()
    }
}
