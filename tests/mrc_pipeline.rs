//! End-to-end §5 pipeline: trace → (sampled) miss-ratio curve →
//! Theorem 5.1 cache ratio → a real TierBase instance whose measured
//! miss ratio confirms the prediction — plus the Table 1 advisor fed
//! from the same trace's statistics.

use rand::SeedableRng;
use tierbase::costmodel::{
    advise, lru_miss_ratio_curve, option_shortlist, shards_miss_ratio_curve, AdvisorThresholds,
    CostMetrics, MissRatioCurve, OptimizationOption, ShardsConfig, TieredCostModel,
    TieredCostParams, WorkloadFeature, WorkloadProfile,
};
use tierbase::prelude::*;
use tierbase::workload::{KeyChooser, ScrambledZipfian};

fn zipf_read_trace(n_keys: u64, n_refs: usize, theta: f64, seed: u64) -> Trace {
    let mut chooser = ScrambledZipfian::with_theta(n_keys, theta);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Trace::new(
        (0..n_refs)
            .map(|_| Op::Read {
                key: Key::from(format!("k{:08}", chooser.next_index(&mut rng))),
            })
            .collect(),
    )
}

fn tmpdir(name: &str) -> tierbase::common::TestDir {
    tierbase::common::test_dir(&format!("tb-it-mrc-{name}"))
}

#[test]
fn sampled_mrc_drives_correct_cache_sizing() {
    let n_keys = 5_000u64;
    let trace = zipf_read_trace(n_keys, 60_000, 0.9, 11);

    // Sampled curve approximates the exact one.
    let exact = lru_miss_ratio_curve(&trace);
    let sampled = shards_miss_ratio_curve(&trace, ShardsConfig { sampling_rate: 0.1 });
    for i in 1..=10 {
        let cr = i as f64 / 10.0;
        assert!(
            (exact.miss_ratio(cr) - sampled.miss_ratio(cr)).abs() < 0.15,
            "cr={cr}: exact {} sampled {}",
            exact.miss_ratio(cr),
            sampled.miss_ratio(cr)
        );
    }

    // Theorem 5.1 on both curves lands on similar CR*.
    let params = TieredCostParams {
        pc_cache: 1.0,
        pc_miss: 4.0,
        sc_cache: 20.0,
        pc_storage: 30.0,
        sc_storage: 2.0,
    };
    let cr_exact = TieredCostModel::new(params, exact).optimal_cache_ratio();
    let cr_sampled = TieredCostModel::new(params, sampled).optimal_cache_ratio();
    assert!(
        (cr_exact.cache_ratio - cr_sampled.cache_ratio).abs() < 0.1,
        "CR* drifted: exact {} vs sampled {}",
        cr_exact.cache_ratio,
        cr_sampled.cache_ratio
    );

    // Configure a real store at the sampled CR* and verify the measured
    // steady-state miss ratio is in the predicted neighborhood.
    let record_bytes = 100usize;
    let per_entry = record_bytes + 11 + 64; // value + envelope + LRU overhead
    let cache_bytes = ((n_keys as usize * per_entry) as f64 * cr_sampled.cache_ratio) as usize;
    let dir = tmpdir("sizing");
    let store = TierBase::open(
        TierBaseConfig::builder(dir.path())
            .cache_capacity(cache_bytes)
            .policy(SyncPolicy::WriteThrough)
            .build(),
    )
    .unwrap();
    for i in 0..n_keys {
        store
            .put(
                Key::from(format!("k{i:08}")),
                Value::from(vec![b'v'; record_bytes]),
            )
            .unwrap();
    }
    let ops = trace.ops();
    for op in &ops[..ops.len() / 2] {
        store.get(op.key()).unwrap();
    }
    let h0 = store
        .stats()
        .cache_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    let m0 = store
        .stats()
        .cache_misses
        .load(std::sync::atomic::Ordering::Relaxed);
    for op in &ops[ops.len() / 2..] {
        store.get(op.key()).unwrap();
    }
    let h1 = store
        .stats()
        .cache_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    let m1 = store
        .stats()
        .cache_misses
        .load(std::sync::atomic::Ordering::Relaxed);
    let measured = (m1 - m0) as f64 / ((h1 - h0) + (m1 - m0)) as f64;
    // Generous tolerance: the model is item-granular, the store is
    // byte-budgeted and sharded; what must hold is the neighborhood.
    assert!(
        (measured - cr_sampled.miss_ratio).abs() < 0.25,
        "measured MR {measured} too far from predicted {}",
        cr_sampled.miss_ratio
    );
    // And it must beat a 4x-smaller cache decisively (sanity that CR*
    // is not trivially achievable).
    let small_dir = tmpdir("small");
    let small = TierBase::open(
        TierBaseConfig::builder(small_dir.path())
            .cache_capacity((cache_bytes / 4).max(64 << 10))
            .policy(SyncPolicy::WriteThrough)
            .build(),
    )
    .unwrap();
    for i in 0..n_keys {
        small
            .put(
                Key::from(format!("k{i:08}")),
                Value::from(vec![b'v'; record_bytes]),
            )
            .unwrap();
    }
    for op in ops {
        small.get(op.key()).unwrap();
    }
    assert!(
        small.stats().miss_ratio() > measured,
        "quarter-size cache should miss more: {} vs {measured}",
        small.stats().miss_ratio()
    );
}

#[test]
fn trace_stats_feed_the_table1_advisor() {
    // Build a read-heavy, highly skewed trace and derive the advisor's
    // profile from its measured statistics — no hand-tuning.
    let n_keys = 2_000u64;
    let mut trace = zipf_read_trace(n_keys, 20_000, 0.9, 5);
    for i in 0..500u64 {
        trace.push(Op::Update {
            key: Key::from(format!("k{i:08}")),
            value: Value::from(vec![b'x'; 400]),
        });
    }
    let stats = trace.stats();
    assert!(stats.read_count > stats.write_count * 10);

    let read_fraction = stats.read_count as f64 / stats.op_count as f64;
    // Skew proxy: the hottest 1% share maps to an effective theta; the
    // advisor only needs "skewed or not", so any share ≥ ~15% counts.
    let theta_estimate = if stats.top1pct_share > 0.15 { 0.9 } else { 0.1 };
    let profile = WorkloadProfile::new(500_000.0, 500.0)
        .read_fraction(read_fraction)
        .zipf_theta(theta_estimate)
        .p99_budget_ms(1.0);

    // Reference: a standard container sustains 80k QPS / 3 GB.
    let reference = CostMetrics::new(80_000.0, 3.0, 1.0);
    let advice = advise(&profile, &reference, &AdvisorThresholds::default());
    let features: Vec<WorkloadFeature> = advice.iter().map(|a| a.feature).collect();
    assert!(features.contains(&WorkloadFeature::SkewedAccess));
    assert!(features.contains(&WorkloadFeature::ReadHeavy));
    assert!(features.contains(&WorkloadFeature::SpaceCritical));

    let options: Vec<OptimizationOption> = option_shortlist(&advice)
        .into_iter()
        .map(|(o, _)| o)
        .collect();
    // The paper's Case 1 conclusion: tiering + pre-trained compression.
    assert!(options.contains(&OptimizationOption::TieredStorage));
    assert!(options.contains(&OptimizationOption::PretrainedCompression));
}
