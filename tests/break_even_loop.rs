//! §6.5.3 end-to-end: measure a live store's mean key access interval,
//! compare it against the Table 3 break-even ladder, and get the same
//! configuration choice the paper reports (hot traffic → Raw, cold
//! traffic → compression).

use std::sync::Arc;
use std::time::Duration;
use tierbase::common::ManualClock;
use tierbase::costmodel::{BreakEvenTable, CostMetrics};
use tierbase::prelude::*;

fn tmpdir(name: &str) -> tierbase::common::TestDir {
    tierbase::common::test_dir(&format!("tb-it-be-{name}"))
}

/// A Table 3-like ladder: Raw is fastest and most space-hungry, PMem in
/// between, PBC compression slowest and most frugal. (Shapes mirror the
/// measured table3 bench; absolute numbers are illustrative.)
fn ladder() -> BreakEvenTable {
    let configs = vec![
        ("raw".to_string(), CostMetrics::new(120_000.0, 3.0, 1.0)),
        ("pmem".to_string(), CostMetrics::new(100_000.0, 8.0, 1.0)),
        ("pbc".to_string(), CostMetrics::new(60_000.0, 12.0, 1.0)),
    ];
    BreakEvenTable::build(&configs, 200.0)
}

fn drive(interval: Duration, rounds: usize) -> Option<f64> {
    let clock = ManualClock::new();
    let dir = tmpdir(&format!("drive-{}", interval.as_secs()));
    let store = TierBase::open(
        TierBaseConfig::builder(dir.path())
            .clock(clock.clone() as Arc<_>)
            .build(),
    )
    .unwrap();
    for i in 0..2_000u32 {
        store
            .put(Key::from(format!("k{i:06}")), Value::from("v"))
            .unwrap();
    }
    for _ in 0..rounds {
        clock.advance(interval);
        for i in 0..2_000u32 {
            store.get(&Key::from(format!("k{i:06}"))).unwrap();
        }
    }
    store.mean_access_interval_secs()
}

#[test]
fn hot_workload_recommends_fast_config() {
    let table = ladder();
    // Keys re-accessed every 5 seconds — far below every break-even.
    let measured = drive(Duration::from_secs(5), 4).expect("intervals observed");
    assert!((measured - 5.0).abs() < 0.5, "measured {measured}");
    assert_eq!(table.recommend(measured), Some("raw"));
}

#[test]
fn cold_workload_recommends_compression() {
    let table = ladder();
    let max_break_even = table
        .rows
        .iter()
        .map(|r| r.interval_seconds)
        .fold(0.0f64, f64::max);
    // Re-access interval beyond every break-even in the ladder — the
    // paper's Case 1 regime (measured interval > 1018 s there).
    let cold_secs = (max_break_even * 2.0).ceil() as u64;
    let measured = drive(Duration::from_secs(cold_secs), 3).expect("intervals observed");
    assert_eq!(
        table.recommend(measured),
        Some("pbc"),
        "cold traffic ({measured:.0}s) must land on the space-frugal config"
    );
}

#[test]
fn insight_surfaces_the_interval() {
    let clock = ManualClock::new();
    let dir = tmpdir("insight");
    let store = TierBase::open(
        TierBaseConfig::builder(dir.path())
            .clock(clock.clone() as Arc<_>)
            .build(),
    )
    .unwrap();
    for i in 0..500u32 {
        store
            .put(Key::from(format!("k{i:05}")), Value::from("v"))
            .unwrap();
    }
    clock.advance(Duration::from_secs(60));
    for i in 0..500u32 {
        store.get(&Key::from(format!("k{i:05}"))).unwrap();
    }
    let snap = tierbase::store::Insight::new(&store).snapshot();
    let mean = snap.mean_access_interval_secs.expect("observed");
    assert!((mean - 60.0).abs() < 1.0, "mean {mean}");
}
